//! Dynamic classes: run-time-mutable method signatures and bodies.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use obs::sync::{Mutex, RwLock};
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::edit::{EditLabel, EditRecord};
use crate::error::JpieError;
use crate::event::{ClassEvent, EventKind};
use crate::expr::{walk_block_mut, Block, Expr, Stmt};
use crate::instance::{Fields, Instance};
use crate::value::{TypeDesc, Value};

/// Stable identity of a dynamic method. Survives renames and signature
/// changes; invalidated by removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub(crate) u64);

impl MethodId {
    /// Reconstructs an id from its raw value (for tooling and tests that
    /// build [`SignatureView`]s by hand; ids minted by a class are only
    /// meaningful for that class).
    pub fn from_raw(raw: u64) -> MethodId {
        MethodId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Stable identity of a method parameter. Survives renames and reorders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) u64);

impl ParamId {
    /// Reconstructs an id from its raw value (see [`MethodId::from_raw`]).
    pub fn from_raw(raw: u64) -> ParamId {
        ParamId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Stable identity.
    pub id: ParamId,
    /// Current name.
    pub name: String,
    /// Declared type.
    pub ty: TypeDesc,
}

/// A method signature as stored inside a dynamic class.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSignature {
    /// Current method name.
    pub name: String,
    /// Formal parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type.
    pub return_ty: TypeDesc,
    /// The paper's `distributed` modifier: whether this method belongs to
    /// the published server interface (§4, §5.5).
    pub distributed: bool,
}

/// Native method body signature: receives the instance fields and the
/// argument values in declaration order.
pub type NativeFn =
    dyn Fn(&mut Fields, &[Value]) -> Result<Value, JpieError> + Send + Sync + 'static;

/// A method body.
#[derive(Clone)]
pub(crate) enum MethodBody {
    /// Interpreted statements — fully live-editable.
    Interpreted(Block),
    /// A compiled Rust closure (JPie's interop with compiled classes).
    Native(Arc<NativeFn>),
    /// Declared but not yet implemented; invoking raises an exception.
    Empty,
}

impl fmt::Debug for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodBody::Interpreted(b) => write!(f, "Interpreted({} stmts)", b.len()),
            MethodBody::Native(_) => write!(f, "Native(..)"),
            MethodBody::Empty => write!(f, "Empty"),
        }
    }
}

/// A method inside a dynamic class.
#[derive(Debug, Clone)]
pub(crate) struct DynamicMethod {
    pub(crate) id: MethodId,
    pub(crate) signature: MethodSignature,
    pub(crate) body: MethodBody,
}

/// An immutable snapshot of a class's method table plus the declared
/// fields, shared by `Arc` between the class and its live [`Instance`].
///
/// Snapshots are rebuilt lazily after an edit (see
/// [`ClassHandle::edit_epoch`]); between edits every invocation reuses
/// the same allocation, so the steady-state dispatch path never clones
/// the method `Vec`.
#[derive(Debug)]
pub(crate) struct MethodTable {
    pub(crate) methods: Vec<DynamicMethod>,
    pub(crate) fields: Vec<(String, TypeDesc)>,
}

/// A read-only snapshot of one method's signature, as returned by
/// [`ClassHandle::signature`].
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureView {
    /// Stable method identity.
    pub id: MethodId,
    /// Current name.
    pub name: String,
    /// `(id, name, type)` for each parameter, in order.
    pub params: Vec<(ParamId, String, TypeDesc)>,
    /// Return type.
    pub return_ty: TypeDesc,
    /// Whether the method carries the `distributed` modifier.
    pub distributed: bool,
}

impl SignatureView {
    fn of(m: &DynamicMethod) -> SignatureView {
        SignatureView {
            id: m.id,
            name: m.signature.name.clone(),
            params: m
                .signature
                .params
                .iter()
                .map(|p| (p.id, p.name.clone(), p.ty.clone()))
                .collect(),
            return_ty: m.signature.return_ty.clone(),
            distributed: m.signature.distributed,
        }
    }
}

/// Builder for a new dynamic method (see [`ClassHandle::add_method`]).
///
/// # Examples
///
/// ```
/// use jpie::{MethodBuilder, TypeDesc};
/// use jpie::expr::Expr;
///
/// let b = MethodBuilder::new("inc", TypeDesc::Int)
///     .param("x", TypeDesc::Int)
///     .distributed(true)
///     .body_expr(Expr::param("x") + Expr::lit(1));
/// ```
#[derive(Debug)]
pub struct MethodBuilder {
    name: String,
    params: Vec<(String, TypeDesc)>,
    return_ty: TypeDesc,
    distributed: bool,
    body: MethodBody,
}

impl MethodBuilder {
    /// Starts a builder for a method `name` returning `return_ty`.
    pub fn new(name: impl Into<String>, return_ty: TypeDesc) -> MethodBuilder {
        MethodBuilder {
            name: name.into(),
            params: Vec::new(),
            return_ty,
            distributed: false,
            body: MethodBody::Empty,
        }
    }

    /// Appends a parameter.
    pub fn param(mut self, name: impl Into<String>, ty: TypeDesc) -> MethodBuilder {
        self.params.push((name.into(), ty));
        self
    }

    /// Sets the `distributed` modifier (default false).
    pub fn distributed(mut self, distributed: bool) -> MethodBuilder {
        self.distributed = distributed;
        self
    }

    /// Sets an interpreted body consisting of a single `return expr`.
    pub fn body_expr(mut self, expr: Expr) -> MethodBuilder {
        self.body = MethodBody::Interpreted(vec![Stmt::Return(Some(expr))]);
        self
    }

    /// Sets an interpreted body of statements.
    pub fn body_block(mut self, block: Block) -> MethodBuilder {
        self.body = MethodBody::Interpreted(block);
        self
    }

    /// Sets an interpreted body from JPie-script source (see
    /// [`crate::parse`]). Bare identifiers matching this builder's
    /// parameter names become parameter references.
    ///
    /// # Errors
    ///
    /// Fails on a syntax error in `src`.
    pub fn body_source(mut self, src: &str) -> Result<MethodBuilder, JpieError> {
        let mut block = crate::parse::parse_block(src)?;
        let names: Vec<String> = self.params.iter().map(|(n, _)| n.clone()).collect();
        crate::parse::resolve_params(&mut block, &names);
        self.body = MethodBody::Interpreted(block);
        Ok(self)
    }

    /// Sets a native (compiled) body.
    pub fn body_native<F>(mut self, f: F) -> MethodBuilder
    where
        F: Fn(&mut Fields, &[Value]) -> Result<Value, JpieError> + Send + Sync + 'static,
    {
        self.body = MethodBody::Native(Arc::new(f));
        self
    }
}

#[derive(Debug)]
pub(crate) struct ClassInner {
    pub(crate) name: String,
    pub(crate) superclass: Option<String>,
    pub(crate) methods: Vec<DynamicMethod>,
    pub(crate) fields: Vec<(String, TypeDesc)>,
    next_id: u64,
    interface_version: u64,
    undo_stack: Vec<EditRecord>,
    redo_stack: Vec<EditRecord>,
    listeners: Vec<Sender<ClassEvent>>,
    instantiated: bool,
    /// The live instance's field store (if any), so field renames can
    /// migrate stored values instead of resetting them.
    live_fields: Option<Weak<Mutex<Fields>>>,
    /// Lazily rebuilt `Arc` snapshot of the method table + declared
    /// fields; cleared by every edit (including undo/redo).
    table_cache: Option<Arc<MethodTable>>,
    /// Lazily rebuilt snapshot of the distributed signatures, shared
    /// with the RMI gateway's dispatch cache.
    dist_cache: Option<Arc<Vec<SignatureView>>>,
}

impl ClassInner {
    fn method(&self, id: MethodId) -> Result<&DynamicMethod, JpieError> {
        self.methods
            .iter()
            .find(|m| m.id == id)
            .ok_or_else(|| JpieError::StaleMethodId(id.to_string()))
    }

    fn method_mut(&mut self, id: MethodId) -> Result<&mut DynamicMethod, JpieError> {
        self.methods
            .iter_mut()
            .find(|m| m.id == id)
            .ok_or_else(|| JpieError::StaleMethodId(id.to_string()))
    }

    /// Fingerprint of the *distributed* interface: the published WSDL/IDL
    /// must change exactly when this does.
    fn interface_fingerprint(&self) -> Vec<(String, Vec<String>, String)> {
        let mut fp: Vec<_> = self
            .methods
            .iter()
            .filter(|m| m.signature.distributed)
            .map(|m| {
                (
                    m.signature.name.clone(),
                    m.signature
                        .params
                        .iter()
                        .map(|p| format!("{}:{}", p.name, p.ty))
                        .collect(),
                    m.signature.return_ty.to_string(),
                )
            })
            .collect();
        fp.sort();
        fp
    }

    fn rewrite_all_bodies(&mut self, f: &mut dyn FnMut(&mut Expr)) {
        for m in &mut self.methods {
            if let MethodBody::Interpreted(block) = &mut m.body {
                walk_block_mut(block, f);
            }
        }
    }
}

/// A handle to a dynamic class.
///
/// Handles are cheaply cloneable and thread-safe; all mutations are
/// serialized by an internal lock and take effect immediately for every
/// holder — including live [`Instance`]s, which resolve methods at each
/// invocation (JPie's "changes take effect immediately upon existing
/// instances of the class").
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug, Clone)]
pub struct ClassHandle {
    inner: Arc<RwLock<ClassInner>>,
    /// Monotonic edit epoch; see [`ClassHandle::edit_epoch`].
    epoch: Arc<AtomicU64>,
}

impl ClassHandle {
    /// Creates a new, empty dynamic class.
    pub fn new(name: impl Into<String>) -> ClassHandle {
        Self::build(name.into(), None)
    }

    /// Creates a dynamic class extending `superclass` — the paper's
    /// gesture for creating a server class ("the JPie-SDE user extends a
    /// provided class, called SOAPServer", §4). Register the class with a
    /// [`crate::ClassRegistry`] watched by an SDE manager to trigger
    /// automatic deployment.
    pub fn with_superclass(name: impl Into<String>, superclass: impl Into<String>) -> ClassHandle {
        Self::build(name.into(), Some(superclass.into()))
    }

    /// The declared superclass name, if any.
    pub fn superclass(&self) -> Option<String> {
        self.inner.read().superclass.clone()
    }

    fn build(name: String, superclass: Option<String>) -> ClassHandle {
        ClassHandle {
            inner: Arc::new(RwLock::new(ClassInner {
                name,
                superclass,
                methods: Vec::new(),
                fields: Vec::new(),
                next_id: 1,
                interface_version: 0,
                undo_stack: Vec::new(),
                redo_stack: Vec::new(),
                listeners: Vec::new(),
                instantiated: false,
                live_fields: None,
                table_cache: None,
                dist_cache: None,
            })),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The class name.
    pub fn name(&self) -> String {
        self.inner.read().name.clone()
    }

    /// Current interface version. Advances exactly when the distributed
    /// interface changes (§5.6: these are the changes that require a new
    /// WSDL/CORBA-IDL publication).
    pub fn interface_version(&self) -> u64 {
        self.inner.read().interface_version
    }

    /// Floors the interface version at `version` (no-op when the class
    /// is already past it). Used by crash recovery: a restarted server
    /// replays its publication log and resumes *at or above* the last
    /// version it durably published, so clients holding pre-crash
    /// documents never observe the version moving backwards.
    pub fn restore_version_floor(&self, version: u64) {
        let mut inner = self.inner.write();
        if inner.interface_version < version {
            inner.interface_version = version;
        }
    }

    /// Subscribes to change events. Every mutation — including
    /// [`ClassHandle::undo`] / [`ClassHandle::redo`] — sends one
    /// [`ClassEvent`] to every subscriber.
    pub fn subscribe(&self) -> Receiver<ClassEvent> {
        let (tx, rx) = channel();
        self.inner.write().listeners.push(tx);
        rx
    }

    /// Number of edits available to undo / redo.
    pub fn history_depth(&self) -> (usize, usize) {
        let inner = self.inner.read();
        (inner.undo_stack.len(), inner.redo_stack.len())
    }

    // -- mutation helpers ---------------------------------------------------

    /// Runs `op` as one undoable edit: snapshots state, applies, records,
    /// fires an event.
    fn mutate<T>(
        &self,
        label: EditLabel,
        kind: impl FnOnce(&T) -> EventKind,
        op: impl FnOnce(&mut ClassInner) -> Result<T, JpieError>,
    ) -> Result<T, JpieError> {
        let mut inner = self.inner.write();
        // Invalidate the dispatch snapshots up front (covers partial
        // mutations on the error path too). The bump happens while the
        // write lock is held, so a reader that sees the new epoch and
        // takes the class lock observes the edit, and a reader inside
        // the read lock sees a stable epoch.
        self.invalidate_snapshots(&mut inner);
        let before_methods = inner.methods.clone();
        let before_fields = inner.fields.clone();
        let before_fp = inner.interface_fingerprint();
        let out = op(&mut inner)?;
        let distributed_change = inner.interface_fingerprint() != before_fp;
        if distributed_change {
            inner.interface_version += 1;
        }
        obs::registry().counter("jpie_edits_total").inc();
        if distributed_change {
            obs::registry().counter("jpie_interface_edits_total").inc();
        }
        obs::trace::verbose_event(
            "jpie::class",
            "edit",
            format!(
                "class={} version={} distributed={distributed_change}",
                inner.name, inner.interface_version
            ),
        );
        let after_methods = inner.methods.clone();
        let after_fields = inner.fields.clone();
        inner.undo_stack.push(EditRecord {
            label,
            before_methods,
            before_fields,
            after_methods,
            after_fields,
        });
        inner.redo_stack.clear();
        let event = ClassEvent {
            class: inner.name.clone(),
            kind: kind(&out),
            interface_version: inner.interface_version,
            distributed_change,
        };
        Self::fire(&mut inner, event);
        Ok(out)
    }

    fn fire(inner: &mut ClassInner, event: ClassEvent) {
        inner.listeners.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Clears the cached snapshots and bumps the edit epoch. Must be
    /// called with the class write lock held.
    fn invalidate_snapshots(&self, inner: &mut ClassInner) {
        inner.table_cache = None;
        inner.dist_cache = None;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    // -- structural edits ---------------------------------------------------

    /// Adds a method built with [`MethodBuilder`] and returns its stable
    /// id.
    ///
    /// # Errors
    ///
    /// Fails if another method already has the same name, or a parameter
    /// name repeats.
    pub fn add_method(&self, builder: MethodBuilder) -> Result<MethodId, JpieError> {
        self.mutate(
            EditLabel::AddMethod(builder.name.clone()),
            |id| EventKind::MethodAdded(*id),
            move |inner| {
                validate_ident(&builder.name)?;
                if inner
                    .methods
                    .iter()
                    .any(|m| m.signature.name == builder.name)
                {
                    return Err(JpieError::Invalid(format!(
                        "duplicate method name {:?}",
                        builder.name
                    )));
                }
                let mut params = Vec::new();
                for (name, ty) in builder.params {
                    validate_ident(&name)?;
                    if params.iter().any(|p: &Param| p.name == name) {
                        return Err(JpieError::Invalid(format!(
                            "duplicate parameter name {name:?}"
                        )));
                    }
                    let id = ParamId(inner.next_id);
                    inner.next_id += 1;
                    params.push(Param { id, name, ty });
                }
                let id = MethodId(inner.next_id);
                inner.next_id += 1;
                inner.methods.push(DynamicMethod {
                    id,
                    signature: MethodSignature {
                        name: builder.name,
                        params,
                        return_ty: builder.return_ty,
                        distributed: builder.distributed,
                    },
                    body: builder.body,
                });
                Ok(id)
            },
        )
    }

    /// Removes a method. Call sites in other interpreted bodies are left
    /// in place and will raise `NoSuchMethod` if executed — exactly the
    /// stale-method condition the RMI layer reports to clients.
    ///
    /// # Errors
    ///
    /// Fails if `id` does not name a current method.
    pub fn remove_method(&self, id: MethodId) -> Result<(), JpieError> {
        self.mutate(
            EditLabel::RemoveMethod(id),
            |_| EventKind::MethodRemoved(id),
            |inner| {
                inner.method(id)?;
                inner.methods.retain(|m| m.id != id);
                Ok(())
            },
        )
    }

    /// Renames a method, rewriting every call site in interpreted bodies
    /// (JPie's consistency of declaration and use, §2.3).
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale, the name is invalid, or the name collides.
    pub fn rename_method(&self, id: MethodId, new_name: &str) -> Result<(), JpieError> {
        let new_name = new_name.to_string();
        self.mutate(
            EditLabel::RenameMethod(id),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                validate_ident(&new_name)?;
                if inner
                    .methods
                    .iter()
                    .any(|m| m.id != id && m.signature.name == new_name)
                {
                    return Err(JpieError::Invalid(format!(
                        "duplicate method name {new_name:?}"
                    )));
                }
                let old = inner.method(id)?.signature.name.clone();
                inner.method_mut(id)?.signature.name = new_name.clone();
                inner.rewrite_all_bodies(&mut |e| {
                    e.rename_method_uses(&old, &new_name);
                });
                Ok(())
            },
        )
    }

    /// Toggles the `distributed` modifier — the paper's gesture for adding
    /// a method to or removing it from the published server interface (§4).
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn set_distributed(&self, id: MethodId, distributed: bool) -> Result<(), JpieError> {
        self.mutate(
            EditLabel::SetDistributed(id, distributed),
            |_| EventKind::DistributedChanged(id),
            move |inner| {
                inner.method_mut(id)?.signature.distributed = distributed;
                Ok(())
            },
        )
    }

    /// Changes the return type.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn set_return_type(&self, id: MethodId, ty: TypeDesc) -> Result<(), JpieError> {
        self.mutate(
            EditLabel::SetReturnType(id),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                inner.method_mut(id)?.signature.return_ty = ty;
                Ok(())
            },
        )
    }

    /// Appends a parameter. Every existing call site of the method gains a
    /// default-valued argument for it, so the program stays consistent.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale, the name is invalid or duplicated, or `ty`
    /// is `void`.
    pub fn add_param(&self, id: MethodId, name: &str, ty: TypeDesc) -> Result<ParamId, JpieError> {
        let name = name.to_string();
        self.mutate(
            EditLabel::AddParam(id, name.clone()),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                validate_ident(&name)?;
                if ty == TypeDesc::Void {
                    return Err(JpieError::Invalid("void parameter".into()));
                }
                let method_name = inner.method(id)?.signature.name.clone();
                if inner
                    .method(id)?
                    .signature
                    .params
                    .iter()
                    .any(|p| p.name == name)
                {
                    return Err(JpieError::Invalid(format!(
                        "duplicate parameter name {name:?}"
                    )));
                }
                let pid = ParamId(inner.next_id);
                inner.next_id += 1;
                let default = ty.default_value();
                inner.method_mut(id)?.signature.params.push(Param {
                    id: pid,
                    name: name.clone(),
                    ty,
                });
                inner.rewrite_all_bodies(&mut |e| {
                    e.add_param_uses(&method_name, &name, &default);
                });
                Ok(pid)
            },
        )
    }

    /// Removes a parameter; call sites lose the corresponding argument.
    ///
    /// # Errors
    ///
    /// Fails if `id` or `pid` is stale.
    pub fn remove_param(&self, id: MethodId, pid: ParamId) -> Result<(), JpieError> {
        self.mutate(
            EditLabel::RemoveParam(id, pid),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                let method_name = inner.method(id)?.signature.name.clone();
                let param_name = inner
                    .method(id)?
                    .signature
                    .params
                    .iter()
                    .find(|p| p.id == pid)
                    .map(|p| p.name.clone())
                    .ok_or_else(|| JpieError::Invalid(format!("no parameter {pid}")))?;
                inner
                    .method_mut(id)?
                    .signature
                    .params
                    .retain(|p| p.id != pid);
                inner.rewrite_all_bodies(&mut |e| {
                    e.remove_param_uses(&method_name, &param_name);
                });
                Ok(())
            },
        )
    }

    /// Renames a parameter, rewriting references inside the method's own
    /// body and named arguments at every call site.
    ///
    /// # Errors
    ///
    /// Fails if `id`/`pid` is stale or the new name is invalid/duplicated.
    pub fn rename_param(
        &self,
        id: MethodId,
        pid: ParamId,
        new_name: &str,
    ) -> Result<(), JpieError> {
        let new_name = new_name.to_string();
        self.mutate(
            EditLabel::RenameParam(id, pid),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                validate_ident(&new_name)?;
                let method_name = inner.method(id)?.signature.name.clone();
                let sig = &inner.method(id)?.signature;
                if sig.params.iter().any(|p| p.id != pid && p.name == new_name) {
                    return Err(JpieError::Invalid(format!(
                        "duplicate parameter name {new_name:?}"
                    )));
                }
                let old = sig
                    .params
                    .iter()
                    .find(|p| p.id == pid)
                    .map(|p| p.name.clone())
                    .ok_or_else(|| JpieError::Invalid(format!("no parameter {pid}")))?;
                for p in &mut inner.method_mut(id)?.signature.params {
                    if p.id == pid {
                        p.name = new_name.clone();
                    }
                }
                // References inside the renamed method's own body.
                if let MethodBody::Interpreted(block) = &mut inner.method_mut(id)?.body {
                    walk_block_mut(block, &mut |e| {
                        if let Expr::Param(n) = e {
                            if *n == old {
                                *n = new_name.clone();
                            }
                        }
                    });
                }
                // Named arguments at every call site.
                inner.rewrite_all_bodies(&mut |e| {
                    e.rename_param_uses(&method_name, &old, &new_name);
                });
                Ok(())
            },
        )
    }

    /// Reorders the parameter list. Call sites are unaffected because
    /// arguments are named, which is exactly JPie's consistency guarantee
    /// for formal-parameter reorders (§2.3).
    ///
    /// # Errors
    ///
    /// Fails unless `order` is a permutation of the current parameter ids.
    pub fn reorder_params(&self, id: MethodId, order: &[ParamId]) -> Result<(), JpieError> {
        let order = order.to_vec();
        self.mutate(
            EditLabel::ReorderParams(id),
            |_| EventKind::SignatureChanged(id),
            move |inner| {
                let params = &inner.method(id)?.signature.params;
                if order.len() != params.len()
                    || !order.iter().all(|pid| params.iter().any(|p| p.id == *pid))
                {
                    return Err(JpieError::Invalid(
                        "order is not a permutation of the parameter ids".into(),
                    ));
                }
                let mut reordered = Vec::with_capacity(order.len());
                for pid in &order {
                    let p = params
                        .iter()
                        .find(|p| p.id == *pid)
                        .expect("validated above")
                        .clone();
                    reordered.push(p);
                }
                inner.method_mut(id)?.signature.params = reordered;
                Ok(())
            },
        )
    }

    /// Replaces the body with a single `return expr`.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn set_body_expr(&self, id: MethodId, expr: Expr) -> Result<(), JpieError> {
        self.set_body_block(id, vec![Stmt::Return(Some(expr))])
    }

    /// Replaces the body from JPie-script source (see [`crate::parse`]);
    /// bare identifiers matching the method's current parameter names
    /// become parameter references.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale or `src` has a syntax error.
    pub fn set_body_source(&self, id: MethodId, src: &str) -> Result<(), JpieError> {
        let mut block = crate::parse::parse_block(src)?;
        let names: Vec<String> = self
            .signature(id)?
            .params
            .into_iter()
            .map(|(_, n, _)| n)
            .collect();
        crate::parse::resolve_params(&mut block, &names);
        self.set_body_block(id, block)
    }

    /// Renders an interpreted method body back to JPie-script source (the
    /// "view the program" affordance of a live environment). Returns
    /// `None` for native or empty bodies.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn method_source(&self, id: MethodId) -> Result<Option<String>, JpieError> {
        let inner = self.inner.read();
        let method = inner.method(id)?;
        Ok(match &method.body {
            MethodBody::Interpreted(block) => Some(crate::parse::block_to_source(block)),
            _ => None,
        })
    }

    /// Renders the whole class — fields, signatures, bodies — as JPie
    /// script (the "visual representation of class definitions" surface,
    /// textually). Native bodies render as `/* native */`.
    pub fn class_source(&self) -> String {
        let inner = self.inner.read();
        let mut out = match &inner.superclass {
            Some(superclass) => format!("class {} extends {} {{\n", inner.name, superclass),
            None => format!("class {} {{\n", inner.name),
        };
        for (name, ty) in &inner.fields {
            out.push_str(&format!(
                "  field {} {name};\n",
                crate::parse::type_source(ty)
            ));
        }
        if !inner.fields.is_empty() && !inner.methods.is_empty() {
            out.push('\n');
        }
        for m in &inner.methods {
            let sig = &m.signature;
            let params = sig
                .params
                .iter()
                .map(|p| format!("{} {}", crate::parse::type_source(&p.ty), p.name))
                .collect::<Vec<_>>()
                .join(", ");
            let modifier = if sig.distributed { "distributed " } else { "" };
            out.push_str(&format!(
                "  {modifier}{} {}({}) {{\n",
                crate::parse::type_source(&sig.return_ty),
                sig.name,
                params
            ));
            match &m.body {
                MethodBody::Interpreted(block) => {
                    for line in crate::parse::block_to_source(block).lines() {
                        out.push_str("    ");
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                MethodBody::Native(_) => out.push_str("    /* native */\n"),
                MethodBody::Empty => out.push_str("    /* empty */\n"),
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Replaces the body with an interpreted statement block.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn set_body_block(&self, id: MethodId, block: Block) -> Result<(), JpieError> {
        self.mutate(
            EditLabel::SetBody(id),
            |_| EventKind::BodyChanged(id),
            move |inner| {
                inner.method_mut(id)?.body = MethodBody::Interpreted(block);
                Ok(())
            },
        )
    }

    /// Replaces the body with a native closure.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn set_body_native<F>(&self, id: MethodId, f: F) -> Result<(), JpieError>
    where
        F: Fn(&mut Fields, &[Value]) -> Result<Value, JpieError> + Send + Sync + 'static,
    {
        self.mutate(
            EditLabel::SetBody(id),
            |_| EventKind::BodyChanged(id),
            move |inner| {
                inner.method_mut(id)?.body = MethodBody::Native(Arc::new(f));
                Ok(())
            },
        )
    }

    /// Declares an instance field. Live instances gain it immediately with
    /// the type's default value.
    ///
    /// # Errors
    ///
    /// Fails on an invalid or duplicate name, or a `void` type.
    pub fn add_field(&self, name: &str, ty: TypeDesc) -> Result<(), JpieError> {
        let name = name.to_string();
        self.mutate(
            EditLabel::AddField(name.clone()),
            |_| EventKind::FieldsChanged,
            move |inner| {
                validate_ident(&name)?;
                if ty == TypeDesc::Void {
                    return Err(JpieError::Invalid("void field".into()));
                }
                if inner.fields.iter().any(|(n, _)| *n == name) {
                    return Err(JpieError::Invalid(format!("duplicate field {name:?}")));
                }
                inner.fields.push((name, ty));
                Ok(())
            },
        )
    }

    /// Renames an instance field, rewriting every read (`this.old`) and
    /// write (`this.old = ...`) in interpreted bodies — declaration/use
    /// consistency for fields.
    ///
    /// # Errors
    ///
    /// Fails if the field does not exist or the new name is
    /// invalid/duplicated.
    pub fn rename_field(&self, old: &str, new: &str) -> Result<(), JpieError> {
        let old = old.to_string();
        let new = new.to_string();
        self.mutate(
            EditLabel::RenameField(old.clone()),
            |_| EventKind::FieldsChanged,
            move |inner| {
                validate_ident(&new)?;
                if !inner.fields.iter().any(|(n, _)| *n == old) {
                    return Err(JpieError::NoSuchField(old.clone()));
                }
                if inner.fields.iter().any(|(n, _)| *n == new) {
                    return Err(JpieError::Invalid(format!("duplicate field {new:?}")));
                }
                for (n, _) in &mut inner.fields {
                    if *n == old {
                        *n = new.clone();
                    }
                }
                // Field reads inside expressions.
                inner.rewrite_all_bodies(&mut |e| {
                    if let Expr::FieldRef(n) = e {
                        if *n == old {
                            *n = new.clone();
                        }
                    }
                });
                // Field writes are statements, not expressions: walk the
                // statement tree of every interpreted body.
                for m in &mut inner.methods {
                    if let MethodBody::Interpreted(block) = &mut m.body {
                        rename_setfield_targets(block, &old, &new);
                    }
                }
                // Migrate the live instance's stored value.
                if let Some(store) = inner.live_fields.as_ref().and_then(Weak::upgrade) {
                    store.lock().rename(&old, &new);
                }
                Ok(())
            },
        )
    }

    /// Removes an instance field.
    ///
    /// # Errors
    ///
    /// Fails if the field does not exist.
    pub fn remove_field(&self, name: &str) -> Result<(), JpieError> {
        let name = name.to_string();
        self.mutate(
            EditLabel::RemoveField(name.clone()),
            |_| EventKind::FieldsChanged,
            move |inner| {
                let before = inner.fields.len();
                inner.fields.retain(|(n, _)| *n != name);
                if inner.fields.len() == before {
                    return Err(JpieError::NoSuchField(name.clone()));
                }
                Ok(())
            },
        )
    }

    // -- undo / redo ---------------------------------------------------------

    /// Undoes the most recent edit. Fires [`EventKind::Undone`].
    ///
    /// # Errors
    ///
    /// Fails if there is nothing to undo.
    pub fn undo(&self) -> Result<(), JpieError> {
        self.step_history(true)
    }

    /// Re-applies the most recently undone edit. Fires
    /// [`EventKind::Redone`].
    ///
    /// # Errors
    ///
    /// Fails if there is nothing to redo.
    pub fn redo(&self) -> Result<(), JpieError> {
        self.step_history(false)
    }

    fn step_history(&self, undo: bool) -> Result<(), JpieError> {
        let mut inner = self.inner.write();
        self.invalidate_snapshots(&mut inner);
        let record = if undo {
            inner.undo_stack.pop()
        } else {
            inner.redo_stack.pop()
        }
        .ok_or(JpieError::NothingToUndo)?;
        let before_fp = inner.interface_fingerprint();
        if undo {
            inner.methods = record.before_methods.clone();
            inner.fields = record.before_fields.clone();
            inner.redo_stack.push(record);
        } else {
            inner.methods = record.after_methods.clone();
            inner.fields = record.after_fields.clone();
            inner.undo_stack.push(record);
        }
        let distributed_change = inner.interface_fingerprint() != before_fp;
        if distributed_change {
            inner.interface_version += 1;
        }
        let event = ClassEvent {
            class: inner.name.clone(),
            kind: if undo {
                EventKind::Undone
            } else {
                EventKind::Redone
            },
            interface_version: inner.interface_version,
            distributed_change,
        };
        Self::fire(&mut inner, event);
        Ok(())
    }

    // -- inspection -----------------------------------------------------------

    /// Signature snapshot of one method.
    ///
    /// # Errors
    ///
    /// Fails if `id` is stale.
    pub fn signature(&self, id: MethodId) -> Result<SignatureView, JpieError> {
        Ok(SignatureView::of(self.inner.read().method(id)?))
    }

    /// Signature snapshots of all methods, in declaration order.
    pub fn signatures(&self) -> Vec<SignatureView> {
        self.inner
            .read()
            .methods
            .iter()
            .map(SignatureView::of)
            .collect()
    }

    /// Signature snapshots of the distributed methods only — the published
    /// server interface.
    pub fn distributed_signatures(&self) -> Vec<SignatureView> {
        (*self.distributed_signatures_shared().1).clone()
    }

    /// Monotonic edit epoch: bumped by every mutation, including
    /// undo/redo. Callers cache [`Arc`] snapshots keyed by this value; a
    /// `Relaxed` load suffices for the check because the epoch only
    /// advances while the class write lock is held — a reader that
    /// observes a new epoch and refreshes through the class lock
    /// synchronizes with the edit, and a same-thread edit is always
    /// observed by program order.
    pub fn edit_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The current `(epoch, method table)` snapshot. Rebuilds the shared
    /// table only after an edit; between edits the same `Arc` is
    /// returned, so the invoke hot path never clones the method `Vec`.
    pub(crate) fn method_table(&self) -> (u64, Arc<MethodTable>) {
        {
            let inner = self.inner.read();
            if let Some(t) = &inner.table_cache {
                // Epoch read under the read lock: bumps require the
                // write lock, so this pairs with the cached table.
                return (self.epoch.load(Ordering::Relaxed), t.clone());
            }
        }
        let mut inner = self.inner.write();
        let table = match &inner.table_cache {
            Some(t) => t.clone(),
            None => {
                obs::registry().counter("jpie_table_rebuilds_total").inc();
                let t = Arc::new(MethodTable {
                    methods: inner.methods.clone(),
                    fields: inner.fields.clone(),
                });
                inner.table_cache = Some(t.clone());
                t
            }
        };
        (self.epoch.load(Ordering::Relaxed), table)
    }

    /// The current `(epoch, distributed signatures)` snapshot, shared
    /// with callers (the RMI gateway caches it keyed by the epoch so
    /// name→method resolution does not clone signatures per call).
    pub fn distributed_signatures_shared(&self) -> (u64, Arc<Vec<SignatureView>>) {
        {
            let inner = self.inner.read();
            if let Some(s) = &inner.dist_cache {
                return (self.epoch.load(Ordering::Relaxed), s.clone());
            }
        }
        let mut inner = self.inner.write();
        let sigs = match &inner.dist_cache {
            Some(s) => s.clone(),
            None => {
                let s: Arc<Vec<SignatureView>> = Arc::new(
                    inner
                        .methods
                        .iter()
                        .filter(|m| m.signature.distributed)
                        .map(SignatureView::of)
                        .collect(),
                );
                inner.dist_cache = Some(s.clone());
                s
            }
        };
        (self.epoch.load(Ordering::Relaxed), sigs)
    }

    /// Finds a method id by current name.
    pub fn find_method(&self, name: &str) -> Option<MethodId> {
        self.inner
            .read()
            .methods
            .iter()
            .find(|m| m.signature.name == name)
            .map(|m| m.id)
    }

    /// Declared instance fields.
    pub fn declared_fields(&self) -> Vec<(String, TypeDesc)> {
        self.inner.read().fields.clone()
    }

    // -- instantiation ---------------------------------------------------------

    /// Creates the live instance of this class.
    ///
    /// # Errors
    ///
    /// Per the paper (§5.4) only a single instance of each server class may
    /// exist at a time; a second call fails with
    /// [`JpieError::AlreadyInstantiated`] until the first instance is
    /// dropped.
    pub fn instantiate(&self) -> Result<Instance, JpieError> {
        let mut inner = self.inner.write();
        if inner.instantiated {
            return Err(JpieError::AlreadyInstantiated(inner.name.clone()));
        }
        inner.instantiated = true;
        let fields: HashMap<String, Value> = inner
            .fields
            .iter()
            .map(|(n, t)| (n.clone(), t.default_value()))
            .collect();
        let store = Arc::new(Mutex::new(Fields::from_map(fields)));
        inner.live_fields = Some(Arc::downgrade(&store));
        drop(inner);
        Ok(Instance::with_store(self.clone(), store))
    }

    pub(crate) fn release_instance(&self) {
        let mut inner = self.inner.write();
        inner.instantiated = false;
        inner.live_fields = None;
    }
}

/// Rewrites `SetField` statement targets from `old` to `new`, recursing
/// into nested blocks.
fn rename_setfield_targets(block: &mut Block, old: &str, new: &str) {
    for stmt in block {
        match stmt {
            Stmt::SetField(name, _) if name == old => *name = new.to_string(),
            Stmt::If {
                then, otherwise, ..
            } => {
                rename_setfield_targets(then, old, new);
                rename_setfield_targets(otherwise, old, new);
            }
            Stmt::While { body, .. } => rename_setfield_targets(body, old, new),
            _ => {}
        }
    }
}

fn validate_ident(name: &str) -> Result<(), JpieError> {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => chars.all(|c| c.is_alphanumeric() || c == '_'),
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(JpieError::Invalid(format!("invalid identifier {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn simple_class() -> (ClassHandle, MethodId) {
        let class = ClassHandle::new("C");
        let id = class
            .add_method(
                MethodBuilder::new("f", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::lit(1)),
            )
            .unwrap();
        (class, id)
    }

    #[test]
    fn add_method_assigns_stable_ids() {
        let (class, id) = simple_class();
        let sig = class.signature(id).unwrap();
        assert_eq!(sig.name, "f");
        assert_eq!(sig.params.len(), 1);
        assert!(sig.distributed);
        assert_eq!(class.find_method("f"), Some(id));
        assert_eq!(class.find_method("missing"), None);
    }

    #[test]
    fn duplicate_method_name_rejected() {
        let (class, _) = simple_class();
        assert!(class
            .add_method(MethodBuilder::new("f", TypeDesc::Void))
            .is_err());
    }

    #[test]
    fn invalid_identifiers_rejected() {
        let class = ClassHandle::new("C");
        assert!(class
            .add_method(MethodBuilder::new("1bad", TypeDesc::Void))
            .is_err());
        assert!(class
            .add_method(MethodBuilder::new("with space", TypeDesc::Void))
            .is_err());
        assert!(class
            .add_method(MethodBuilder::new("", TypeDesc::Void))
            .is_err());
    }

    #[test]
    fn interface_version_tracks_distributed_changes_only() {
        let (class, id) = simple_class();
        let v0 = class.interface_version();

        // Body change: not an interface change.
        class.set_body_expr(id, Expr::param("a")).unwrap();
        assert_eq!(class.interface_version(), v0);

        // Rename: interface change.
        class.rename_method(id, "g").unwrap();
        assert_eq!(class.interface_version(), v0 + 1);

        // Non-distributed method add: not an interface change.
        class
            .add_method(MethodBuilder::new("helper", TypeDesc::Void))
            .unwrap();
        assert_eq!(class.interface_version(), v0 + 1);

        // Making it distributed: interface change.
        let h = class.find_method("helper").unwrap();
        class.set_distributed(h, true).unwrap();
        assert_eq!(class.interface_version(), v0 + 2);
    }

    #[test]
    fn rename_rewrites_call_sites() {
        let (class, _f) = simple_class();
        let g = class
            .add_method(
                MethodBuilder::new("g", TypeDesc::Int)
                    .body_expr(Expr::self_call("f", vec![("a", Expr::lit(41))])),
            )
            .unwrap();
        let f = class.find_method("f").unwrap();
        class.rename_method(f, "plus_one").unwrap();

        // g's body must now call plus_one — verified by executing it.
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke_id(g, &[]).unwrap(), Value::Int(42));
    }

    #[test]
    fn add_param_keeps_call_sites_consistent() {
        let (class, f) = simple_class();
        let g = class
            .add_method(
                MethodBuilder::new("g", TypeDesc::Int)
                    .body_expr(Expr::self_call("f", vec![("a", Expr::lit(1))])),
            )
            .unwrap();
        class.add_param(f, "b", TypeDesc::Int).unwrap();
        class
            .set_body_expr(f, Expr::param("a") + Expr::param("b"))
            .unwrap();
        let inst = class.instantiate().unwrap();
        // g's call site gained b = default 0 automatically.
        assert_eq!(inst.invoke_id(g, &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn remove_param_strips_call_sites() {
        let (class, f) = simple_class();
        let pid = class.signature(f).unwrap().params[0].0;
        let g = class
            .add_method(
                MethodBuilder::new("g", TypeDesc::Int)
                    .body_expr(Expr::self_call("f", vec![("a", Expr::lit(10))])),
            )
            .unwrap();
        class.remove_param(f, pid).unwrap();
        class.set_body_expr(f, Expr::lit(7)).unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke_id(g, &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn rename_param_rewrites_body_and_call_sites() {
        let (class, f) = simple_class();
        let pid = class.signature(f).unwrap().params[0].0;
        let g = class
            .add_method(
                MethodBuilder::new("g", TypeDesc::Int)
                    .body_expr(Expr::self_call("f", vec![("a", Expr::lit(4))])),
            )
            .unwrap();
        class.rename_param(f, pid, "x").unwrap();
        assert_eq!(class.signature(f).unwrap().params[0].1, "x");
        let inst = class.instantiate().unwrap();
        // f's own body (`a + 1`) was rewritten to use x; g's named arg too.
        assert_eq!(inst.invoke_id(f, &[Value::Int(4)]).unwrap(), Value::Int(5));
        assert_eq!(inst.invoke_id(g, &[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn reorder_params_is_signature_change_but_calls_survive() {
        let class = ClassHandle::new("C");
        let f = class
            .add_method(
                MethodBuilder::new("sub", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") - Expr::param("b")),
            )
            .unwrap();
        let g = class
            .add_method(
                MethodBuilder::new("g", TypeDesc::Int).body_expr(Expr::self_call(
                    "sub",
                    vec![("a", Expr::lit(10)), ("b", Expr::lit(3))],
                )),
            )
            .unwrap();
        let ids: Vec<ParamId> = class
            .signature(f)
            .unwrap()
            .params
            .iter()
            .map(|p| p.0)
            .collect();
        let v0 = class.interface_version();
        class.reorder_params(f, &[ids[1], ids[0]]).unwrap();
        assert_eq!(class.interface_version(), v0 + 1);
        assert_eq!(class.signature(f).unwrap().params[0].1, "b");

        let inst = class.instantiate().unwrap();
        // Positional semantics changed for direct invokes...
        assert_eq!(
            inst.invoke_id(f, &[Value::Int(3), Value::Int(10)]).unwrap(),
            Value::Int(7)
        );
        // ...but the named call site still computes 10 - 3.
        assert_eq!(inst.invoke_id(g, &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn reorder_requires_permutation() {
        let (class, f) = simple_class();
        assert!(class.reorder_params(f, &[]).is_err());
        assert!(class.reorder_params(f, &[ParamId(999)]).is_err());
    }

    #[test]
    fn undo_redo_roundtrip() {
        let (class, f) = simple_class();
        let v_before = class.interface_version();
        class.rename_method(f, "g").unwrap();
        let v_after = class.interface_version();
        assert_ne!(v_before, v_after);

        class.undo().unwrap();
        assert_eq!(class.signature(f).unwrap().name, "f");
        class.redo().unwrap();
        assert_eq!(class.signature(f).unwrap().name, "g");
        assert!(class.redo().is_err());
    }

    #[test]
    fn undo_restores_interface_and_bumps_version() {
        let (class, f) = simple_class();
        let v0 = class.interface_version();
        class.rename_method(f, "g").unwrap();
        class.undo().unwrap();
        // Undo changed the distributed interface again → version advances.
        assert_eq!(class.interface_version(), v0 + 2);
    }

    #[test]
    fn undo_empty_stack_errors() {
        let class = ClassHandle::new("C");
        assert!(matches!(class.undo(), Err(JpieError::NothingToUndo)));
        assert!(matches!(class.redo(), Err(JpieError::NothingToUndo)));
    }

    #[test]
    fn new_edit_clears_redo_stack() {
        let (class, f) = simple_class();
        class.rename_method(f, "g").unwrap();
        class.undo().unwrap();
        class.set_distributed(f, false).unwrap();
        assert!(class.redo().is_err());
    }

    #[test]
    fn events_carry_distributed_flag() {
        let (class, f) = simple_class();
        let rx = class.subscribe();
        class.set_body_expr(f, Expr::lit(0)).unwrap();
        let e = rx.try_recv().unwrap();
        assert!(matches!(e.kind, EventKind::BodyChanged(_)));
        assert!(!e.distributed_change);

        class.rename_method(f, "g").unwrap();
        let e = rx.try_recv().unwrap();
        assert!(matches!(e.kind, EventKind::SignatureChanged(_)));
        assert!(e.distributed_change);

        class.undo().unwrap();
        let e = rx.try_recv().unwrap();
        assert!(matches!(e.kind, EventKind::Undone));
        assert!(e.distributed_change);
    }

    #[test]
    fn single_instance_rule() {
        let (class, _) = simple_class();
        let inst = class.instantiate().unwrap();
        assert!(matches!(
            class.instantiate(),
            Err(JpieError::AlreadyInstantiated(_))
        ));
        drop(inst);
        assert!(class.instantiate().is_ok());
    }

    #[test]
    fn fields_add_remove() {
        let class = ClassHandle::new("C");
        class.add_field("count", TypeDesc::Int).unwrap();
        assert!(class.add_field("count", TypeDesc::Int).is_err());
        assert_eq!(class.declared_fields().len(), 1);
        class.remove_field("count").unwrap();
        assert!(class.remove_field("count").is_err());
        assert!(class.add_field("x", TypeDesc::Void).is_err());
    }

    #[test]
    fn history_depth_reports() {
        let (class, f) = simple_class();
        assert_eq!(class.history_depth(), (1, 0)); // the add_method
        class.rename_method(f, "g").unwrap();
        assert_eq!(class.history_depth(), (2, 0));
        class.undo().unwrap();
        assert_eq!(class.history_depth(), (1, 1));
    }

    #[test]
    fn distributed_signatures_filters() {
        let (class, _) = simple_class();
        class
            .add_method(MethodBuilder::new("local_only", TypeDesc::Void))
            .unwrap();
        assert_eq!(class.signatures().len(), 2);
        assert_eq!(class.distributed_signatures().len(), 1);
    }

    #[test]
    fn rename_field_rewrites_uses_and_migrates_state() {
        let class = ClassHandle::new("C");
        class.add_field("count", TypeDesc::Int).unwrap();
        let bump = class
            .add_method(
                MethodBuilder::new("bump", TypeDesc::Int)
                    .body_source("this.count = this.count + 1; return this.count;")
                    .unwrap(),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Value::Int(1));
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Value::Int(2));

        class.rename_field("count", "total").unwrap();
        // Declaration renamed, body rewritten, live value migrated.
        assert_eq!(class.declared_fields()[0].0, "total");
        let source = class.method_source(bump).unwrap().unwrap();
        assert!(source.contains("this.total"), "{source}");
        assert!(!source.contains("this.count"), "{source}");
        assert_eq!(inst.field("total").unwrap(), Value::Int(2));
        assert_eq!(inst.invoke("bump", &[]).unwrap(), Value::Int(3));
        assert!(inst.field("count").is_err());
    }

    #[test]
    fn rename_field_validation() {
        let class = ClassHandle::new("C");
        class.add_field("a", TypeDesc::Int).unwrap();
        class.add_field("b", TypeDesc::Int).unwrap();
        assert!(class.rename_field("missing", "x").is_err());
        assert!(class.rename_field("a", "b").is_err());
        assert!(class.rename_field("a", "1bad").is_err());
        class.rename_field("a", "c").unwrap();
        assert!(class.declared_fields().iter().any(|(n, _)| n == "c"));
    }

    #[test]
    fn rename_field_in_nested_statements() {
        let class = ClassHandle::new("C");
        class.add_field("n", TypeDesc::Int).unwrap();
        let m = class
            .add_method(
                MethodBuilder::new("loopy", TypeDesc::Int)
                    .body_source(
                        "let i = 0; \
                         while (i < 3) { \
                           if (true) { this.n = this.n + 1; } else { this.n = 0; } \
                           i = i + 1; \
                         } \
                         return this.n;",
                    )
                    .unwrap(),
            )
            .unwrap();
        class.rename_field("n", "acc").unwrap();
        let source = class.method_source(m).unwrap().unwrap();
        assert!(!source.contains("this.n"), "{source}");
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("loopy", &[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn class_source_renders_everything() {
        let class = ClassHandle::new("Shown");
        class.add_field("count", TypeDesc::Int).unwrap();
        class
            .add_method(
                MethodBuilder::new("inc", TypeDesc::Int)
                    .param("by", TypeDesc::Int)
                    .distributed(true)
                    .body_source("this.count = this.count + by; return this.count;")
                    .unwrap(),
            )
            .unwrap();
        class
            .add_method(
                MethodBuilder::new("native_op", TypeDesc::Void)
                    .body_native(|_f, _a| Ok(crate::Value::Null)),
            )
            .unwrap();
        let src = class.class_source();
        assert!(src.contains("class Shown {"), "{src}");
        assert!(src.contains("field int count;"), "{src}");
        assert!(src.contains("distributed int inc(int by) {"), "{src}");
        assert!(src.contains("this.count = this.count + by;"), "{src}");
        assert!(src.contains("/* native */"), "{src}");
    }

    #[test]
    fn stale_method_id_errors() {
        let (class, f) = simple_class();
        class.remove_method(f).unwrap();
        assert!(matches!(
            class.signature(f),
            Err(JpieError::StaleMethodId(_))
        ));
        assert!(class.rename_method(f, "x").is_err());
        assert!(class.set_distributed(f, true).is_err());
        assert!(class.remove_method(f).is_err());
    }
}
