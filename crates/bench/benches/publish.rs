//! Benchmarks of the publication path: interface generation cost (the
//! operation §5.6 calls "relatively expensive" and schedules carefully),
//! and the §5.7 `ensure_current` fast path that makes rogue clients
//! harmless.
//!
//! Run with `cargo bench --bench publish`.

use std::hint::black_box;
use std::time::Duration;

use bench::harness::run;
use jpie::{ClassHandle, MethodBuilder, TypeDesc};
use sde::publish::{GeneratedDoc, PublicationStrategy, PublisherCore};
use soap::WsdlDocument;

fn class_with(methods: usize) -> ClassHandle {
    let class = ClassHandle::new("Gen");
    for i in 0..methods {
        class
            .add_method(
                MethodBuilder::new(format!("op{i}"), TypeDesc::Int)
                    .param("x", TypeDesc::Int)
                    .distributed(true),
            )
            .expect("method");
    }
    class
}

fn bench_generation() {
    for methods in [1usize, 10, 50] {
        let class = class_with(methods);
        run(&format!("wsdl_generation_{methods}_methods"), || {
            black_box(
                WsdlDocument::from_signatures(
                    class.name(),
                    "mem://x/Gen",
                    &class.distributed_signatures(),
                    class.interface_version(),
                )
                .to_xml(),
            );
        });
    }
}

fn bench_ensure_current() {
    let class = class_with(5);
    let gen_class = class.clone();
    let publisher = PublisherCore::start(
        class,
        PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        Box::new(move || GeneratedDoc {
            text: format!("v{}", gen_class.interface_version()),
            version: gen_class.interface_version(),
        }),
        Box::new(|_doc| {}),
    );
    publisher.ensure_current();
    // The steady-state fast path: published interface already current.
    run("ensure_current_noop", || {
        publisher.ensure_current();
    });
    publisher.shutdown();
}

fn bench_signature_snapshot() {
    let class = class_with(50);
    run("distributed_signatures_50", || {
        black_box(class.distributed_signatures());
    });
}

fn main() {
    bench_generation();
    bench_ensure_current();
    bench_signature_snapshot();
}
