//! Benchmarks of the publication path: interface generation cost (the
//! operation §5.6 calls "relatively expensive" and schedules carefully),
//! and the §5.7 `ensure_current` fast path that makes rogue clients
//! harmless.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use jpie::{ClassHandle, MethodBuilder, TypeDesc};
use sde::publish::{GeneratedDoc, PublicationStrategy, PublisherCore};
use soap::WsdlDocument;

fn class_with(methods: usize) -> ClassHandle {
    let class = ClassHandle::new("Gen");
    for i in 0..methods {
        class
            .add_method(
                MethodBuilder::new(format!("op{i}"), TypeDesc::Int)
                    .param("x", TypeDesc::Int)
                    .distributed(true),
            )
            .expect("method");
    }
    class
}

fn bench_generation(c: &mut Criterion) {
    for methods in [1usize, 10, 50] {
        let class = class_with(methods);
        c.bench_function(&format!("wsdl_generation_{methods}_methods"), |b| {
            b.iter(|| {
                WsdlDocument::from_signatures(
                    class.name(),
                    "mem://x/Gen",
                    &class.distributed_signatures(),
                    class.interface_version(),
                )
                .to_xml()
            })
        });
    }
}

fn bench_ensure_current(c: &mut Criterion) {
    let class = class_with(5);
    let gen_class = class.clone();
    let publisher = PublisherCore::start(
        class,
        PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        Box::new(move || GeneratedDoc {
            text: format!("v{}", gen_class.interface_version()),
            version: gen_class.interface_version(),
        }),
        Box::new(|_doc| {}),
    );
    publisher.ensure_current();
    // The steady-state fast path: published interface already current.
    c.bench_function("ensure_current_noop", |b| {
        b.iter(|| publisher.ensure_current())
    });
    publisher.shutdown();
}

fn bench_signature_snapshot(c: &mut Criterion) {
    let class = class_with(50);
    c.bench_function("distributed_signatures_50", |b| {
        b.iter(|| class.distributed_signatures())
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_ensure_current,
    bench_signature_snapshot
);
criterion_main!(benches);
