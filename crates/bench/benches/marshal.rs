//! Micro-benchmarks of the wire substrates: CDR `any` marshalling, SOAP
//! envelope encode/decode, WSDL and IDL generation+parsing. These isolate
//! where the Table 1 RTT goes and why SOAP is slower than CORBA (the
//! paper's 0.58 s vs 0.51 s ordering).
//!
//! Run with `cargo bench --bench marshal`.

use bench::harness::run;
use corba::cdr::{read_any, write_any, CdrReader, CdrWriter};
use jpie::{ClassHandle, MethodBuilder, StructValue, TypeDesc, Value};
use soap::{SoapRequest, SoapResponse, WsdlDocument};
use std::hint::black_box;

fn sample_value() -> Value {
    Value::Struct(
        StructValue::new("Order")
            .with("id", Value::Long(123_456_789))
            .with("customer", Value::Str("Sajeeva Pallemulle".into()))
            .with(
                "items",
                Value::Seq(
                    TypeDesc::Named("Item".into()),
                    (0..8)
                        .map(|i| {
                            Value::Struct(
                                StructValue::new("Item")
                                    .with("sku", Value::Str(format!("SKU-{i:04}")))
                                    .with("qty", Value::Int(i))
                                    .with("price", Value::Double(9.99 * f64::from(i))),
                            )
                        })
                        .collect(),
                ),
            ),
    )
}

fn interface_class(methods: usize) -> ClassHandle {
    let class = ClassHandle::new("Wide");
    for i in 0..methods {
        class
            .add_method(
                MethodBuilder::new(format!("op{i}"), TypeDesc::Str)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Str)
                    .distributed(true),
            )
            .expect("method");
    }
    class
}

fn bench_cdr() {
    let value = sample_value();
    run("cdr_write_any", || {
        let mut w = CdrWriter::new(true);
        write_any(&mut w, &value);
        black_box(w.into_bytes());
    });
    let mut w = CdrWriter::new(true);
    write_any(&mut w, &value);
    let bytes = w.into_bytes();
    run("cdr_read_any", || {
        let mut r = CdrReader::new(&bytes, true);
        black_box(read_any(&mut r).expect("decode"));
    });
}

fn bench_soap() {
    let req = SoapRequest::new("urn:Orders", "submit").arg("order", sample_value());
    run("soap_encode_request", || {
        black_box(req.to_xml());
    });
    let xml = req.to_xml();
    run("soap_decode_request", || {
        black_box(soap::decode_request(&xml).expect("decode"));
    });
    let resp_xml = SoapResponse::encode_ok("submit", "urn:Orders", &sample_value());
    run("soap_decode_response", || {
        black_box(soap::decode_response(&resp_xml).expect("decode"));
    });
}

fn bench_interface_docs() {
    let class = interface_class(20);
    let sigs = class.distributed_signatures();
    run("wsdl_generate_20ops", || {
        black_box(WsdlDocument::from_signatures("Wide", "mem://x/Wide", &sigs, 1).to_xml());
    });
    let wsdl_xml = WsdlDocument::from_signatures("Wide", "mem://x/Wide", &sigs, 1).to_xml();
    run("wsdl_parse_20ops", || {
        black_box(WsdlDocument::parse(&wsdl_xml).expect("parse"));
    });
    run("idl_generate_20ops", || {
        black_box(corba::IdlModule::from_signatures("Wide", &sigs, 1).to_idl());
    });
    let idl_text = corba::IdlModule::from_signatures("Wide", &sigs, 1).to_idl();
    run("idl_parse_20ops", || {
        black_box(corba::IdlModule::parse(&idl_text).expect("parse"));
    });
}

fn bench_dispatch_overhead() {
    // The design-choice ablation: dynamic-class invocation (what SDE pays
    // per call) vs. a direct closure (what a static server pays).
    let class = ClassHandle::new("D");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("s", TypeDesc::Str)
                .distributed(true)
                .body_expr(jpie::expr::Expr::param("s")),
        )
        .expect("method");
    let instance = class.instantiate().expect("instance");
    let arg = [Value::Str("payload".into())];
    run("dispatch_dynamic_class", || {
        black_box(instance.invoke_distributed("echo", &arg).expect("invoke"));
    });
    let direct = |args: &[Value]| -> Value { args[0].clone() };
    run("dispatch_static_closure", || {
        black_box(direct(black_box(&arg)));
    });
}

fn main() {
    bench_cdr();
    bench_soap();
    bench_interface_docs();
    bench_dispatch_overhead();
}
