//! Micro-benchmarks of the wire substrates: CDR `any` marshalling, SOAP
//! envelope encode/decode, WSDL and IDL generation+parsing. These isolate
//! where the Table 1 RTT goes and why SOAP is slower than CORBA (the
//! paper's 0.58 s vs 0.51 s ordering).

use corba::cdr::{read_any, write_any, CdrReader, CdrWriter};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jpie::{ClassHandle, MethodBuilder, StructValue, TypeDesc, Value};
use soap::{SoapRequest, SoapResponse, WsdlDocument};

fn sample_value() -> Value {
    Value::Struct(
        StructValue::new("Order")
            .with("id", Value::Long(123_456_789))
            .with("customer", Value::Str("Sajeeva Pallemulle".into()))
            .with(
                "items",
                Value::Seq(
                    TypeDesc::Named("Item".into()),
                    (0..8)
                        .map(|i| {
                            Value::Struct(
                                StructValue::new("Item")
                                    .with("sku", Value::Str(format!("SKU-{i:04}")))
                                    .with("qty", Value::Int(i))
                                    .with("price", Value::Double(9.99 * f64::from(i))),
                            )
                        })
                        .collect(),
                ),
            ),
    )
}

fn interface_class(methods: usize) -> ClassHandle {
    let class = ClassHandle::new("Wide");
    for i in 0..methods {
        class
            .add_method(
                MethodBuilder::new(format!("op{i}"), TypeDesc::Str)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Str)
                    .distributed(true),
            )
            .expect("method");
    }
    class
}

fn bench_cdr(c: &mut Criterion) {
    let value = sample_value();
    c.bench_function("cdr_write_any", |b| {
        b.iter(|| {
            let mut w = CdrWriter::new(true);
            write_any(&mut w, &value);
            w.into_bytes()
        })
    });
    let mut w = CdrWriter::new(true);
    write_any(&mut w, &value);
    let bytes = w.into_bytes();
    c.bench_function("cdr_read_any", |b| {
        b.iter(|| {
            let mut r = CdrReader::new(&bytes, true);
            read_any(&mut r).expect("decode")
        })
    });
}

fn bench_soap(c: &mut Criterion) {
    let req = SoapRequest::new("urn:Orders", "submit").arg("order", sample_value());
    c.bench_function("soap_encode_request", |b| b.iter(|| req.to_xml()));
    let xml = req.to_xml();
    c.bench_function("soap_decode_request", |b| {
        b.iter(|| soap::decode_request(&xml).expect("decode"))
    });
    let resp_xml = SoapResponse::encode_ok("submit", "urn:Orders", &sample_value());
    c.bench_function("soap_decode_response", |b| {
        b.iter(|| soap::decode_response(&resp_xml).expect("decode"))
    });
}

fn bench_interface_docs(c: &mut Criterion) {
    let class = interface_class(20);
    let sigs = class.distributed_signatures();
    c.bench_function("wsdl_generate_20ops", |b| {
        b.iter(|| WsdlDocument::from_signatures("Wide", "mem://x/Wide", &sigs, 1).to_xml())
    });
    let wsdl_xml = WsdlDocument::from_signatures("Wide", "mem://x/Wide", &sigs, 1).to_xml();
    c.bench_function("wsdl_parse_20ops", |b| {
        b.iter(|| WsdlDocument::parse(&wsdl_xml).expect("parse"))
    });
    c.bench_function("idl_generate_20ops", |b| {
        b.iter(|| corba::IdlModule::from_signatures("Wide", &sigs, 1).to_idl())
    });
    let idl_text = corba::IdlModule::from_signatures("Wide", &sigs, 1).to_idl();
    c.bench_function("idl_parse_20ops", |b| {
        b.iter(|| corba::IdlModule::parse(&idl_text).expect("parse"))
    });
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // The design-choice ablation: dynamic-class invocation (what SDE pays
    // per call) vs. a direct closure (what a static server pays).
    let class = ClassHandle::new("D");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("s", TypeDesc::Str)
                .distributed(true)
                .body_expr(jpie::expr::Expr::param("s")),
        )
        .expect("method");
    let instance = class.instantiate().expect("instance");
    let arg = [Value::Str("payload".into())];
    c.bench_function("dispatch_dynamic_class", |b| {
        b.iter(|| instance.invoke_distributed("echo", &arg).expect("invoke"))
    });
    let direct = |args: &[Value]| -> Value { args[0].clone() };
    c.bench_function("dispatch_static_closure", |b| {
        b.iter_batched(|| arg.clone(), |a| direct(&a), BatchSize::SmallInput)
    });
}

criterion_group!(
    benches,
    bench_cdr,
    bench_soap,
    bench_interface_docs,
    bench_dispatch_overhead
);
criterion_main!(benches);
