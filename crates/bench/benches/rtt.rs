//! Micro-benchmark companion to the Table 1 harness: per-call RTT of the
//! four server/client configurations over the deterministic in-memory
//! transport (so CI noise doesn't drown the SDE-vs-static delta).
//!
//! Run with `cargo bench --bench rtt`.

use std::time::Duration;

use baseline::{StaticCorbaClient, StaticCorbaServer, StaticSoapClient, StaticSoapServer};
use bench::harness::run;
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("EchoService");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("payload", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("payload")),
        )
        .expect("echo method");
    class
}

const PAYLOAD: &str = "The quick brown fox jumps over the lazy dog.";

fn main() {
    // SDE SOAP / static Axis-style client.
    {
        let manager = SdeManager::new(SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        })
        .expect("manager");
        let server = manager.deploy_soap(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let wsdl = manager.interface_document("EchoService").expect("wsdl");
        let mut client = StaticSoapClient::from_wsdl_xml(&wsdl).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        run("rtt/sde_soap", || {
            client.call("echo", &arg).expect("call");
        });
        manager.shutdown();
    }

    // Static SOAP ("Axis-Tomcat").
    {
        let mut b = StaticSoapServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let server = b.bind("mem://crit-static-soap").expect("bind");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        run("rtt/static_soap", || {
            client.call("echo", &arg).expect("call");
        });
        server.shutdown();
    }

    // SDE CORBA / static OpenORB-style client.
    {
        let manager = SdeManager::new(SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        })
        .expect("manager");
        let server = manager.deploy_corba(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let idl = corba::IdlModule::from_signatures(
            "EchoService",
            &server.class().distributed_signatures(),
            server.class().interface_version(),
        );
        let mut client = StaticCorbaClient::connect(idl, &server.ior()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        run("rtt/sde_corba", || {
            client.call("echo", &arg).expect("call");
        });
        manager.shutdown();
    }

    // Static CORBA ("OpenORB").
    {
        let mut b = StaticCorbaServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let server = b.bind("mem://crit-static-corba").expect("bind");
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        run("rtt/static_corba", || {
            client.call("echo", &arg).expect("call");
        });
        server.shutdown();
    }
}
