//! Micro-benchmark companion to the Table 1 harness: per-call RTT of the
//! four server/client configurations over the deterministic in-memory
//! transport (so CI noise doesn't drown the SDE-vs-static delta).
//!
//! Run with `cargo bench --bench rtt`. Pass `--json <path>` (after the
//! cargo `--` separator) to also write the results as a machine-readable
//! report.

use std::time::Duration;

use baseline::{StaticCorbaClient, StaticCorbaServer, StaticSoapClient, StaticSoapServer};
use bench::harness::bench;
use bench::json::{bench_results_json, take_json_arg};
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("EchoService");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("payload", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("payload")),
        )
        .expect("echo method");
    class
}

const PAYLOAD: &str = "The quick brown fox jumps over the lazy dog.";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (json_path, _) = take_json_arg(&raw);
    let mut results = Vec::new();

    // SDE SOAP / static Axis-style client.
    {
        let manager = SdeManager::new(SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
            wal_dir: None,
        })
        .expect("manager");
        let server = manager.deploy_soap(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let wsdl = manager.interface_document("EchoService").expect("wsdl");
        let mut client = StaticSoapClient::from_wsdl_xml(&wsdl).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        let r = bench("rtt/sde_soap", || {
            client.call("echo", &arg).expect("call");
        });
        println!("{}", r.render());
        results.push(r);
        manager.shutdown();
    }

    // Static SOAP ("Axis-Tomcat").
    {
        let mut b = StaticSoapServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let server = b.bind("mem://crit-static-soap").expect("bind");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        let r = bench("rtt/static_soap", || {
            client.call("echo", &arg).expect("call");
        });
        println!("{}", r.render());
        results.push(r);
        server.shutdown();
    }

    // SDE CORBA / static OpenORB-style client.
    {
        let manager = SdeManager::new(SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
            wal_dir: None,
        })
        .expect("manager");
        let server = manager.deploy_corba(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let idl = corba::IdlModule::from_signatures(
            "EchoService",
            &server.class().distributed_signatures(),
            server.class().interface_version(),
        );
        let mut client = StaticCorbaClient::connect(idl, &server.ior()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        let r = bench("rtt/sde_corba", || {
            client.call("echo", &arg).expect("call");
        });
        println!("{}", r.render());
        results.push(r);
        manager.shutdown();
    }

    // Static CORBA ("OpenORB").
    {
        let mut b = StaticCorbaServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let server = b.bind("mem://crit-static-corba").expect("bind");
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).expect("client");
        let arg = [Value::Str(PAYLOAD.into())];
        let r = bench("rtt/static_corba", || {
            client.call("echo", &arg).expect("call");
        });
        println!("{}", r.render());
        results.push(r);
        server.shutdown();
    }

    if let Some(path) = json_path {
        std::fs::write(&path, bench_results_json("rtt", &results)).expect("write json report");
        eprintln!("wrote {path}");
    }
}
