//! Connection-scaling soak: idle keep-alive connections vs. memory,
//! threads, and fresh-request latency.
//!
//! Thread-per-connection servers pay one OS thread (and its stack) per
//! open socket; the reactor engine pays one slab entry. This bench
//! opens `conns` keep-alive connections against a reactor `tcp://`
//! server in steps, and at each step records RSS, the OS thread count,
//! the `http_queue_depth` gauge (which must stay at zero — parked
//! connections are not queued work), and the RTT a *fresh* client sees
//! while all those connections sit parked.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use httpd::{HttpServer, Request, Response};

use crate::procinfo::{self, PeakSampler, PeakStats};

/// Parameters for a connection-soak run.
#[derive(Debug, Clone, Copy)]
pub struct ConnSoakConfig {
    /// Total idle keep-alive connections to open.
    pub conns: usize,
    /// Measurement granularity: one row per `step` connections.
    pub step: usize,
    /// Calls per fresh-latency probe (median is reported).
    pub probe_calls: usize,
}

impl Default for ConnSoakConfig {
    fn default() -> Self {
        ConnSoakConfig {
            conns: 2000,
            step: 500,
            probe_calls: 20,
        }
    }
}

/// One measurement row: the state of the process with `conns` parked.
#[derive(Debug, Clone, Copy)]
pub struct ConnSoakRow {
    pub conns: usize,
    pub rss_bytes: u64,
    pub threads: u64,
    /// `http_queue_depth{server}` while everything is parked.
    pub queue_depth: i64,
    /// Median RTT of a fresh connection's requests, microseconds.
    pub fresh_rtt_us: f64,
}

/// A full connection-soak report.
#[derive(Debug)]
pub struct ConnSoak {
    pub rows: Vec<ConnSoakRow>,
    /// Peaks over the whole run (sampler thread included).
    pub peaks: PeakStats,
    /// Marginal RSS per connection between the first and last row.
    pub rss_per_conn_bytes: f64,
}

/// Opens `cfg.conns` keep-alive connections against a fresh reactor
/// server and measures at each step. Connections send one request each
/// (entering the served→parked keep-alive cycle) and are then left idle.
pub fn run_connsoak(cfg: &ConnSoakConfig) -> ConnSoak {
    let server = HttpServer::bind("tcp://127.0.0.1:0", |_req: &Request| {
        Response::ok(b"ok".to_vec(), "text/plain")
    })
    .expect("bind connsoak server");
    let base = server.base_url();
    let hostport = base
        .strip_prefix("tcp://")
        .unwrap_or(&base)
        .trim_end_matches('/')
        .to_string();
    let depth_gauge = obs::registry().gauge_with("http_queue_depth", &[("server", &base)]);

    let sampler = PeakSampler::start();
    let mut parked: Vec<TcpStream> = Vec::with_capacity(cfg.conns);
    let mut rows = Vec::new();
    let step = cfg.step.max(1);
    while parked.len() < cfg.conns {
        let target = (parked.len() + step).min(cfg.conns);
        while parked.len() < target {
            // Small batches keep well inside the listener backlog.
            let batch = (target - parked.len()).min(128);
            for _ in 0..batch {
                let mut s = TcpStream::connect(&hostport).expect("connect parked conn");
                s.set_nodelay(true).ok();
                roundtrip(&mut s, "/park").expect("park request");
                parked.push(s);
            }
        }
        rows.push(measure_row(
            parked.len(),
            &hostport,
            cfg.probe_calls,
            depth_gauge.get(),
        ));
    }
    let peaks = sampler.stop();
    let rss_per_conn_bytes = match (rows.first(), rows.last()) {
        (Some(a), Some(b)) if b.conns > a.conns => {
            (b.rss_bytes as f64 - a.rss_bytes as f64) / (b.conns - a.conns) as f64
        }
        _ => 0.0,
    };
    drop(parked);
    server.shutdown();
    ConnSoak {
        rows,
        peaks,
        rss_per_conn_bytes,
    }
}

fn measure_row(conns: usize, hostport: &str, probe_calls: usize, queue_depth: i64) -> ConnSoakRow {
    let mut probe = TcpStream::connect(hostport).expect("connect probe");
    probe.set_nodelay(true).ok();
    let mut rtts: Vec<u64> = (0..probe_calls.max(1))
        .map(|_| {
            let start = Instant::now();
            roundtrip(&mut probe, "/fresh").expect("probe request");
            start.elapsed().as_nanos() as u64
        })
        .collect();
    rtts.sort_unstable();
    let fresh_rtt_us = rtts[rtts.len() / 2] as f64 / 1000.0;
    ConnSoakRow {
        conns,
        rss_bytes: procinfo::rss_bytes(),
        threads: procinfo::threads_now(),
        queue_depth,
        fresh_rtt_us,
    }
}

/// One keep-alive HTTP/1.1 request/response on `s`. Reads exactly one
/// framed response (headers + `Content-Length` body) so the connection
/// stays reusable.
fn roundtrip(s: &mut TcpStream, path: &str) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n")?;
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(p) = find_crlf_crlf(&buf) {
            break p;
        }
        let n = s.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]);
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let total = header_end + 4 + content_length;
    while buf.len() < total {
        let n = s.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    Ok(())
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders the soak as an aligned text table plus the summary lines.
pub fn render(soak: &ConnSoak) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}  {:>12}  {:>8}  {:>12}  {:>14}\n",
        "conns", "rss_bytes", "threads", "queue_depth", "fresh_rtt_us"
    ));
    for r in &soak.rows {
        out.push_str(&format!(
            "{:>8}  {:>12}  {:>8}  {:>12}  {:>14.1}\n",
            r.conns, r.rss_bytes, r.threads, r.queue_depth, r.fresh_rtt_us
        ));
    }
    out.push_str(&format!(
        "threads_peak={} concurrent_conns={} rss_per_conn={:.0}B\n",
        soak.peaks.threads_peak, soak.peaks.concurrent_conns, soak.rss_per_conn_bytes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_holds_connections_without_thread_growth() {
        let soak = run_connsoak(&ConnSoakConfig {
            conns: 60,
            step: 30,
            probe_calls: 3,
        });
        assert_eq!(soak.rows.len(), 2);
        assert_eq!(soak.rows.last().unwrap().conns, 60);
        // Parked connections are not queued work...
        assert!(soak.rows.iter().all(|r| r.queue_depth == 0));
        // ...and do not spawn threads: thread count is identical with 30
        // and with 60 connections parked.
        assert_eq!(soak.rows[0].threads, soak.rows[1].threads);
        assert!(soak.peaks.concurrent_conns >= 60);
    }
}
