//! Minimal JSON emission for benchmark results (`--json <path>`).
//!
//! Hand-rolled on purpose: the workspace is dependency-free (no serde),
//! and the output is a flat, append-only report — escaping strings and
//! formatting numbers is all that's needed. Consumers are CI trend
//! scripts and the EXPERIMENTS.md before/after tables.

use std::fmt::Write as _;

use crate::connsoak::ConnSoak;
use crate::harness::BenchResult;
use crate::procinfo::PeakStats;
use crate::rtt::{ObsOverhead, StageBreakdown, Table1, TraceOverhead};

/// Escapes `s` for use inside a JSON string literal. Histogram keys
/// contain quotes (`sde_dispatch_ns{class="EchoService"}`), so this is
/// load-bearing, not defensive.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite; NaN/inf become `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders a Table 1 run (plus optional per-stage breakdown and
/// instrumentation-overhead check) as a JSON document.
pub fn table1_json(
    table: &Table1,
    transport: &str,
    stages: Option<&StageBreakdown>,
    obs_overhead: Option<&ObsOverhead>,
    trace_overhead: Option<&TraceOverhead>,
    runtime: Option<&PeakStats>,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"table1\",\n");
    let _ = writeln!(out, "  \"transport\": \"{}\",", escape(transport));
    out.push_str("  \"rows\": [\n");
    for (i, r) in table.rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"configuration\": \"{}\", \"calls\": {}, \"mean_us\": {}, \
             \"median_us\": {}, \"p95_us\": {}, \"allocs_per_call\": {}}}{}",
            escape(&r.configuration),
            r.calls,
            num(r.mean_rtt_us),
            num(r.median_rtt_us),
            num(r.p95_rtt_us),
            r.allocs_per_call.map_or_else(|| "null".to_string(), num),
            if i + 1 < table.rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = write!(
        out,
        "  \"soap_overhead_ratio\": {},\n  \"corba_overhead_ratio\": {}",
        num(table.soap_overhead_ratio),
        num(table.corba_overhead_ratio)
    );
    if let Some(b) = stages {
        out.push_str(",\n  \"stages\": [\n");
        for (i, r) in b.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"stage\": \"{}\", \"count\": {}, \"mean_us\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}",
                escape(&r.stage),
                r.count,
                num(r.mean_us),
                num(r.p50_us),
                num(r.p95_us),
                num(r.p99_us),
                if i + 1 < b.rows.len() { "," } else { "" }
            );
        }
        out.push_str("  ]");
    }
    if let Some(o) = obs_overhead {
        let _ = write!(
            out,
            ",\n  \"obs_overhead\": {{\"rtt_off_us\": {}, \"rtt_on_us\": {}, \"ratio\": {}}}",
            num(o.rtt_off_us),
            num(o.rtt_on_us),
            num(o.ratio)
        );
    }
    if let Some(t) = trace_overhead {
        let _ = write!(
            out,
            ",\n  \"trace_overhead\": {{\"rtt_off_us\": {}, \"rtt_on_us\": {}, \
             \"ratio\": {}, \"trace_overhead_ns\": {}, \"span_store_bytes\": {}}}",
            num(t.rtt_off_us),
            num(t.rtt_on_us),
            num(t.ratio),
            num((t.rtt_on_us - t.rtt_off_us) * 1000.0),
            t.span_store_bytes
        );
    }
    if let Some(r) = runtime {
        let _ = write!(
            out,
            ",\n  \"runtime\": {{\"threads_peak\": {}, \"concurrent_conns\": {}}}",
            r.threads_peak, r.concurrent_conns
        );
    }
    out.push_str("\n}\n");
    out
}

/// Renders a connection-soak run (`connsoak` bin) as a JSON document.
pub fn connsoak_json(soak: &ConnSoak) -> String {
    let mut out = String::from("{\n  \"bench\": \"connsoak\",\n  \"rows\": [\n");
    for (i, r) in soak.rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"conns\": {}, \"rss_bytes\": {}, \"threads\": {}, \
             \"queue_depth\": {}, \"fresh_rtt_us\": {}}}{}",
            r.conns,
            r.rss_bytes,
            r.threads,
            r.queue_depth,
            num(r.fresh_rtt_us),
            if i + 1 < soak.rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = write!(
        out,
        "  \"threads_peak\": {},\n  \"concurrent_conns\": {},\n  \"rss_per_conn_bytes\": {}\n}}\n",
        soak.peaks.threads_peak,
        soak.peaks.concurrent_conns,
        num(soak.rss_per_conn_bytes)
    );
    out
}

/// Renders micro-benchmark results (`benches/*.rs`) as a JSON document.
pub fn bench_results_json(bench: &str, results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"bench\": \"{}\",\n  \"results\": [\n",
        escape(bench)
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"iters\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}{}",
            escape(&r.name),
            r.iters,
            num(r.mean_ns),
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses `--json <path>` out of an argument list, returning the path
/// and the remaining arguments (so positional parsing stays simple).
pub fn take_json_arg(args: &[String]) -> (Option<String>, Vec<String>) {
    let mut path = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            if let Some(p) = args.get(i + 1) {
                path = Some(p.clone());
                i += 2;
                continue;
            }
        }
        rest.push(args[i].clone());
        i += 1;
    }
    (path, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(
            escape("sde_dispatch_ns{class=\"EchoService\"}"),
            "sde_dispatch_ns{class=\\\"EchoService\\\"}"
        );
        assert_eq!(escape("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn take_json_arg_extracts_path() {
        let args: Vec<String> = ["30", "--json", "/tmp/x.json", "mem"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (path, rest) = take_json_arg(&args);
        assert_eq!(path.as_deref(), Some("/tmp/x.json"));
        assert_eq!(rest, vec!["30".to_string(), "mem".to_string()]);
        let (none, same) = take_json_arg(&rest);
        assert!(none.is_none());
        assert_eq!(same, rest);
    }

    #[test]
    fn bench_results_json_shape() {
        let r = BenchResult {
            name: "rtt/x".into(),
            iters: 10,
            mean_ns: 1.5,
            p50_ns: 1,
            p95_ns: 2,
            p99_ns: 3,
        };
        let doc = bench_results_json("rtt", &[r]);
        assert!(doc.contains("\"bench\": \"rtt\""));
        assert!(doc.contains("\"p95_ns\": 2"));
        // Crude but effective structural check for a flat document:
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
