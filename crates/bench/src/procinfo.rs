//! `/proc`-based process introspection for benchmark reports.
//!
//! The reactor's headline claim is *conns without threads*: thousands of
//! idle keep-alive connections on a fixed-size thread set. The numbers
//! that prove it — peak OS thread count and resident set size — come
//! from `/proc/self/status`, sampled here. On non-Linux builds every
//! reader returns 0 and the report fields degrade to `null`/absent.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Current number of OS threads in this process (`Threads:` in
/// `/proc/self/status`), or 0 where that file does not exist.
pub fn threads_now() -> u64 {
    status_field("Threads:").unwrap_or(0)
}

/// Current resident set size in bytes (`VmRSS:` in `/proc/self/status`,
/// reported there in kB), or 0 where unavailable.
pub fn rss_bytes() -> u64 {
    status_field("VmRSS:").map(|kb| kb * 1024).unwrap_or(0)
}

fn status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line[field.len()..].split_whitespace().next()?.parse().ok()
}

/// Peaks observed by a [`PeakSampler`] run.
#[derive(Debug, Clone, Copy)]
pub struct PeakStats {
    /// Highest OS thread count sampled (includes the sampler thread).
    pub threads_peak: u64,
    /// Highest `reactor_fds_registered` gauge value sampled — the peak
    /// number of connections the reactor shards held concurrently.
    pub concurrent_conns: i64,
}

/// Background sampler recording peak thread count and peak reactor
/// connection registrations while a benchmark runs.
pub struct PeakSampler {
    stop: Arc<AtomicBool>,
    threads_peak: Arc<AtomicU64>,
    conns_peak: Arc<AtomicI64>,
    handle: Option<JoinHandle<()>>,
}

impl PeakSampler {
    /// Starts sampling every few milliseconds on a dedicated thread
    /// (which itself counts toward the thread peak — by one, fixed).
    pub fn start() -> PeakSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let threads_peak = Arc::new(AtomicU64::new(0));
        let conns_peak = Arc::new(AtomicI64::new(0));
        let gauge = obs::registry().gauge("reactor_fds_registered");
        let (s, t, c) = (stop.clone(), threads_peak.clone(), conns_peak.clone());
        let handle = std::thread::Builder::new()
            .name("bench-peak-sampler".into())
            .spawn(move || {
                while !s.load(Ordering::Relaxed) {
                    t.fetch_max(threads_now(), Ordering::Relaxed);
                    c.fetch_max(gauge.get(), Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn peak sampler");
        PeakSampler {
            stop,
            threads_peak,
            conns_peak,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the observed peaks.
    pub fn stop(mut self) -> PeakStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // One final sample so short runs still see their own state.
        self.threads_peak
            .fetch_max(threads_now(), Ordering::Relaxed);
        PeakStats {
            threads_peak: self.threads_peak.load(Ordering::Relaxed),
            concurrent_conns: self.conns_peak.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PeakSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_own_thread_count_and_rss() {
        // Every Rust test process has at least one thread and some RSS.
        assert!(threads_now() >= 1);
        assert!(rss_bytes() > 0);
    }

    #[test]
    fn sampler_sees_extra_threads() {
        let sampler = PeakSampler::start();
        let barrier = Arc::new(std::sync::Barrier::new(5));
        let holders: Vec<_> = (0..4)
            .map(|_| {
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                })
            })
            .collect();
        // Give the sampler a few ticks while the 4 threads are alive.
        std::thread::sleep(Duration::from_millis(30));
        barrier.wait();
        for h in holders {
            h.join().unwrap();
        }
        let stats = sampler.stop();
        assert!(stats.threads_peak >= 5, "peak {}", stats.threads_peak);
    }
}
