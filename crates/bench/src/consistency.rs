//! Figures 7 and 8: the consistency matrices for active vs. reactive
//! publishing.
//!
//! Setup (both figures): a server method is live-renamed, so the client's
//! next call raises "Non existent Method". The question is whether, when
//! the developer inspects the error, the client's view of the server
//! interface shows the change.
//!
//! **Fig 7 (active publishing)** — the interface-update path and the RMI
//! call path are completely independent. Publication can fall at three
//! points of the server timeline (1: before the call is processed,
//! 2: while the call is processed / before the client acts on the
//! exception, 3: after the error is displayed) and the client stub update
//! at three points of the client timeline (i: while the call is in
//! flight, ii: after the exception is received but before display,
//! iii: after display). Following the figure, slots interleave
//! pessimistically in the order `1 < i < 2 < ii < display < 3 < iii`.
//! Only (1,i), (1,ii) and (2,ii) leave the error visible.
//!
//! **Fig 8 (reactive publishing)** — the §5.7 server-side forced
//! publication plus the §6 client-side refresh-on-exception add
//! synchronization points to both paths, and every combination of the
//! optional extra publish/update slots (1-4 × i-iv) meets the recency
//! guarantee.

use std::sync::Arc;
use std::time::Duration;

use cde::{CallError, ClientEnvironment};
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use sde::{
    PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, Technology, TransportKind,
};
/// One cell of a consistency matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Server-side publication slot label ("1".."4").
    pub publish_slot: String,
    /// Client-side update slot label ("i".."iv").
    pub update_slot: String,
    /// Whether the interface change was visible at display time.
    pub consistent: bool,
    /// Client view version at display vs. the version the server used.
    pub client_version: u64,
    /// The interface version the server processed the call under.
    pub server_version: u64,
}

/// Results for one regime (one figure).
#[derive(Debug, Clone)]
pub struct Matrix {
    /// "active" (Fig 7) or "reactive" (Fig 8).
    pub regime: String,
    /// Which technology carried the calls ("SOAP" or "CORBA").
    pub technology: String,
    /// All combinations.
    pub cells: Vec<MatrixCell>,
}

impl Matrix {
    /// The consistent (publish, update) pairs, in slot order.
    pub fn consistent_pairs(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .filter(|c| c.consistent)
            .map(|c| (c.publish_slot.clone(), c.update_slot.clone()))
            .collect()
    }
}

/// Builds a fresh SDE SOAP deployment with one distributed method
/// `greet`, a connected CDE stub, and a pending rename to `welcome` that
/// has NOT been published yet. Returns (manager, env, stub, server
/// version after the change).
struct Scenario {
    manager: SdeManager,
    env: ClientEnvironment,
    stub: Arc<cde::DynamicStub>,
    changed_version: u64,
}

fn scenario_with(reactive: bool, technology: Technology) -> Scenario {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        // Enormous stable timeout: nothing publishes unless forced —
        // publication timing is entirely under driver control.
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let class = ClassHandle::new("Consistency");
    class
        .add_method(
            MethodBuilder::new("greet", TypeDesc::Str)
                .param("who", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::lit("hello ") + Expr::param("who")),
        )
        .expect("greet");
    let env = ClientEnvironment::new();
    let stub = match technology {
        Technology::Soap => {
            let server = manager.deploy_soap(class.clone()).expect("deploy");
            server.create_instance().expect("instance");
            server.set_reactive(reactive);
            server.publisher().force_publish();
            server.publisher().ensure_current();
            env.connect_soap(server.wsdl_url()).expect("stub")
        }
        Technology::Corba => {
            let server = manager.deploy_corba(class.clone()).expect("deploy");
            server.create_instance().expect("instance");
            server.set_reactive(reactive);
            server.publisher().force_publish();
            server.publisher().ensure_current();
            env.connect_corba(server.idl_url(), server.ior_url())
                .expect("stub")
        }
    };
    assert!(stub.operation("greet").is_some());

    // The live edit: rename greet -> welcome (not yet published).
    let greet = class.find_method("greet").expect("greet id");
    class.rename_method(greet, "welcome").expect("rename");
    let changed_version = class.interface_version();
    Scenario {
        manager,
        env,
        stub,
        changed_version,
    }
}

fn publish(s: &Scenario) {
    if let Some(server) = s.manager.soap_server("Consistency") {
        server.publisher().force_publish();
        server.publisher().ensure_current();
    }
    if let Some(server) = s.manager.corba_server("Consistency") {
        server.publisher().force_publish();
        server.publisher().ensure_current();
    }
}

/// Runs the Fig 7 matrix: active publishing, pessimistic interleaving
/// `1 < i < 2 < ii < display < 3 < iii`.
pub fn run_active_matrix() -> Matrix {
    run_active_matrix_over(Technology::Soap)
}

/// Runs the Fig 7 matrix over the given technology.
pub fn run_active_matrix_over(technology: Technology) -> Matrix {
    let mut cells = Vec::new();
    for (pi, publish_slot) in ["1", "2", "3"].iter().enumerate() {
        for (ui, update_slot) in ["i", "ii", "iii"].iter().enumerate() {
            let s = scenario_with(false, technology);

            // Slot 1: publish before the call is processed.
            if pi == 0 {
                publish(&s);
            }
            // The RMI call (raises Non existent Method; active mode, so
            // the server does not force publication).
            let err = s
                .stub
                .call_raw("greet", &[Value::Str("dev".into())])
                .expect_err("stale call must fail");
            assert!(matches!(err, CallError::StaleMethod { .. }), "{err:?}");

            // Slot i: the stub updated while the call was in flight —
            // pessimistically ordered before a slot-2 publication.
            if ui == 0 {
                let _ = s.stub.refresh();
            }
            // Slot 2: publish "during processing / before the client acts".
            if pi == 1 {
                publish(&s);
            }
            // Slot ii: update after receiving the exception, before display.
            if ui == 1 {
                let _ = s.stub.refresh();
            }

            // Display: can the developer see the change?
            let client_version = s.stub.interface_version();
            let consistent = s.stub.operation("welcome").is_some()
                && s.stub.operation("greet").is_none()
                && client_version >= s.changed_version;

            // Slots 3 / iii happen after display — too late by definition.
            if pi == 2 {
                publish(&s);
            }
            if ui == 2 {
                let _ = s.stub.refresh();
            }

            cells.push(MatrixCell {
                publish_slot: publish_slot.to_string(),
                update_slot: update_slot.to_string(),
                consistent,
                client_version,
                server_version: s.changed_version,
            });
            s.manager.shutdown();
        }
    }
    Matrix {
        regime: "active".into(),
        technology: technology.to_string(),
        cells,
    }
}

/// Runs the Fig 8 matrix: reactive publishing (§5.7 server side + §6
/// client side), with optional extra publish/update at each of 4 × 4
/// slots. Every combination must satisfy the recency guarantee.
pub fn run_reactive_matrix() -> Matrix {
    run_reactive_matrix_over(Technology::Soap)
}

/// Runs the Fig 8 matrix over the given technology.
pub fn run_reactive_matrix_over(technology: Technology) -> Matrix {
    let mut cells = Vec::new();
    for (pi, publish_slot) in ["1", "2", "3", "4"].iter().enumerate() {
        for (ui, update_slot) in ["i", "ii", "iii", "iv"].iter().enumerate() {
            let s = scenario_with(true, technology);

            // Optional regular publication before the call.
            if pi == 0 {
                publish(&s);
            }
            // Optional regular client update before the call.
            if ui == 0 {
                let _ = s.stub.refresh();
            }

            // The RMI call through the full CDE protocol: the server
            // forces publication before answering (§5.7), the client
            // refreshes before surfacing the error (§6).
            let err = s
                .env
                .call(&s.stub, "greet", &[Value::Str("dev".into())])
                .expect_err("stale call must fail");
            assert!(matches!(err, CallError::StaleMethod { .. }), "{err:?}");

            // Optional extra publish/update between receipt and display.
            if pi == 1 {
                publish(&s);
            }
            if ui == 1 {
                let _ = s.stub.refresh();
            }

            // Display.
            let client_version = s.stub.interface_version();
            let consistent = s.stub.operation("welcome").is_some()
                && s.stub.operation("greet").is_none()
                && client_version >= s.changed_version;

            // Late slots (after display) exist in the figure; they cannot
            // break the already-satisfied guarantee.
            if pi == 2 {
                publish(&s);
            }
            if ui == 2 {
                let _ = s.stub.refresh();
            }

            cells.push(MatrixCell {
                publish_slot: publish_slot.to_string(),
                update_slot: update_slot.to_string(),
                consistent,
                client_version,
                server_version: s.changed_version,
            });
            s.manager.shutdown();
        }
    }
    Matrix {
        regime: "reactive".into(),
        technology: technology.to_string(),
        cells,
    }
}

/// Renders a matrix in the figures' grid form.
pub fn render(matrix: &Matrix) -> String {
    let publish_slots: Vec<String> = {
        let mut v: Vec<String> = matrix
            .cells
            .iter()
            .map(|c| c.publish_slot.clone())
            .collect();
        v.dedup();
        v
    };
    let update_slots: Vec<String> = {
        let mut v: Vec<String> = matrix.cells.iter().map(|c| c.update_slot.clone()).collect();
        v.sort();
        v.dedup();
        // Roman-numeral order, not lexicographic.
        let order = ["i", "ii", "iii", "iv"];
        let mut sorted: Vec<String> = Vec::new();
        for o in order {
            if v.iter().any(|u| u == o) {
                sorted.push(o.to_string());
            }
        }
        sorted
    };
    let mut headers: Vec<&str> = vec!["publish\\update"];
    let header_cells: Vec<String> = update_slots.clone();
    let header_refs: Vec<&str> = header_cells.iter().map(|s| s.as_str()).collect();
    headers.extend(header_refs);

    let mut rows = Vec::new();
    for p in &publish_slots {
        let mut row = vec![p.clone()];
        for u in &update_slots {
            let cell = matrix
                .cells
                .iter()
                .find(|c| &c.publish_slot == p && &c.update_slot == u)
                .expect("complete matrix");
            row.push(if cell.consistent {
                "OK".into()
            } else {
                "RACE".into()
            });
        }
        rows.push(row);
    }
    let title = match matrix.regime.as_str() {
        "active" => "Figure 7: active publishing (independent paths)",
        _ => "Figure 8: reactive publishing (SDE+CDE joint algorithm)",
    };
    format!(
        "{title} — over {}\n{}",
        matrix.technology,
        crate::render_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_matrix_matches_figure_7() {
        let m = run_active_matrix();
        assert_eq!(m.cells.len(), 9);
        let ok = m.consistent_pairs();
        assert_eq!(
            ok,
            vec![
                ("1".to_string(), "i".to_string()),
                ("1".to_string(), "ii".to_string()),
                ("2".to_string(), "ii".to_string()),
            ],
            "exactly the paper's consistent combinations"
        );
    }

    #[test]
    fn active_matrix_over_corba_matches_figure_7() {
        let m = run_active_matrix_over(Technology::Corba);
        assert_eq!(
            m.consistent_pairs(),
            vec![
                ("1".to_string(), "i".to_string()),
                ("1".to_string(), "ii".to_string()),
                ("2".to_string(), "ii".to_string()),
            ]
        );
    }

    #[test]
    fn reactive_matrix_over_corba_meets_guarantee() {
        let m = run_reactive_matrix_over(Technology::Corba);
        assert_eq!(m.cells.len(), 16);
        assert!(m.cells.iter().all(|c| c.consistent));
    }

    #[test]
    fn reactive_matrix_matches_figure_8() {
        let m = run_reactive_matrix();
        assert_eq!(m.cells.len(), 16);
        assert!(
            m.cells.iter().all(|c| c.consistent),
            "all combinations meet the recency guarantee: {:?}",
            m.cells.iter().filter(|c| !c.consistent).collect::<Vec<_>>()
        );
        // Recency: client version >= server processing version everywhere.
        assert!(m.cells.iter().all(|c| c.client_version >= c.server_version));
    }
}
