//! Table 1: round-trip times of RMI calls for the four server/client
//! configurations, and the §7 overhead claim derived from them.
//!
//! The paper measured the average RTT of 100 calls between two machines
//! on a T1 LAN (an SDE SOAP server in JPie vs. an Axis server in Tomcat,
//! and an SDE CORBA server vs. a static OpenORB server, each driven by a
//! static client with a persistent connection). Absolute 2004 numbers are
//! not reproducible; the *shape* — SDE adds overhead, and that overhead
//! stays within ~25 % of the static server — is what this harness
//! regenerates, by default over TCP loopback.

use std::sync::Arc;
use std::time::{Duration, Instant};

use baseline::{StaticCorbaClient, StaticCorbaServer, StaticSoapClient, StaticSoapServer};
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};
/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct RttRow {
    /// Configuration label, matching the paper's "Server/Client" column.
    pub configuration: String,
    /// Mean round-trip time.
    pub mean_rtt_us: f64,
    /// Median round-trip time.
    pub median_rtt_us: f64,
    /// 95th-percentile round-trip time.
    pub p95_rtt_us: f64,
    /// Number of measured calls.
    pub calls: usize,
    /// Mean heap allocations per measured call, when the binary installs
    /// [`crate::alloc::CountingAllocator`] (`None` under `cargo test`,
    /// which uses the default allocator).
    pub allocs_per_call: Option<f64>,
}

/// The full Table 1 reproduction plus derived overhead ratios.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The four measured rows.
    pub rows: Vec<RttRow>,
    /// SDE-SOAP RTT / static-SOAP RTT (paper: 0.58/0.53 ≈ 1.09).
    pub soap_overhead_ratio: f64,
    /// SDE-CORBA RTT / static-CORBA RTT (paper: 0.51/0.42 ≈ 1.21).
    pub corba_overhead_ratio: f64,
}

/// Parameters for the Table 1 run.
#[derive(Debug, Clone, Copy)]
pub struct RttConfig {
    /// Calls measured per configuration (paper: 100).
    pub calls: usize,
    /// Warm-up calls excluded from the measurement.
    pub warmup: usize,
    /// Transport for all endpoints.
    pub transport: TransportKind,
}

impl Default for RttConfig {
    fn default() -> Self {
        RttConfig {
            calls: 100,
            warmup: 20,
            transport: TransportKind::Tcp,
        }
    }
}

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("EchoService");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("payload", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("payload")),
        )
        .expect("echo method");
    class
}

const PAYLOAD: &str = "The quick brown fox jumps over the lazy dog, repeatedly and remotely.";

fn stats(mut samples: Vec<f64>) -> (f64, f64, f64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = samples[samples.len() / 2];
    let p95 = samples[((samples.len() - 1) as f64 * 0.95).round() as usize];
    (mean, median, p95)
}

/// Statistics for one measured window: latency plus (when the counting
/// allocator is installed) mean heap allocations per call.
struct Measured {
    mean_us: f64,
    median_us: f64,
    p95_us: f64,
    allocs_per_call: Option<f64>,
}

fn measure(calls: usize, warmup: usize, mut call: impl FnMut()) -> Measured {
    for _ in 0..warmup {
        call();
    }
    let mut samples = Vec::with_capacity(calls);
    let allocs_before = crate::alloc::allocations();
    for _ in 0..calls {
        let t0 = Instant::now();
        call();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    // The alloc delta includes the `samples.push` bookkeeping above, but
    // the Vec was pre-sized so steady-state pushes do not allocate.
    let allocs_per_call = if crate::alloc::active() {
        Some((crate::alloc::allocations() - allocs_before) as f64 / calls as f64)
    } else {
        None
    };
    let (mean_us, median_us, p95_us) = stats(samples);
    Measured {
        mean_us,
        median_us,
        p95_us,
        allocs_per_call,
    }
}

/// Measures the SDE SOAP server driven by a static (Axis-style) client.
pub fn measure_sde_soap(cfg: &RttConfig) -> RttRow {
    let manager = SdeManager::new(SdeConfig {
        transport: cfg.transport,
        // Quiescent publisher: development-time machinery present (stall
        // lock, dynamic dispatch) but no edits during the measurement.
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");

    // Static Axis-style client compiled from the published WSDL.
    let wsdl_xml = manager
        .interface_document("EchoService")
        .expect("published wsdl");
    let mut client = StaticSoapClient::from_wsdl_xml(&wsdl_xml).expect("client");
    let arg = [Value::Str(PAYLOAD.into())];
    let m = measure(cfg.calls, cfg.warmup, || {
        let v = client.call("echo", &arg).expect("call");
        assert!(matches!(v, Value::Str(_)));
    });
    manager.shutdown();
    RttRow {
        configuration: "SDE SOAP/Axis".into(),
        mean_rtt_us: m.mean_us,
        median_rtt_us: m.median_us,
        p95_rtt_us: m.p95_us,
        calls: cfg.calls,
        allocs_per_call: m.allocs_per_call,
    }
}

/// Measures the static SOAP server ("Axis-Tomcat") with the same client.
pub fn measure_static_soap(cfg: &RttConfig) -> RttRow {
    let addr = match cfg.transport {
        TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
        TransportKind::Mem => format!("mem://bench-static-soap-{:p}", &cfg),
    };
    let mut b = StaticSoapServer::builder("EchoService");
    b.operation(
        "echo",
        vec![("payload".into(), TypeDesc::Str)],
        TypeDesc::Str,
        |args| Ok(args[0].clone()),
    );
    let server = b.bind(&addr).expect("bind");
    let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).expect("client");
    let arg = [Value::Str(PAYLOAD.into())];
    let m = measure(cfg.calls, cfg.warmup, || {
        let v = client.call("echo", &arg).expect("call");
        assert!(matches!(v, Value::Str(_)));
    });
    server.shutdown();
    RttRow {
        configuration: "Axis-Tomcat/Axis".into(),
        mean_rtt_us: m.mean_us,
        median_rtt_us: m.median_us,
        p95_rtt_us: m.p95_us,
        calls: cfg.calls,
        allocs_per_call: m.allocs_per_call,
    }
}

/// Measures the SDE CORBA server driven by a static OpenORB-style client.
pub fn measure_sde_corba(cfg: &RttConfig) -> RttRow {
    let manager = SdeManager::new(SdeConfig {
        transport: cfg.transport,
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let server = manager.deploy_corba(echo_class()).expect("deploy");
    server.create_instance().expect("instance");

    let idl = corba::IdlModule::from_signatures(
        "EchoService",
        &server.class().distributed_signatures(),
        server.class().interface_version(),
    );
    let mut client = StaticCorbaClient::connect(idl, &server.ior()).expect("client");
    let arg = [Value::Str(PAYLOAD.into())];
    let m = measure(cfg.calls, cfg.warmup, || {
        let v = client.call("echo", &arg).expect("call");
        assert!(matches!(v, Value::Str(_)));
    });
    manager.shutdown();
    RttRow {
        configuration: "SDE CORBA/OpenORB".into(),
        mean_rtt_us: m.mean_us,
        median_rtt_us: m.median_us,
        p95_rtt_us: m.p95_us,
        calls: cfg.calls,
        allocs_per_call: m.allocs_per_call,
    }
}

/// Measures the static CORBA server ("OpenORB") with the same client.
pub fn measure_static_corba(cfg: &RttConfig) -> RttRow {
    let addr = match cfg.transport {
        TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
        TransportKind::Mem => format!("mem://bench-static-corba-{:p}", &cfg),
    };
    let mut b = StaticCorbaServer::builder("EchoService");
    b.operation(
        "echo",
        vec![("payload".into(), TypeDesc::Str)],
        TypeDesc::Str,
        |args| Ok(args[0].clone()),
    );
    let server = b.bind(&addr).expect("bind");
    let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).expect("client");
    let arg = [Value::Str(PAYLOAD.into())];
    let m = measure(cfg.calls, cfg.warmup, || {
        let v = client.call("echo", &arg).expect("call");
        assert!(matches!(v, Value::Str(_)));
    });
    server.shutdown();
    RttRow {
        configuration: "OpenORB/OpenORB".into(),
        mean_rtt_us: m.mean_us,
        median_rtt_us: m.median_us,
        p95_rtt_us: m.p95_us,
        calls: cfg.calls,
        allocs_per_call: m.allocs_per_call,
    }
}

/// Runs all four configurations and derives the overhead ratios.
pub fn run_table1(cfg: &RttConfig) -> Table1 {
    let sde_soap = measure_sde_soap(cfg);
    let static_soap = measure_static_soap(cfg);
    let sde_corba = measure_sde_corba(cfg);
    let static_corba = measure_static_corba(cfg);
    let soap_overhead_ratio = sde_soap.mean_rtt_us / static_soap.mean_rtt_us;
    let corba_overhead_ratio = sde_corba.mean_rtt_us / static_corba.mean_rtt_us;
    Table1 {
        rows: vec![sde_soap, static_soap, sde_corba, static_corba],
        soap_overhead_ratio,
        corba_overhead_ratio,
    }
}

/// Renders the table in the paper's layout (plus derived ratios).
pub fn render(table: &Table1) -> String {
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.configuration.clone(),
                format!("{:.1}", r.mean_rtt_us),
                format!("{:.1}", r.median_rtt_us),
                format!("{:.1}", r.p95_rtt_us),
                r.calls.to_string(),
                r.allocs_per_call
                    .map_or_else(|| "-".into(), |a| format!("{a:.1}")),
            ]
        })
        .collect();
    let mut out = String::from("Table 1: RTT times for client-server communication\n");
    out.push_str(&crate::render_table(
        &[
            "Server/Client",
            "mean RTT (us)",
            "median (us)",
            "p95 (us)",
            "calls",
            "allocs/call",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nSOAP  overhead: SDE/static = {:.3} ({:+.1}%)   [paper: 0.58s/0.53s = 1.094]\n",
        table.soap_overhead_ratio,
        (table.soap_overhead_ratio - 1.0) * 100.0
    ));
    out.push_str(&format!(
        "CORBA overhead: SDE/static = {:.3} ({:+.1}%)   [paper: 0.51s/0.42s = 1.214]\n",
        table.corba_overhead_ratio,
        (table.corba_overhead_ratio - 1.0) * 100.0
    ));
    out.push_str(&format!(
        "Section 7 claim (overhead within 25%): SOAP {} / CORBA {}\n",
        if table.soap_overhead_ratio <= 1.25 {
            "HOLDS"
        } else {
            "EXCEEDED"
        },
        if table.corba_overhead_ratio <= 1.25 {
            "HOLDS"
        } else {
            "EXCEEDED"
        },
    ));
    out
}

/// One point of the payload-size sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Mean RTT per configuration, in the Table 1 row order.
    pub mean_rtt_us: Vec<f64>,
}

/// Measures RTT as a function of payload size for all four
/// configurations — the supporting experiment for Table 1's SOAP-vs-CORBA
/// ordering: XML encoding cost grows much faster with payload size than
/// binary CDR, so the gap widens with the payload.
pub fn run_payload_sweep(cfg: &RttConfig, sizes: &[usize]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &size in sizes {
        let payload = "x".repeat(size);

        // SDE SOAP.
        let manager = SdeManager::new(SdeConfig {
            transport: cfg.transport,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
            wal_dir: None,
        })
        .expect("manager");
        let server = manager.deploy_soap(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let wsdl = manager.interface_document("EchoService").expect("wsdl");
        let mut soap_sde_client = StaticSoapClient::from_wsdl_xml(&wsdl).expect("client");
        let arg = [Value::Str(payload.clone())];
        let sde_soap = measure(cfg.calls, cfg.warmup, || {
            soap_sde_client.call("echo", &arg).expect("call");
        })
        .mean_us;
        manager.shutdown();

        // Static SOAP.
        let mut b = StaticSoapServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let addr = match cfg.transport {
            TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
            TransportKind::Mem => format!("mem://sweep-soap-{size}"),
        };
        let static_soap_server = b.bind(&addr).expect("bind");
        let mut static_soap_client =
            StaticSoapClient::from_wsdl_xml(&static_soap_server.wsdl_xml()).expect("client");
        let static_soap = measure(cfg.calls, cfg.warmup, || {
            static_soap_client.call("echo", &arg).expect("call");
        })
        .mean_us;
        static_soap_server.shutdown();

        // SDE CORBA.
        let manager = SdeManager::new(SdeConfig {
            transport: cfg.transport,
            strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
            wal_dir: None,
        })
        .expect("manager");
        let server = manager.deploy_corba(echo_class()).expect("deploy");
        server.create_instance().expect("instance");
        let idl = corba::IdlModule::from_signatures(
            "EchoService",
            &server.class().distributed_signatures(),
            server.class().interface_version(),
        );
        let mut corba_sde_client = StaticCorbaClient::connect(idl, &server.ior()).expect("client");
        let sde_corba = measure(cfg.calls, cfg.warmup, || {
            corba_sde_client.call("echo", &arg).expect("call");
        })
        .mean_us;
        manager.shutdown();

        // Static CORBA.
        let mut b = StaticCorbaServer::builder("EchoService");
        b.operation(
            "echo",
            vec![("payload".into(), TypeDesc::Str)],
            TypeDesc::Str,
            |args| Ok(args[0].clone()),
        );
        let addr = match cfg.transport {
            TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
            TransportKind::Mem => format!("mem://sweep-corba-{size}"),
        };
        let static_corba_server = b.bind(&addr).expect("bind");
        let mut static_corba_client =
            StaticCorbaClient::connect(static_corba_server.idl(), &static_corba_server.ior())
                .expect("client");
        let static_corba = measure(cfg.calls, cfg.warmup, || {
            static_corba_client.call("echo", &arg).expect("call");
        })
        .mean_us;
        static_corba_server.shutdown();

        points.push(SweepPoint {
            payload_bytes: size,
            mean_rtt_us: vec![sde_soap, static_soap, sde_corba, static_corba],
        });
    }
    points
}

/// Renders the payload sweep.
pub fn render_sweep(points: &[SweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![p.payload_bytes.to_string()];
            row.extend(p.mean_rtt_us.iter().map(|v| format!("{v:.1}")));
            row
        })
        .collect();
    let mut out = String::from("RTT vs payload size (mean us per call)\n");
    out.push_str(&crate::render_table(
        &[
            "payload(B)",
            "SDE SOAP",
            "static SOAP",
            "SDE CORBA",
            "static CORBA",
        ],
        &rows,
    ));
    out
}

/// One stage of the per-stage latency breakdown.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// The obs histogram key (e.g. `sde_dispatch_ns{class="EchoService"}`).
    pub stage: String,
    /// Samples recorded during the measured window.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// 50th / 95th / 99th percentile latencies in microseconds.
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

/// Per-stage latency breakdown of the SDE call path, derived from the
/// obs registry: every latency histogram that advanced during the
/// measured workload contributes one row (`http_request_ns`,
/// `sde_dispatch_ns{class}`, `jpie_invoke_ns`, ...), decomposing the
/// end-to-end Table 1 RTT into transport, gateway, and interpreter time.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    /// Stages in registry (alphabetical) order.
    pub rows: Vec<StageRow>,
}

fn breakdown_between(before: &obs::Snapshot, after: &obs::Snapshot) -> StageBreakdown {
    let delta = after.delta(before);
    let rows = delta
        .histograms
        .iter()
        .filter(|(key, h)| h.count > 0 && key.contains("_ns"))
        .map(|(key, h)| StageRow {
            stage: key.clone(),
            count: h.count,
            mean_us: h.mean() / 1e3,
            p50_us: h.percentile(0.50) as f64 / 1e3,
            p95_us: h.percentile(0.95) as f64 / 1e3,
            p99_us: h.percentile(0.99) as f64 / 1e3,
        })
        .collect();
    StageBreakdown { rows }
}

/// Runs the SDE SOAP configuration and returns its Table 1 row together
/// with the obs-derived per-stage latency breakdown for the same window.
pub fn measure_sde_soap_with_breakdown(cfg: &RttConfig) -> (RttRow, StageBreakdown) {
    let before = obs::registry().snapshot();
    let row = measure_sde_soap(cfg);
    let after = obs::registry().snapshot();
    (row, breakdown_between(&before, &after))
}

/// Renders the per-stage breakdown next to Table 1.
pub fn render_breakdown(b: &StageBreakdown) -> String {
    if b.rows.is_empty() {
        return "Per-stage breakdown: no obs histograms advanced \
                (recording disabled?)\n"
            .into();
    }
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                r.stage.clone(),
                r.count.to_string(),
                format!("{:.1}", r.mean_us),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p95_us),
                format!("{:.1}", r.p99_us),
            ]
        })
        .collect();
    let mut out = String::from("Per-stage latency breakdown (SDE SOAP window, obs registry)\n");
    out.push_str(&crate::render_table(
        &["stage", "count", "mean us", "p50 us", "p95 us", "p99 us"],
        &rows,
    ));
    out
}

/// The instrumentation-overhead check: the same SDE SOAP measurement
/// with obs recording off (baseline) and on, and the resulting ratio.
/// The acceptance bar is < 5% regression with recording on.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverhead {
    /// Mean RTT with `obs::set_recording(false)`.
    pub rtt_off_us: f64,
    /// Mean RTT with recording on (the default).
    pub rtt_on_us: f64,
    /// on/off ratio (1.00 = no measurable overhead).
    pub ratio: f64,
}

/// Measures the obs instrumentation overhead on the SDE SOAP path.
/// Leaves recording enabled on return.
pub fn measure_obs_overhead(cfg: &RttConfig) -> ObsOverhead {
    obs::set_recording(false);
    let off = measure_sde_soap(cfg);
    obs::set_recording(true);
    let on = measure_sde_soap(cfg);
    ObsOverhead {
        rtt_off_us: off.mean_rtt_us,
        rtt_on_us: on.mean_rtt_us,
        ratio: on.mean_rtt_us / off.mean_rtt_us,
    }
}

/// Renders the overhead comparison.
pub fn render_obs_overhead(o: &ObsOverhead) -> String {
    format!(
        "Instrumentation overhead: {:.1}us (off) -> {:.1}us (on), \
         ratio {:.3} ({:+.1}%)\n",
        o.rtt_off_us,
        o.rtt_on_us,
        o.ratio,
        (o.ratio - 1.0) * 100.0
    )
}

/// The distributed-tracing overhead check: the traced client path (a
/// [`cde::ClientEnvironment`] stub, which opens call/attempt spans and
/// propagates the trace context on the wire) with span recording off
/// (baseline) and on. The acceptance bar is < 3% regression at the
/// default tail-sampling rate.
#[derive(Debug, Clone, Copy)]
pub struct TraceOverhead {
    /// Mean RTT with `obs::tracectx::set_tracing(false)`.
    pub rtt_off_us: f64,
    /// Mean RTT with tracing on (the default).
    pub rtt_on_us: f64,
    /// on/off ratio (1.00 = no measurable overhead).
    pub ratio: f64,
    /// Approximate SpanStore heap footprint after the traced run.
    pub span_store_bytes: usize,
}

/// Measures the tracing overhead on the cde SOAP path. Leaves tracing
/// enabled on return.
///
/// This is deliberately *not* the static-client Table 1 path — the
/// static clients never open spans or emit the trace header, so only
/// the cde dynamic stub can answer "what does tracing cost".
///
/// Loopback RTTs are ~20us with multi-microsecond scheduler jitter and
/// per-server setup variance, so a single off-window vs. on-window mean
/// comparison is noise. One server/stub pair serves alternating off/on
/// windows and each mode reports the minimum of its window medians —
/// the classic noise-robust microbenchmark estimator.
pub fn measure_trace_overhead(cfg: &RttConfig) -> TraceOverhead {
    let manager = SdeManager::new(SdeConfig {
        transport: cfg.transport,
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = cde::ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let arg = [Value::Str(PAYLOAD.into())];
    let window = |tracing: bool| {
        obs::tracectx::set_tracing(tracing);
        measure(cfg.calls, cfg.warmup, || {
            let v = env.call(&stub, "echo", &arg).expect("call");
            assert!(matches!(v, Value::Str(_)));
        })
        .median_us
    };

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..4 {
        best_off = best_off.min(window(false));
        best_on = best_on.min(window(true));
    }
    manager.shutdown();
    TraceOverhead {
        rtt_off_us: best_off,
        rtt_on_us: best_on,
        ratio: best_on / best_off,
        span_store_bytes: obs::tracectx::store().approx_bytes(),
    }
}

/// Renders the tracing-overhead comparison.
pub fn render_trace_overhead(o: &TraceOverhead) -> String {
    format!(
        "Tracing overhead (cde path): {:.1}us (off) -> {:.1}us (on), \
         ratio {:.3} ({:+.1}%), span store ~{} KiB\n",
        o.rtt_off_us,
        o.rtt_on_us,
        o.ratio,
        (o.ratio - 1.0) * 100.0,
        o.span_store_bytes / 1024
    )
}

/// Convenience used by tests: a quick, in-memory run.
pub fn quick_table1() -> Table1 {
    run_table1(&RttConfig {
        calls: 30,
        warmup: 5,
        transport: TransportKind::Mem,
    })
}

/// Arc-shareable payload for concurrent benchmark drivers.
pub type SharedTable = Arc<Table1>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sweep_shape() {
        let cfg = RttConfig {
            calls: 10,
            warmup: 2,
            transport: TransportKind::Mem,
        };
        let points = run_payload_sweep(&cfg, &[16, 1024]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.mean_rtt_us.len(), 4);
            assert!(p.mean_rtt_us.iter().all(|v| *v > 0.0));
        }
        let rendered = render_sweep(&points);
        assert!(rendered.contains("payload(B)"));
    }

    #[test]
    fn stage_breakdown_decomposes_the_call_path() {
        let cfg = RttConfig {
            calls: 10,
            warmup: 2,
            transport: TransportKind::Mem,
        };
        let (row, breakdown) = measure_sde_soap_with_breakdown(&cfg);
        assert!(row.mean_rtt_us > 0.0);
        // The SDE SOAP window must expose at least the gateway-dispatch
        // and interpreter stages of the call path.
        let stages: Vec<&str> = breakdown.rows.iter().map(|r| r.stage.as_str()).collect();
        assert!(
            stages.iter().any(|s| s.starts_with("sde_dispatch_ns")),
            "{stages:?}"
        );
        assert!(
            stages.iter().any(|s| s.starts_with("jpie_invoke_ns")),
            "{stages:?}"
        );
        for r in &breakdown.rows {
            assert!(r.count > 0);
            assert!(r.mean_us > 0.0, "{r:?}");
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us, "{r:?}");
        }
        let rendered = render_breakdown(&breakdown);
        assert!(rendered.contains("p95 us"), "{rendered}");
    }

    #[test]
    fn obs_overhead_is_measurable_and_restores_recording() {
        let cfg = RttConfig {
            calls: 10,
            warmup: 2,
            transport: TransportKind::Mem,
        };
        let o = measure_obs_overhead(&cfg);
        assert!(o.rtt_off_us > 0.0 && o.rtt_on_us > 0.0);
        assert!(o.ratio > 0.0);
        assert!(obs::recording(), "overhead run must re-enable recording");
        assert!(render_obs_overhead(&o).contains("ratio"));
    }

    #[test]
    fn table1_shape() {
        let table = quick_table1();
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert!(row.mean_rtt_us > 0.0, "{row:?}");
            assert!(row.median_rtt_us <= row.p95_rtt_us, "{row:?}");
            assert_eq!(row.calls, 30);
        }
        assert!(table.soap_overhead_ratio > 0.5);
        assert!(table.corba_overhead_ratio > 0.5);
        let rendered = render(&table);
        assert!(rendered.contains("SDE SOAP/Axis"));
        assert!(rendered.contains("OpenORB/OpenORB"));
    }
}
