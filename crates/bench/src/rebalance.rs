//! Rebalance chaos sweep: a planned class migration under injected
//! faults.
//!
//! Deploys the same router fleet as the kill-shard sweep, installs the
//! mixed fault plan against the front, and — instead of killing a
//! shard — *moves* one class to another shard mid-sweep while the
//! client keeps calling. The bar is strictly higher than failover's:
//! `failed_calls == 0` **and** fleet-wide `executions == calls`
//! *exactly* (a planned move carries the live instance and the reply
//! cache, so unlike a crash nothing ever resets), documents stay
//! version-monotonic, and the drain pause — the only client-visible
//! cost — stays bounded. Binary: `chaos_sweep --rebalance`.

use std::time::Duration;

use router::{ClassSpec, HashRing, MoveOpts, Router, RouterConfig};
use sde::TransportKind;

/// Parameters for the rebalance sweep.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Calls per sweep point (across all classes, round-robin).
    pub calls: usize,
    /// Shards in the fleet.
    pub shards: usize,
    /// Transport under test.
    pub transport: TransportKind,
    /// Seed for the fault plan and the router's Retry-After jitter.
    pub seed: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            calls: 90,
            shards: 3,
            transport: TransportKind::Mem,
            seed: 2024,
        }
    }
}

/// One sweep point: N calls at one fault rate with one class migrated
/// mid-sweep.
#[derive(Debug, Clone)]
pub struct RebalancePoint {
    pub fault_rate: f64,
    pub calls: usize,
    pub ok: usize,
    /// `calls - ok`; the gate is zero.
    pub failed_calls: usize,
    /// Retry attempts spent across all calls.
    pub retries: u64,
    /// Calls the front gate parked (503) while the class drained.
    pub parked: u64,
    /// Fleet-wide executions. A planned move carries instance state,
    /// so this must equal `ok` exactly — no crash-style resets.
    pub effects: u64,
    pub exactly_once: bool,
    /// The migrated class's document republished at `version >=
    /// pre-move`.
    pub versions_monotonic: bool,
    /// WAL streaming while the source still served.
    pub catchup_ms: f64,
    /// Drain start → quiescence + exact WAL convergence.
    pub drain_ms: f64,
    /// Export, floor transfer, import, republish, route swap.
    pub handoff_ms: f64,
    pub total_ms: f64,
}

fn counter_source(name: &str) -> String {
    format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    )
}

/// Picks class names until every shard owns at least two, mirroring the
/// router's ring so the sweep knows each class's home up front.
fn pick_classes(shards: usize, vnodes: usize) -> Vec<(String, usize)> {
    let ring = HashRing::new(shards, vnodes);
    let mut per_shard = vec![0usize; shards];
    let mut picked = Vec::new();
    for i in 0.. {
        let name = format!("RbCounter{i}");
        let shard = ring.shard_for(&name);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            picked.push((name, shard));
        }
        if per_shard.iter().all(|&c| c >= 2) {
            break;
        }
    }
    picked
}

fn authority_of(url: &str) -> String {
    match url.find("://").map(|i| i + 3) {
        Some(rest) => match url[rest..].find('/') {
            Some(slash) => url[..rest + slash].to_string(),
            None => url.to_string(),
        },
        None => url.to_string(),
    }
}

/// Runs one rebalance point: fleet up, faults on, move a class
/// mid-sweep, keep calling, account.
pub fn run_rebalance_point(cfg: &RebalanceConfig, fault_rate: f64) -> RebalancePoint {
    static POINT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = POINT_SEQ.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let wal_root =
        std::env::temp_dir().join(format!("live-rmi-rebalance-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);

    let mut rcfg = RouterConfig::new(
        cfg.shards,
        cfg.transport,
        &wal_root,
        format!("rb{}-{seq}", std::process::id()),
    );
    rcfg.seed = cfg.seed;
    let vnodes = rcfg.vnodes;
    let classes = pick_classes(cfg.shards, vnodes);
    let specs: Vec<ClassSpec> = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(rcfg, specs).expect("router start");
    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must converge before the sweep"
    );

    // The hottest-by-construction class: the first one, moved one shard
    // over.
    let (victim, home) = classes[0].clone();
    let target = (home + 1) % cfg.shards;

    let policy = cde::ResiliencePolicy::seeded(cfg.seed)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(10)
        .with_deadline(Duration::from_secs(8))
        .with_breaker(256, Duration::from_millis(500));
    let env = cde::ClientEnvironment::with_policy(policy);
    let stubs: Vec<(String, std::sync::Arc<cde::DynamicStub>)> = classes
        .iter()
        .map(|(name, _)| {
            let stub = env.connect_soap(&router.wsdl_url(name)).expect("stub");
            (name.clone(), stub)
        })
        .collect();
    for (_, stub) in &stubs {
        env.call(stub, "bump", &[]).expect("prime call");
        assert!(stub.server_caches(), "server must advertise reply cache");
    }
    let primed = stubs.len();
    assert!(
        cfg.calls > primed * 3,
        "need enough calls to surround the move point"
    );
    let pre_version = router.doc_version(&victim).expect("doc version");

    let front_authority = authority_of(&router.front_url());
    if fault_rate > 0.0 {
        httpd::FaultPlan::seeded(cfg.seed)
            .rule(httpd::FaultRule::delay(
                &front_authority,
                fault_rate * 0.20,
                Duration::from_millis(1),
                Duration::from_millis(1),
            ))
            .rule(httpd::FaultRule::truncate(
                &front_authority,
                fault_rate * 0.15,
                40,
            ))
            .rule(httpd::FaultRule::corrupt(
                &front_authority,
                fault_rate * 0.15,
                2,
            ))
            .rule(httpd::FaultRule::disconnect(
                &front_authority,
                fault_rate * 0.10,
                10,
            ))
            .rule(httpd::FaultRule::refuse(
                &front_authority,
                fault_rate * 0.15,
            ))
            .rule(httpd::FaultRule::drop_reply(&front_authority, fault_rate * 0.25).on_accept())
            .install();
        for (_, stub) in &stubs {
            stub.drop_pooled_connections();
        }
    }

    let snapshot = obs::registry().snapshot();
    let retries_before = snapshot.counter("rmi_retries_total");
    let parked_before = snapshot.counter("router_drain_parked_total");

    // Start the move at a seeded point in the middle third of the
    // sweep; the workload keeps hammering every class throughout.
    let span = (cfg.calls - primed) / 3;
    let move_at = primed + span + (cfg.seed as usize % span.max(1));
    let mut handle = None;
    let mut ok = primed;
    for i in primed..cfg.calls {
        if i == move_at {
            handle = Some(router.begin_move(&victim, target, MoveOpts::default()));
        }
        let (_, stub) = &stubs[i % stubs.len()];
        if fault_rate > 0.0 && i % 4 == 0 {
            stub.drop_pooled_connections();
        }
        if env.call(stub, "bump", &[]).is_ok() {
            ok += 1;
        }
    }
    let event = handle
        .expect("move started")
        .join()
        .expect("migration must complete");
    httpd::fault::clear();

    let snapshot = obs::registry().snapshot();
    let retries = snapshot.counter("rmi_retries_total") - retries_before;
    let parked = snapshot.counter("router_drain_parked_total") - parked_before;

    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must reconverge after the move"
    );
    assert_eq!(router.shard_of(&victim), target, "class re-homed");

    // Fleet-wide executions: with state carried across the move, every
    // counter holds its full history — no pre-move snapshots needed.
    let mut effects = 0u64;
    for (name, _) in &stubs {
        effects += router.field_value(name, "n").expect("counter value") as u64;
    }
    let versions_monotonic = router.doc_version(&victim).expect("doc version") >= pre_version;

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);

    RebalancePoint {
        fault_rate,
        calls: cfg.calls,
        ok,
        failed_calls: cfg.calls - ok,
        retries,
        parked,
        effects,
        exactly_once: effects == ok as u64,
        versions_monotonic,
        catchup_ms: event.catchup_ms,
        drain_ms: event.drain_ms,
        handoff_ms: event.handoff_ms,
        total_ms: event.total_ms,
    }
}

/// Runs the sweep over `rates`.
pub fn run_rebalance_sweep(cfg: &RebalanceConfig, rates: &[f64]) -> Vec<RebalancePoint> {
    rates.iter().map(|&r| run_rebalance_point(cfg, r)).collect()
}

/// p95 of the drain pauses (max for small sweeps).
pub fn drain_p95_ms(points: &[RebalancePoint]) -> f64 {
    let mut v: Vec<f64> = points
        .iter()
        .map(|p| p.drain_ms)
        .filter(|m| m.is_finite())
        .collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * 0.95).round() as usize]
}

/// Renders the sweep as the EXPERIMENTS.md rebalance table.
pub fn render_rebalance(points: &[RebalancePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fault_rate * 100.0),
                p.calls.to_string(),
                p.failed_calls.to_string(),
                p.effects.to_string(),
                if p.exactly_once {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
                if p.versions_monotonic {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
                p.parked.to_string(),
                format!("{:.1}", p.catchup_ms),
                format!("{:.1}", p.drain_ms),
                format!("{:.1}", p.handoff_ms),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "fault rate",
            "calls",
            "failed",
            "executions",
            "exactly-once",
            "versions >=",
            "parked",
            "catchup ms",
            "drain ms",
            "handoff ms",
        ],
        &rows,
    )
}

/// Renders the sweep as a JSON report (`--json <path>`).
pub fn rebalance_json(points: &[RebalancePoint], cfg: &RebalanceConfig, transport: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"bench\": \"chaos_sweep\",\n  \"mode\": \"rebalance\",\n");
    let _ = writeln!(
        out,
        "  \"transport\": \"{}\",",
        crate::json::escape(transport)
    );
    let _ = writeln!(out, "  \"shards\": {},", cfg.shards);
    let _ = writeln!(out, "  \"drain_p95_ms\": {:.3},", drain_p95_ms(points));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fault_rate\": {:.3}, \"calls\": {}, \"ok\": {}, \"failed_calls\": {}, \
             \"retries\": {}, \"parked\": {}, \"effects\": {}, \"exactly_once\": {}, \
             \"versions_monotonic\": {}, \"catchup_ms\": {:.3}, \"drain_ms\": {:.3}, \
             \"handoff_ms\": {:.3}, \"total_ms\": {:.3}}}{}",
            p.fault_rate,
            p.calls,
            p.ok,
            p.failed_calls,
            p.retries,
            p.parked,
            p.effects,
            p.exactly_once,
            p.versions_monotonic,
            p.catchup_ms,
            p.drain_ms,
            p.handoff_ms,
            p.total_ms,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_table_are_well_formed() {
        let p = RebalancePoint {
            fault_rate: 0.2,
            calls: 90,
            ok: 90,
            failed_calls: 0,
            retries: 12,
            parked: 4,
            effects: 90,
            exactly_once: true,
            versions_monotonic: true,
            catchup_ms: 3.0,
            drain_ms: 12.5,
            handoff_ms: 6.0,
            total_ms: 22.0,
        };
        let cfg = RebalanceConfig::default();
        let table = render_rebalance(std::slice::from_ref(&p));
        assert!(table.contains("exactly-once"));
        assert!(table.contains("drain ms"));
        let json = rebalance_json(std::slice::from_ref(&p), &cfg, "mem");
        assert!(json.contains("\"mode\": \"rebalance\""));
        assert!(json.contains("\"drain_p95_ms\": 12.500"));
        assert!(json.contains("\"failed_calls\": 0"));
    }

    #[test]
    fn rebalance_point_at_zero_faults_is_perfect() {
        let cfg = RebalanceConfig {
            calls: 40,
            ..RebalanceConfig::default()
        };
        let p = run_rebalance_point(&cfg, 0.0);
        assert_eq!(p.failed_calls, 0, "zero failed calls across the move");
        assert!(p.exactly_once, "executions == calls exactly, state carried");
        assert!(p.versions_monotonic);
        assert!(p.drain_ms.is_finite() && p.drain_ms < 2_000.0);
    }
}
