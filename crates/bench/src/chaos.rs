//! Success-rate-vs-fault-rate sweep: the resilience layer under a
//! programmable chaos schedule.
//!
//! For each target fault rate the sweep deploys a quiescent SDE SOAP
//! server, installs a seeded [`httpd::FaultPlan`] mixing refused
//! connects, connect delays, truncated/corrupted responses, and
//! mid-response disconnects against the server's endpoint, and drives N
//! idempotent calls through the resilient client
//! ([`cde::ResiliencePolicy`]: per-call deadline, backoff retries,
//! circuit breaker). Reported per point: success rate, retries spent,
//! faults actually injected, and the RTT distribution of the successful
//! calls. Binary: `chaos_sweep`.

use std::time::{Duration, Instant};

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

/// One point of the sweep: N calls at one injected-fault rate.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Aggregate per-connection fault probability (0.0–1.0).
    pub fault_rate: f64,
    /// Calls attempted.
    pub calls: usize,
    /// Calls that returned the correct value within the deadline.
    pub ok: usize,
    /// Retry attempts spent across all calls.
    pub retries: u64,
    /// Faults the chaos layer actually injected.
    pub faults_injected: u64,
    /// Mean RTT of successful calls (includes retry/backoff time).
    pub mean_rtt_us: f64,
    /// 95th-percentile RTT of successful calls.
    pub p95_rtt_us: f64,
    /// Server-side executions of the non-idempotent method (final counter
    /// value). Exactly-once holds when `ok <= effects <= calls`: every
    /// acknowledged call executed once, every abandoned call at most
    /// once. Zero in idempotent mode.
    pub effects: u64,
    /// Redeliveries the server's reply cache answered without
    /// re-executing. Zero in idempotent mode.
    pub duplicates_suppressed: u64,
}

/// Parameters for the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Calls per sweep point.
    pub calls: usize,
    /// Transport under test.
    pub transport: TransportKind,
    /// Seed for both the fault plan and the client's retry jitter.
    pub seed: u64,
    /// `true` drives a non-idempotent counter method instead of the
    /// echo, adds the duplicate-generating `drop_reply` fault to the
    /// mix, and counts exactly-once outcomes (executions vs. calls,
    /// duplicates suppressed by the reply cache).
    pub non_idempotent: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            calls: 100,
            transport: TransportKind::Mem,
            seed: 2024,
            non_idempotent: false,
        }
    }
}

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("ChaosEcho");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("payload", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("payload")),
        )
        .expect("echo method");
    class
}

/// A counter whose one distributed method is observably non-idempotent:
/// duplicated executions show up as `effects > calls`.
fn counter_class() -> ClassHandle {
    jpie::parse::parse_class(
        "class ChaosCounter { field int n; distributed int bump() { \
         this.n = this.n + 1; return this.n; } }",
    )
    .expect("counter class")
}

const FAULT_KINDS: [&str; 7] = [
    "refuse",
    "delay",
    "truncate",
    "corrupt",
    "disconnect",
    "blackhole",
    "drop_reply",
];

fn faults_injected_total() -> u64 {
    let snap = obs::registry().snapshot();
    FAULT_KINDS
        .iter()
        .map(|k| snap.counter(&obs::metrics::key("faults_injected_total", &[("kind", k)])))
        .sum()
}

fn duplicates_suppressed_total(class: &str) -> u64 {
    obs::registry().snapshot().counter(&obs::metrics::key(
        "duplicate_calls_suppressed_total",
        &[("class", class)],
    ))
}

/// Runs one sweep point: deploy, inject, hammer, measure, tear down.
pub fn run_chaos_point(cfg: &ChaosConfig, fault_rate: f64) -> ChaosPoint {
    let manager = SdeManager::new(SdeConfig {
        transport: cfg.transport,
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let class = if cfg.non_idempotent {
        counter_class()
    } else {
        echo_class()
    };
    let server = manager.deploy_soap(class).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let policy = cde::ResiliencePolicy::seeded(cfg.seed)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(6)
        // High trip threshold: the sweep measures retries, not fail-fast.
        .with_breaker(64, Duration::from_millis(500));
    let env = cde::ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let authority = stub.authority();

    // In non-idempotent mode the first call runs fault-free so the reply
    // advertises the server's cache — the negotiation that licenses
    // retrying non-idempotent calls at all.
    let mut primed = 0usize;
    if cfg.non_idempotent {
        env.call(&stub, "bump", &[]).expect("prime call");
        assert!(stub.server_caches(), "server must advertise reply cache");
        primed = 1;
    }

    if fault_rate > 0.0 {
        // The same mixed-fault recipe as the acceptance test, scaled so
        // the per-connection incidence sums to `fault_rate`. The
        // non-idempotent mode trades some refused connects for
        // `drop_reply` — the server executes, then the reply is lost —
        // the fault that *generates* duplicates for the cache to absorb.
        let plan = httpd::FaultPlan::seeded(cfg.seed)
            .rule(httpd::FaultRule::delay(
                &authority,
                fault_rate * 0.20,
                Duration::from_millis(1),
                Duration::from_millis(1),
            ))
            .rule(httpd::FaultRule::truncate(
                &authority,
                fault_rate * 0.15,
                40,
            ))
            .rule(httpd::FaultRule::corrupt(&authority, fault_rate * 0.15, 2))
            .rule(httpd::FaultRule::disconnect(
                &authority,
                fault_rate * 0.10,
                10,
            ));
        let plan = if cfg.non_idempotent {
            plan.rule(httpd::FaultRule::refuse(&authority, fault_rate * 0.15))
                .rule(httpd::FaultRule::drop_reply(&authority, fault_rate * 0.25).on_accept())
        } else {
            plan.rule(httpd::FaultRule::refuse(&authority, fault_rate * 0.40))
        };
        plan.install();
        // The prime call parked a healthy pre-chaos connection; faults
        // roll at connection establishment, so drop it.
        stub.drop_pooled_connections();
    }

    let retries_before = obs::registry().snapshot().counter("rmi_retries_total");
    let faults_before = faults_injected_total();
    let dup_before = duplicates_suppressed_total("ChaosCounter");
    let mut ok = primed;
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.calls);
    for i in primed..cfg.calls {
        if cfg.non_idempotent && i % 4 == 0 {
            // Long-running clients churn connections; without churn a
            // parked connection never re-rolls the fault dice.
            stub.drop_pooled_connections();
        }
        let t0 = Instant::now();
        let outcome = if cfg.non_idempotent {
            env.call(&stub, "bump", &[]).map(|v| {
                debug_assert!(matches!(v, Value::Int(_)));
            })
        } else {
            let arg = Value::Str(format!("payload-{i}"));
            env.call_idempotent(&stub, "echo", std::slice::from_ref(&arg))
                .map(|v| {
                    debug_assert_eq!(v, arg);
                })
        };
        if outcome.is_ok() {
            ok += 1;
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    httpd::fault::clear();
    let retries = obs::registry().snapshot().counter("rmi_retries_total") - retries_before;
    let faults_injected = faults_injected_total() - faults_before;
    let duplicates_suppressed = duplicates_suppressed_total("ChaosCounter") - dup_before;
    let effects = if cfg.non_idempotent {
        match server
            .instance()
            .expect("live instance")
            .fields_snapshot()
            .iter()
            .find(|(n, _)| n == "n")
            .map(|(_, v)| v.clone())
        {
            Some(Value::Int(n)) => n as u64,
            other => panic!("counter field missing: {other:?}"),
        }
    } else {
        0
    };
    manager.shutdown();

    let (mean, p95) = if samples.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = samples[((samples.len() - 1) as f64 * 0.95).round() as usize];
        (mean, p95)
    };
    ChaosPoint {
        fault_rate,
        calls: cfg.calls,
        ok,
        retries,
        faults_injected,
        mean_rtt_us: mean,
        p95_rtt_us: p95,
        effects,
        duplicates_suppressed,
    }
}

/// Runs the whole sweep over `rates` (fractions, e.g. `[0.0, 0.1, 0.2]`).
pub fn run_chaos_sweep(cfg: &ChaosConfig, rates: &[f64]) -> Vec<ChaosPoint> {
    rates.iter().map(|&r| run_chaos_point(cfg, r)).collect()
}

/// Renders the sweep as the EXPERIMENTS.md table.
pub fn render_chaos(points: &[ChaosPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fault_rate * 100.0),
                p.calls.to_string(),
                format!("{:.1}%", p.ok as f64 / p.calls as f64 * 100.0),
                p.retries.to_string(),
                p.faults_injected.to_string(),
                format!("{:.1}", p.mean_rtt_us),
                format!("{:.1}", p.p95_rtt_us),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "fault rate",
            "calls",
            "success",
            "retries",
            "faults fired",
            "mean us",
            "p95 us",
        ],
        &rows,
    )
}

/// Renders the non-idempotent sweep: exactly-once accounting per point.
/// `exact` holds when `ok <= effects <= calls` — no acknowledged call
/// executed more than once, no abandoned call more than once.
pub fn render_chaos_exactly_once(points: &[ChaosPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fault_rate * 100.0),
                p.calls.to_string(),
                p.ok.to_string(),
                p.effects.to_string(),
                p.duplicates_suppressed.to_string(),
                p.retries.to_string(),
                if (p.ok as u64) <= p.effects && p.effects <= p.calls as u64 {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
            ]
        })
        .collect();
    crate::render_table(
        &[
            "fault rate",
            "calls",
            "ok",
            "executions",
            "dups suppressed",
            "retries",
            "exactly-once",
        ],
        &rows,
    )
}

/// Renders the sweep as a JSON report (`--json <path>`).
pub fn chaos_json(points: &[ChaosPoint], transport: &str, non_idempotent: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"bench\": \"chaos_sweep\",\n");
    let _ = writeln!(
        out,
        "  \"transport\": \"{}\",",
        crate::json::escape(transport)
    );
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if non_idempotent {
            "non_idempotent"
        } else {
            "idempotent"
        }
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fault_rate\": {:.3}, \"calls\": {}, \"ok\": {}, \"retries\": {}, \
             \"faults_injected\": {}, \"mean_us\": {:.3}, \"p95_us\": {:.3}, \
             \"effects\": {}, \"duplicates_suppressed\": {}, \"exactly_once\": {}}}{}",
            p.fault_rate,
            p.calls,
            p.ok,
            p.retries,
            p.faults_injected,
            p.mean_rtt_us,
            p.p95_rtt_us,
            p.effects,
            p.duplicates_suppressed,
            !non_idempotent || ((p.ok as u64) <= p.effects && p.effects <= p.calls as u64),
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_point_is_perfect() {
        let cfg = ChaosConfig {
            calls: 10,
            ..ChaosConfig::default()
        };
        let p = run_chaos_point(&cfg, 0.0);
        assert_eq!(p.ok, p.calls);
        assert!(p.mean_rtt_us.is_finite());
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let p = ChaosPoint {
            fault_rate: 0.2,
            calls: 50,
            ok: 50,
            retries: 13,
            faults_injected: 12,
            mean_rtt_us: 210.0,
            p95_rtt_us: 900.0,
            effects: 50,
            duplicates_suppressed: 4,
        };
        let table = render_chaos(std::slice::from_ref(&p));
        assert!(table.contains("20%"));
        assert!(table.contains("100.0%"));
        let once = render_chaos_exactly_once(std::slice::from_ref(&p));
        assert!(once.contains("dups suppressed"));
        assert!(once.contains("yes"));
        let json = chaos_json(std::slice::from_ref(&p), "mem", false);
        assert!(json.contains("\"fault_rate\": 0.200"));
        assert!(json.contains("\"bench\": \"chaos_sweep\""));
        assert!(json.contains("\"mode\": \"idempotent\""));
        let json = chaos_json(&[p], "mem", true);
        assert!(json.contains("\"mode\": \"non_idempotent\""));
        assert!(json.contains("\"exactly_once\": true"));
    }

    #[test]
    fn non_idempotent_zero_fault_point_counts_every_effect() {
        let cfg = ChaosConfig {
            calls: 10,
            non_idempotent: true,
            ..ChaosConfig::default()
        };
        let p = run_chaos_point(&cfg, 0.0);
        assert_eq!(p.ok, p.calls);
        assert_eq!(p.effects, p.calls as u64);
    }
}
