//! Kill-shard chaos sweep: live failover under injected faults.
//!
//! Deploys a router fleet (N shards, each a leader + WAL-replicating
//! follower, non-idempotent counter classes on every shard), installs
//! the usual mixed fault plan against the **router front** — the only
//! authority clients talk to — and kills one whole shard at a seeded
//! point mid-sweep. The client keeps calling through the front with
//! exactly-once retry licensing; the sweep asserts 100% call success,
//! fleet-wide `executions == calls` accounting across the failover, and
//! `version >= pre-crash` on every promoted document, and reports the
//! failover latency split (detect → replay → republish → first
//! successful call). Binary: `chaos_sweep --kill-shard <n>`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use router::{ClassSpec, HashRing, Router, RouterConfig};
use sde::TransportKind;

/// Parameters for the kill-shard sweep.
#[derive(Debug, Clone, Copy)]
pub struct KillShardConfig {
    /// Calls per sweep point (across all classes, round-robin).
    pub calls: usize,
    /// Shards in the fleet.
    pub shards: usize,
    /// Which shard dies mid-sweep.
    pub kill_shard: usize,
    /// Transport under test.
    pub transport: TransportKind,
    /// Seed for the fault plan, the retry jitter, and the kill point.
    pub seed: u64,
}

impl Default for KillShardConfig {
    fn default() -> Self {
        KillShardConfig {
            calls: 90,
            shards: 3,
            kill_shard: 1,
            transport: TransportKind::Mem,
            seed: 2024,
        }
    }
}

/// One sweep point: N calls at one fault rate with one shard killed.
#[derive(Debug, Clone)]
pub struct KillShardPoint {
    pub fault_rate: f64,
    pub calls: usize,
    pub ok: usize,
    /// Retry attempts spent across all calls.
    pub retries: u64,
    /// Interface-document refetches triggered by consecutive transport
    /// failures (the router-aware reconvergence path).
    pub refetches: u64,
    /// Fleet-wide executions: live-shard counters plus, for the killed
    /// shard, pre-kill snapshot + promoted-instance counter (field state
    /// is not replicated — only version floors are — so post-crash
    /// counting restarts at zero on the promoted follower).
    pub effects: u64,
    /// `ok <= effects <= calls`: no acknowledged call ran twice, no
    /// abandoned call more than once — across the failover.
    pub exactly_once: bool,
    /// Every killed-shard document republished at `version >=
    /// pre-crash`.
    pub versions_monotonic: bool,
    /// Kill → breaker trip (router-side).
    pub detect_ms: f64,
    /// WAL adoption + replay on the promoted follower.
    pub replay_ms: f64,
    /// Redeploys + forced republication + route swap.
    pub republish_ms: f64,
    /// Kill → first *successful* client call on a killed-shard class:
    /// the end-to-end failover latency a caller experiences.
    pub failover_ms: f64,
}

fn counter_source(name: &str) -> String {
    format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    )
}

/// Picks class names until every shard owns at least two, mirroring the
/// router's ring so the sweep knows each class's home up front.
fn pick_classes(shards: usize, vnodes: usize) -> Vec<(String, usize)> {
    let ring = HashRing::new(shards, vnodes);
    let mut per_shard = vec![0usize; shards];
    let mut picked = Vec::new();
    for i in 0.. {
        let name = format!("KsCounter{i}");
        let shard = ring.shard_for(&name);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            picked.push((name, shard));
        }
        if per_shard.iter().all(|&c| c >= 2) {
            break;
        }
    }
    picked
}

fn authority_of(url: &str) -> String {
    match url.find("://").map(|i| i + 3) {
        Some(rest) => match url[rest..].find('/') {
            Some(slash) => url[..rest + slash].to_string(),
            None => url.to_string(),
        },
        None => url.to_string(),
    }
}

/// Runs one kill-shard point: fleet up, faults on, kill, keep calling,
/// account.
pub fn run_kill_shard_point(cfg: &KillShardConfig, fault_rate: f64) -> KillShardPoint {
    static POINT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = POINT_SEQ.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let wal_root =
        std::env::temp_dir().join(format!("live-rmi-killshard-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);

    let rcfg = RouterConfig::new(
        cfg.shards,
        cfg.transport,
        &wal_root,
        format!("ks{}-{seq}", std::process::id()),
    );
    let vnodes = rcfg.vnodes;
    let classes = pick_classes(cfg.shards, vnodes);
    let specs: Vec<ClassSpec> = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(rcfg, specs).expect("router start");
    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must converge (followers caught up) before the sweep"
    );

    let policy = cde::ResiliencePolicy::seeded(cfg.seed)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(10)
        .with_deadline(Duration::from_secs(8))
        // High trip threshold: the *client* breaker must not fail fast —
        // shard failure detection is the router's job.
        .with_breaker(256, Duration::from_millis(500));
    let env = cde::ClientEnvironment::with_policy(policy);
    let stubs: Vec<(String, usize, std::sync::Arc<cde::DynamicStub>)> = classes
        .iter()
        .map(|(name, shard)| {
            let stub = env.connect_soap(&router.wsdl_url(name)).expect("stub");
            (name.clone(), *shard, stub)
        })
        .collect();

    // Prime one fault-free call per class: latches the reply-cache
    // advertisement that licenses non-idempotent retries.
    for (_, _, stub) in &stubs {
        env.call(stub, "bump", &[]).expect("prime call");
        assert!(stub.server_caches(), "server must advertise reply cache");
    }
    let primed = stubs.len();
    assert!(
        cfg.calls > primed * 3,
        "need enough calls to surround the kill point"
    );

    let front_authority = authority_of(&router.front_url());
    if fault_rate > 0.0 {
        // Same mixed recipe as the non-idempotent chaos sweep, aimed at
        // the front: the only wire clients have. Router→backend hops and
        // health probes stay clean — they model intra-fleet links.
        httpd::FaultPlan::seeded(cfg.seed)
            .rule(httpd::FaultRule::delay(
                &front_authority,
                fault_rate * 0.20,
                Duration::from_millis(1),
                Duration::from_millis(1),
            ))
            .rule(httpd::FaultRule::truncate(
                &front_authority,
                fault_rate * 0.15,
                40,
            ))
            .rule(httpd::FaultRule::corrupt(
                &front_authority,
                fault_rate * 0.15,
                2,
            ))
            .rule(httpd::FaultRule::disconnect(
                &front_authority,
                fault_rate * 0.10,
                10,
            ))
            .rule(httpd::FaultRule::refuse(
                &front_authority,
                fault_rate * 0.15,
            ))
            .rule(httpd::FaultRule::drop_reply(&front_authority, fault_rate * 0.25).on_accept())
            .install();
        for (_, _, stub) in &stubs {
            stub.drop_pooled_connections();
        }
    }

    // Kill at a seeded point in the middle third of the sweep. The
    // client is sequential, so the kill always lands *between* calls:
    // the pre-kill counter snapshots are exact.
    let span = (cfg.calls - primed) / 3;
    let kill_at = primed + span + (cfg.seed as usize % span.max(1));
    let killed: Vec<&(String, usize, std::sync::Arc<cde::DynamicStub>)> = stubs
        .iter()
        .filter(|(_, shard, _)| *shard == cfg.kill_shard)
        .collect();
    assert!(!killed.is_empty(), "killed shard must own classes");

    let snapshot = obs::registry().snapshot();
    let retries_before = snapshot.counter("rmi_retries_total");
    let refetch_before = snapshot.counter("cde_failover_refetches_total");

    let mut ok = primed;
    let mut calls_per_class: HashMap<String, u64> =
        stubs.iter().map(|(n, _, _)| (n.clone(), 1)).collect();
    let mut pre_kill: HashMap<String, i64> = HashMap::new();
    let mut pre_versions: HashMap<String, u64> = HashMap::new();
    let mut t_kill: Option<Instant> = None;
    let mut first_ok_after_kill: Option<f64> = None;
    for i in primed..cfg.calls {
        if i == kill_at {
            for (name, _, _) in &killed {
                pre_kill.insert(
                    name.clone(),
                    router.field_value(name, "n").expect("counter value"),
                );
                pre_versions.insert(name.clone(), router.doc_version(name).expect("doc version"));
            }
            router.kill_shard(cfg.kill_shard);
            t_kill = Some(Instant::now());
        }
        let (name, shard, stub) = &stubs[i % stubs.len()];
        if fault_rate > 0.0 && i % 4 == 0 {
            // Connection churn: faults roll at connect time.
            stub.drop_pooled_connections();
        }
        if env.call(stub, "bump", &[]).is_ok() {
            ok += 1;
            *calls_per_class.get_mut(name).expect("known class") += 1;
            if let (Some(t0), None, true) = (t_kill, first_ok_after_kill, *shard == cfg.kill_shard)
            {
                first_ok_after_kill = Some(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    httpd::fault::clear();

    let snapshot = obs::registry().snapshot();
    let retries = snapshot.counter("rmi_retries_total") - retries_before;
    let refetches = snapshot.counter("cde_failover_refetches_total") - refetch_before;

    // Let the promoted shard's own follower finish catching up before
    // reading final state.
    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must reconverge after failover"
    );

    let mut effects = 0u64;
    for (name, shard, _) in &stubs {
        let current = router.field_value(name, "n").expect("counter value");
        let pre = if *shard == cfg.kill_shard {
            *pre_kill.get(name).expect("pre-kill snapshot")
        } else {
            0
        };
        effects += (pre + current) as u64;
    }
    let versions_monotonic = killed
        .iter()
        .all(|(name, _, _)| router.doc_version(name).expect("doc version") >= pre_versions[name]);

    let failover = router
        .last_failover()
        .expect("failover must have completed");
    assert_eq!(failover.shard, cfg.kill_shard);

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);

    let exactly_once = (ok as u64) <= effects && effects <= cfg.calls as u64;
    KillShardPoint {
        fault_rate,
        calls: cfg.calls,
        ok,
        retries,
        refetches,
        effects,
        exactly_once,
        versions_monotonic,
        detect_ms: failover.detect_ms,
        replay_ms: failover.replay_ms,
        republish_ms: failover.republish_ms,
        failover_ms: first_ok_after_kill.unwrap_or(f64::NAN),
    }
}

/// Runs the sweep over `rates`.
pub fn run_kill_shard_sweep(cfg: &KillShardConfig, rates: &[f64]) -> Vec<KillShardPoint> {
    rates
        .iter()
        .map(|&r| run_kill_shard_point(cfg, r))
        .collect()
}

/// p95 of the end-to-end failover latencies (max for small sweeps).
pub fn failover_p95_ms(points: &[KillShardPoint]) -> f64 {
    let mut v: Vec<f64> = points
        .iter()
        .map(|p| p.failover_ms)
        .filter(|m| m.is_finite())
        .collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * 0.95).round() as usize]
}

/// Renders the sweep as the EXPERIMENTS.md failover table.
pub fn render_kill_shard(points: &[KillShardPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fault_rate * 100.0),
                p.calls.to_string(),
                format!("{:.1}%", p.ok as f64 / p.calls as f64 * 100.0),
                p.effects.to_string(),
                if p.exactly_once {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
                if p.versions_monotonic {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
                format!("{:.1}", p.detect_ms),
                format!("{:.1}", p.replay_ms),
                format!("{:.1}", p.republish_ms),
                format!("{:.1}", p.failover_ms),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "fault rate",
            "calls",
            "success",
            "executions",
            "exactly-once",
            "versions >=",
            "detect ms",
            "replay ms",
            "republish ms",
            "failover ms",
        ],
        &rows,
    )
}

/// Renders the sweep as a JSON report (`--json <path>`).
pub fn kill_shard_json(
    points: &[KillShardPoint],
    cfg: &KillShardConfig,
    transport: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"bench\": \"chaos_sweep\",\n  \"mode\": \"kill_shard\",\n");
    let _ = writeln!(
        out,
        "  \"transport\": \"{}\",",
        crate::json::escape(transport)
    );
    let _ = writeln!(out, "  \"shards\": {},", cfg.shards);
    let _ = writeln!(out, "  \"killed_shard\": {},", cfg.kill_shard);
    let _ = writeln!(
        out,
        "  \"failover_p95_ms\": {:.3},",
        failover_p95_ms(points)
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fault_rate\": {:.3}, \"calls\": {}, \"ok\": {}, \"retries\": {}, \
             \"refetches\": {}, \"effects\": {}, \"exactly_once\": {}, \
             \"versions_monotonic\": {}, \"detect_ms\": {:.3}, \"replay_ms\": {:.3}, \
             \"republish_ms\": {:.3}, \"failover_ms\": {:.3}}}{}",
            p.fault_rate,
            p.calls,
            p.ok,
            p.retries,
            p.refetches,
            p.effects,
            p.exactly_once,
            p.versions_monotonic,
            p.detect_ms,
            p.replay_ms,
            p.republish_ms,
            p.failover_ms,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_picker_covers_every_shard() {
        let picked = pick_classes(3, 32);
        for shard in 0..3 {
            assert_eq!(
                picked.iter().filter(|(_, s)| *s == shard).count(),
                2,
                "shard {shard} must own exactly two classes"
            );
        }
    }

    #[test]
    fn json_and_table_are_well_formed() {
        let p = KillShardPoint {
            fault_rate: 0.2,
            calls: 90,
            ok: 90,
            retries: 12,
            refetches: 3,
            effects: 90,
            exactly_once: true,
            versions_monotonic: true,
            detect_ms: 41.0,
            replay_ms: 2.5,
            republish_ms: 8.0,
            failover_ms: 95.0,
        };
        let cfg = KillShardConfig::default();
        let table = render_kill_shard(std::slice::from_ref(&p));
        assert!(table.contains("exactly-once"));
        assert!(table.contains("yes"));
        let json = kill_shard_json(std::slice::from_ref(&p), &cfg, "mem");
        assert!(json.contains("\"mode\": \"kill_shard\""));
        assert!(json.contains("\"failover_p95_ms\": 95.000"));
        assert!(json.contains("\"exactly_once\": true"));
    }

    #[test]
    fn kill_shard_point_at_zero_faults_is_perfect() {
        let cfg = KillShardConfig {
            calls: 40,
            ..KillShardConfig::default()
        };
        let p = run_kill_shard_point(&cfg, 0.0);
        assert_eq!(p.ok, p.calls, "100% success across the kill");
        assert!(p.exactly_once, "executions == calls fleet-wide");
        assert!(p.versions_monotonic);
        assert!(p.failover_ms.is_finite());
    }
}
