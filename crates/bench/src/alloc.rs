//! Heap-allocation counting for the benchmark binaries.
//!
//! [`CountingAllocator`] wraps [`std::alloc::System`] and counts every
//! `alloc`/`realloc` with a relaxed atomic (statistics only — no
//! ordering is implied and none is needed). Benchmark *binaries* install
//! it as their `#[global_allocator]`; the library only reads the
//! counter, so `cargo test` (which does not install it) simply reports
//! no allocation data instead of skewing unit tests.
//!
//! The interesting metric is the **delta across a measured window
//! divided by the number of calls** — allocations per steady-state RMI
//! call — which is how the zero-allocation wire path is held to its
//! budget in CI (see `ci.yml` and `crates/bench/alloc_budget.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Total `alloc` + `realloc` calls since process start. Deallocations
/// are not counted: the budget is about allocation *pressure* on the
/// call path, and a free implies a matching earlier count anyway.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that counts allocation events.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bench::alloc::CountingAllocator = bench::alloc::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: delegates every operation unchanged to `System`; the counter
// update has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocation events observed so far (0 when the counting allocator is
/// not installed in this process).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether the counting allocator is active in this process. Any Rust
/// program allocates long before `main`, so a zero counter can only
/// mean the default allocator is in use.
pub fn active() -> bool {
    allocations() > 0
}

#[cfg(test)]
mod tests {
    // The test harness does not install the counting allocator, so the
    // counter must sit at zero and `active()` must say so — that is the
    // contract `measure()` relies on to emit `None` under `cargo test`.
    #[test]
    fn inactive_under_test_harness() {
        assert_eq!(super::allocations(), 0);
        assert!(!super::active());
    }
}
