//! A minimal micro-benchmark harness built on `obs` histograms.
//!
//! Replaces the external criterion dependency for the `benches/` targets:
//! warm up, time individual iterations into a log-bucketed histogram,
//! and print mean / p50 / p95 / p99 per benchmark. Deterministic
//! iteration counts keep runs comparable across machines.

use obs::metrics::Histogram;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 200_000;

/// Result of one benchmark: iteration latencies in nanoseconds.
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

impl BenchResult {
    pub fn render(&self) -> String {
        format!(
            "{:<32} {:>9} iters  mean {:>10.1} ns  p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
            self.name, self.iters, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns
        )
    }
}

/// Run `f` repeatedly, timing each call, and return the distribution.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    let warm_until = Instant::now() + WARMUP;
    while Instant::now() < warm_until {
        f();
    }
    let hist = Histogram::new();
    let measure_until = Instant::now() + MEASURE;
    let mut iters = 0u64;
    while Instant::now() < measure_until && iters < MAX_ITERS {
        let t = Instant::now();
        f();
        hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        iters += 1;
    }
    let s = hist.snapshot();
    BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: s.mean(),
        p50_ns: s.percentile(0.5),
        p95_ns: s.percentile(0.95),
        p99_ns: s.percentile(0.99),
    }
}

/// Run and print one benchmark (the common case in `benches/` mains).
pub fn run(name: &str, f: impl FnMut()) {
    println!("{}", bench(name, f).render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_numbers() {
        let r = bench("spin", || {
            std::hint::black_box((0..32u64).sum::<u64>());
        });
        assert!(r.iters > 0);
        assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns);
    }
}
