//! # bench — the experiment harness
//!
//! Regenerates every data-bearing table and figure of the paper:
//!
//! * [`rtt`] — **Table 1** (and the §7 ≤ 25 % overhead claim): average
//!   round-trip time of RMI calls for SDE SOAP vs. static SOAP
//!   ("Axis-Tomcat") and SDE CORBA vs. static CORBA ("OpenORB"), averaged
//!   over 100 calls as in the paper. Binary: `table1`.
//! * [`consistency`] — **Figures 7 and 8**: the active-publishing race
//!   matrix (only (1,i), (1,ii), (2,ii) consistent) and the
//!   reactive-publishing matrix (all combinations meet the recency
//!   guarantee). Binary: `consistency_matrix`.
//! * [`ablation`] — the **§5.6 design argument**: change-driven vs.
//!   polling vs. stable-timeout publication over recorded edit-session
//!   traces. Binary: `publication_ablation`.
//! * [`rogue`] — the **§5.7 claim** that a rogue client spamming
//!   stale-method calls cannot force needless IDL generations. Binary:
//!   `rogue_client`.
//! * [`chaos`] — success rate vs. injected fault rate: the resilient
//!   client (deadlines, backoff retries, circuit breaker) driven through
//!   a seeded chaos layer. Binary: `chaos_sweep`.
//! * [`shardchaos`] — live shard failover: a router fleet with
//!   WAL-replicating followers, one shard killed mid-sweep at a seeded
//!   point, asserting 100 % client success, exactly-once accounting and
//!   `version >= pre-crash`, and reporting the failover latency split.
//!   Binary: `chaos_sweep --kill-shard <n>`.
//! * [`rebalance`] — planned class migration under the same fault plan:
//!   one class moved between shards mid-sweep, asserting zero failed
//!   calls, `executions == calls` *exactly* (state carried, no resets),
//!   version monotonicity, and a bounded drain pause. Binary:
//!   `chaos_sweep --rebalance`.
//!
//! Each module returns plain data structures and a
//! pretty text rendering so binaries can print paper-style tables and
//! tests can assert on the shape of the results.

pub mod ablation;
pub mod alloc;
pub mod chaos;
pub mod connsoak;
pub mod consistency;
pub mod harness;
pub mod json;
pub mod procinfo;
pub mod rebalance;
pub mod rogue;
pub mod rtt;
pub mod shardchaos;

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }
}
