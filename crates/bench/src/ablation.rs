//! The §5.6 publication-strategy ablation.
//!
//! The paper argues for stable-timeout publishing over two alternatives:
//! change-driven ("would often lead to publishing transient server
//! interface descriptions ... expensive at the server ... unnecessary
//! changes at the client") and polling ("could still publish a transient
//! interface \[which\] could persist at the client side until the next
//! polling interval"). This experiment makes that argument quantitative:
//! it replays a recorded edit-session trace (bursts of edits separated by
//! think-time) against each strategy and reports
//!
//! * **publications** — how many documents were pushed to the Interface
//!   Server (server + client cost),
//! * **transient publications** — published versions that were *not* the
//!   final version of their burst (exactly the "transient interfaces" the
//!   paper worries about),
//! * **staleness** — time from the end of each burst until the final
//!   version was published (how long clients waited for the real
//!   interface).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use jpie::{ClassHandle, MethodBuilder, TypeDesc};
use sde::publish::{GeneratedDoc, PublicationStrategy, PublisherCore};
/// A recorded edit session: bursts of edits with intra-burst spacing and
/// inter-burst think time.
#[derive(Debug, Clone, Copy)]
pub struct EditTrace {
    /// Number of edit bursts.
    pub bursts: usize,
    /// Edits per burst.
    pub edits_per_burst: usize,
    /// Gap between edits inside a burst.
    pub intra_gap: Duration,
    /// Think time between bursts (longer than the stable timeout).
    pub inter_gap: Duration,
}

impl Default for EditTrace {
    fn default() -> Self {
        EditTrace {
            bursts: 4,
            edits_per_burst: 5,
            intra_gap: Duration::from_millis(8),
            inter_gap: Duration::from_millis(120),
        }
    }
}

/// Results for one strategy.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Strategy label.
    pub strategy: String,
    /// Total documents published (excluding the initial one).
    pub publications: u64,
    /// Publications of versions that were not burst-final.
    pub transient_publications: u64,
    /// Mean time from burst end to final-version publication, in
    /// milliseconds (`None` when a burst's final version was never
    /// published during the session).
    pub mean_staleness_ms: Option<f64>,
    /// Bursts whose final version was published by session end.
    pub bursts_settled: usize,
    /// Total bursts.
    pub bursts: usize,
}

struct PublicationLog {
    entries: Mutex<Vec<(Instant, u64)>>,
}

/// Replays `trace` against a publisher running `strategy`.
pub fn run_strategy(strategy: PublicationStrategy, trace: &EditTrace) -> AblationRow {
    let class = ClassHandle::new("Ablation");
    class
        .add_method(MethodBuilder::new("seed", TypeDesc::Void).distributed(true))
        .expect("seed");

    let log = Arc::new(PublicationLog {
        entries: Mutex::new(Vec::new()),
    });
    let sink_log = log.clone();
    let gen_class = class.clone();
    let method_counter = AtomicU64::new(0);

    let publisher = PublisherCore::start(
        class.clone(),
        strategy,
        Box::new(move || GeneratedDoc {
            text: format!("v{}", gen_class.interface_version()),
            version: gen_class.interface_version(),
        }),
        Box::new(move |doc| {
            sink_log
                .entries
                .lock()
                .expect("log lock")
                .push((Instant::now(), doc.version));
        }),
    );
    // Generation cost: the paper calls it "a relatively expensive
    // operation"; model a small fixed cost.
    publisher.set_generation_latency(Duration::from_millis(2));

    // Discard the initial publication from the counts.
    let initial_publications = 1u64;

    let mut burst_ends: Vec<(Instant, u64)> = Vec::new(); // (end time, final version)
    for _ in 0..trace.bursts {
        for _ in 0..trace.edits_per_burst {
            let n = method_counter.fetch_add(1, Ordering::Relaxed);
            class
                .add_method(MethodBuilder::new(format!("m{n}"), TypeDesc::Void).distributed(true))
                .expect("edit");
            thread::sleep(trace.intra_gap);
        }
        burst_ends.push((Instant::now(), class.interface_version()));
        thread::sleep(trace.inter_gap);
    }
    // Let in-flight work drain (bounded).
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while !publisher.is_current() && Instant::now() < drain_deadline {
        thread::sleep(Duration::from_millis(5));
    }
    publisher.shutdown();

    let entries = log.entries.lock().expect("log lock").clone();
    let published: Vec<(Instant, u64)> = entries;
    let publications = (published.len() as u64).saturating_sub(initial_publications);

    let final_versions: Vec<u64> = burst_ends.iter().map(|(_, v)| *v).collect();
    let transient_publications = published
        .iter()
        .skip(initial_publications as usize)
        .filter(|(_, v)| !final_versions.contains(v))
        .count() as u64;

    let mut staleness = Vec::new();
    let mut settled = 0;
    for (end, final_version) in &burst_ends {
        if let Some((t, _)) = published
            .iter()
            .find(|(t, v)| v >= final_version && t >= end)
            .or_else(|| published.iter().find(|(_, v)| v >= final_version))
        {
            settled += 1;
            let dt = t.saturating_duration_since(*end);
            staleness.push(dt.as_secs_f64() * 1e3);
        }
    }
    let mean_staleness_ms = if staleness.is_empty() {
        None
    } else {
        Some(staleness.iter().sum::<f64>() / staleness.len() as f64)
    };

    AblationRow {
        strategy: strategy_label(strategy),
        publications,
        transient_publications,
        mean_staleness_ms,
        bursts_settled: settled,
        bursts: trace.bursts,
    }
}

fn strategy_label(strategy: PublicationStrategy) -> String {
    match strategy {
        PublicationStrategy::ChangeDriven => "change-driven".into(),
        PublicationStrategy::Periodic(d) => format!("poll({}ms)", d.as_millis()),
        PublicationStrategy::StableTimeout(d) => format!("stable({}ms)", d.as_millis()),
    }
}

/// Runs the full ablation: change-driven, two poll rates, and the paper's
/// stable timeout.
pub fn run_ablation(trace: &EditTrace, stable_timeout: Duration) -> Vec<AblationRow> {
    vec![
        run_strategy(PublicationStrategy::ChangeDriven, trace),
        run_strategy(PublicationStrategy::Periodic(stable_timeout / 2), trace),
        run_strategy(PublicationStrategy::Periodic(stable_timeout * 2), trace),
        run_strategy(PublicationStrategy::StableTimeout(stable_timeout), trace),
    ]
}

/// Sweeps the stable timeout across `timeouts` — the §5.6 knob: "The user
/// can control the publication frequency by tuning the interval of
/// stability that triggers updates." Short timeouts behave like
/// change-driven publishing (more publications, transients appear);
/// long timeouts publish less but leave clients stale longer after a
/// burst.
pub fn run_timeout_sweep(trace: &EditTrace, timeouts: &[Duration]) -> Vec<AblationRow> {
    timeouts
        .iter()
        .map(|t| run_strategy(PublicationStrategy::StableTimeout(*t), trace))
        .collect()
}

/// Renders the ablation rows.
pub fn render(rows: &[AblationRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.publications.to_string(),
                r.transient_publications.to_string(),
                r.mean_staleness_ms
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{}/{}", r.bursts_settled, r.bursts),
            ]
        })
        .collect();
    let mut out = String::from("Section 5.6 ablation: publication strategies over an edit trace\n");
    out.push_str(&crate::render_table(
        &[
            "strategy",
            "publications",
            "transient",
            "staleness(ms)",
            "settled",
        ],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_timeout_eliminates_transient_publications() {
        let trace = EditTrace::default();
        let change_driven = run_strategy(PublicationStrategy::ChangeDriven, &trace);
        let stable = run_strategy(
            PublicationStrategy::StableTimeout(Duration::from_millis(40)),
            &trace,
        );

        let total_edits = (trace.bursts * trace.edits_per_burst) as u64;
        // Change-driven publishes roughly once per edit (coalescing can
        // merge a few), always strictly more than stable.
        assert!(
            change_driven.publications > stable.publications,
            "change-driven {} vs stable {}",
            change_driven.publications,
            stable.publications
        );
        assert!(change_driven.publications <= total_edits);
        // The paper's mechanism: at most one publication per burst, all
        // burst-final (no transient interfaces).
        assert!(stable.publications <= trace.bursts as u64 + 1);
        assert_eq!(stable.transient_publications, 0);
        assert_eq!(stable.bursts_settled, trace.bursts);
        // Change-driven necessarily published transients (burst length > 1).
        assert!(change_driven.transient_publications > 0);
    }

    #[test]
    fn fast_polling_publishes_transients() {
        let trace = EditTrace::default();
        let poll = run_strategy(
            PublicationStrategy::Periodic(Duration::from_millis(10)),
            &trace,
        );
        assert!(
            poll.transient_publications > 0,
            "fast polling catches mid-burst states: {poll:?}"
        );
    }
}
