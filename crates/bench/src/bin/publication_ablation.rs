//! Regenerates the **§5.6 design argument**: stable-timeout publication
//! vs. change-driven and polling, over a recorded edit-session trace.

use std::time::Duration;

use bench::ablation::{render, run_ablation, run_timeout_sweep, EditTrace};

fn main() {
    let trace = EditTrace::default();
    eprintln!(
        "replaying {} bursts x {} edits (intra {:?}, think {:?}) per strategy ...",
        trace.bursts, trace.edits_per_burst, trace.intra_gap, trace.inter_gap
    );
    let rows = run_ablation(&trace, Duration::from_millis(40));
    println!("{}", render(&rows));
    println!(
        "Paper's argument: the stable-timeout row publishes once per stable\n\
         interface (no transients), change-driven pays one publication per\n\
         edit, and polling both publishes transients and leaves clients\n\
         stale up to a full polling interval.\n"
    );

    // §5.6: "The user can control the publication frequency by tuning the
    // interval of stability that triggers updates."
    let sweep = run_timeout_sweep(
        &trace,
        &[
            Duration::from_millis(4),
            Duration::from_millis(15),
            Duration::from_millis(40),
            Duration::from_millis(80),
        ],
    );
    println!("{}", render(&sweep));
    println!(
        "Sweep: a timeout shorter than the intra-burst gap degenerates\n\
         toward change-driven behavior (transients return); longer\n\
         timeouts trade publication count against post-burst staleness."
    );
}
