//! Connection-scaling soak for the event-driven transport core: how
//! many idle keep-alive connections one reactor server holds, and what
//! each costs in RSS, threads, and fresh-request latency.
//!
//! Usage: `connsoak [conns] [--step N] [--json <path>]` — defaults to
//! 2000 connections measured every 500. `threads_peak` in the report is
//! the whole-process OS thread peak; with the reactor it stays fixed
//! regardless of `conns` (thread-per-connection would scale linearly).

use bench::connsoak::{render, run_connsoak, ConnSoakConfig};
use bench::json::{connsoak_json, take_json_arg};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (json_path, args) = take_json_arg(&raw);
    let mut cfg = ConnSoakConfig::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--step" {
            if let Some(v) = args.get(i + 1).and_then(|a| a.parse().ok()) {
                cfg.step = v;
                i += 2;
                continue;
            }
        }
        if let Ok(n) = args[i].parse() {
            cfg.conns = n;
        }
        i += 1;
    }
    eprintln!(
        "opening {} idle keep-alive connections (one row per {}) ...",
        cfg.conns, cfg.step
    );
    let soak = run_connsoak(&cfg);
    println!("{}", render(&soak));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, connsoak_json(&soak)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
