//! Sweeps injected fault rate against the resilient client's success
//! rate, retry spend, and RTT — the EXPERIMENTS.md resilience table.
//!
//! Usage: `chaos_sweep [calls] [tcp|mem] [--seed <n>] [--non-idempotent]
//! [--kill-shard <n>] [--rebalance] [--shards <k>] [--json <path>]` —
//! defaults to 100 idempotent calls per point over the in-memory
//! transport at fault rates 0/10/20/30/40 %.
//! `--non-idempotent` switches to a counter workload with the
//! duplicate-generating `drop_reply` fault in the mix and reports
//! exactly-once outcomes (executions vs. calls, duplicates suppressed).
//! `--kill-shard <n>` switches to the router-fleet workload: `--shards`
//! (default 3) SDE backends behind the sharded authority router, shard
//! `n` killed mid-sweep at a seeded point, sweeping fault rates
//! 0/20/40 % and reporting failover latency (detect → replay →
//! republish → first successful call) alongside exactly-once and
//! version-monotonicity verdicts.
//! `--rebalance` runs the planned twin of the kill: one class *moved*
//! between shards mid-sweep over the same fault rates, gating on zero
//! failed calls, exact `executions == calls` accounting, and a bounded
//! drain pause (catchup → drain → handoff latency split).

use bench::chaos::{
    chaos_json, render_chaos, render_chaos_exactly_once, run_chaos_sweep, ChaosConfig,
};
use bench::json::take_json_arg;
use bench::rebalance::{rebalance_json, render_rebalance, run_rebalance_sweep, RebalanceConfig};
use bench::shardchaos::{
    kill_shard_json, render_kill_shard, run_kill_shard_sweep, KillShardConfig,
};
use sde::TransportKind;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (json_path, args) = take_json_arg(&raw);
    let mut seed = 2024u64;
    let mut calls = 100usize;
    let mut transport = TransportKind::Mem;
    let mut non_idempotent = false;
    let mut kill_shard: Option<usize> = None;
    let mut rebalance = false;
    let mut shards = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    seed = v;
                    i += 1;
                }
            }
            "--kill-shard" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    kill_shard = Some(v);
                    i += 1;
                }
            }
            "--shards" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    shards = v;
                    i += 1;
                }
            }
            "--non-idempotent" => non_idempotent = true,
            "--rebalance" => rebalance = true,
            "tcp" => transport = TransportKind::Tcp,
            "mem" => transport = TransportKind::Mem,
            a => {
                if let Ok(n) = a.parse() {
                    calls = n;
                }
            }
        }
        i += 1;
    }
    let transport_name = match transport {
        TransportKind::Tcp => "tcp",
        TransportKind::Mem => "mem",
    };

    if rebalance {
        let cfg = RebalanceConfig {
            calls: calls.max(40),
            shards,
            transport,
            seed,
        };
        let rates = [0.0, 0.2, 0.4];
        eprintln!(
            "rebalance sweep: {} calls per point over {:?}, {} shards, \
             moving one class mid-sweep, fault plan seed {} ...",
            cfg.calls, transport, cfg.shards, cfg.seed
        );
        let points = run_rebalance_sweep(&cfg, &rates);
        println!("{}", render_rebalance(&points));
        println!(
            "One class is migrated between shards mid-sweep as a planned\n\
             operation: WAL catch-up while the source serves, a bounded\n\
             drain to quiescence (parked calls get 503 + a jittered\n\
             Retry-After the client honors), then an atomic handoff of\n\
             floors, instance state, reply cache, documents and routes.\n\
             `failed` must be 0 and `executions` must equal calls exactly:\n\
             unlike a crash, a planned move never resets state."
        );
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, rebalance_json(&points, &cfg, transport_name)) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        return;
    }

    if let Some(kill) = kill_shard {
        if kill >= shards {
            eprintln!("--kill-shard {kill} out of range for --shards {shards}");
            std::process::exit(2);
        }
        let cfg = KillShardConfig {
            calls: calls.max(40),
            shards,
            kill_shard: kill,
            transport,
            seed,
        };
        let rates = [0.0, 0.2, 0.4];
        eprintln!(
            "kill-shard sweep: {} calls per point over {:?}, {} shards, \
             killing shard {} mid-sweep, fault plan seed {} ...",
            cfg.calls, transport, cfg.shards, cfg.kill_shard, cfg.seed
        );
        let points = run_kill_shard_sweep(&cfg, &rates);
        println!("{}", render_kill_shard(&points));
        println!(
            "One shard is killed between two client calls at a seeded point;\n\
             the router promotes its WAL-replicating follower, republishes\n\
             every class at version >= pre-crash, and clients reconverge via\n\
             ordinary refetches — `failover ms` is kill → first successful\n\
             call on a class the dead shard owned."
        );
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, kill_shard_json(&points, &cfg, transport_name)) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        return;
    }

    let cfg = ChaosConfig {
        calls,
        transport,
        seed,
        non_idempotent,
    };
    let rates = [0.0, 0.1, 0.2, 0.3, 0.4];
    eprintln!(
        "sweeping {} {} calls per point over {:?}, fault plan seed {} ...",
        cfg.calls,
        if non_idempotent {
            "non-idempotent"
        } else {
            "idempotent"
        },
        transport,
        cfg.seed
    );
    let points = run_chaos_sweep(&cfg, &rates);
    if non_idempotent {
        println!("{}", render_chaos_exactly_once(&points));
        println!(
            "Every acknowledged call executed exactly once: the client\n\
             retries all calls under the server's advertised reply cache,\n\
             and redelivered call IDs are answered from the cache without\n\
             re-executing (the `dups suppressed` column)."
        );
    } else {
        println!("{}", render_chaos(&points));
        println!(
            "Success below 100% at high fault rates means the retry budget\n\
             (not the server) was exhausted; retries grow with the fault rate\n\
             while the zero-fault row doubles as the no-chaos RTT baseline."
        );
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, chaos_json(&points, transport_name, non_idempotent)) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
