//! Regenerates **Table 1** (RTT for SDE vs. static servers) and evaluates
//! the §7 ≤ 25 % overhead claim; `--sweep` adds the payload-size sweep
//! explaining the SOAP-vs-CORBA ordering.
//!
//! Usage: `table1 [calls] [tcp|mem] [--sweep] [--stages] [--obs-overhead]
//! [--trace-overhead] [--trace-waterfall] [--json <path>]` — defaults to
//! 100 calls (as in the paper) over TCP loopback. `--stages` appends the
//! obs-derived per-stage latency breakdown; `--obs-overhead` compares
//! RTT with instrumentation off vs. on; `--trace-overhead` compares the
//! traced cde client path with span recording off vs. on;
//! `--trace-waterfall` prints the slowest tail-sampled trace as a span
//! waterfall; `--json` additionally writes the run (rows + stages +
//! overheads) as a machine-readable report for CI trending.

use bench::json::{table1_json, take_json_arg};

// Count every heap allocation so Table 1 can report allocations per
// steady-state call alongside RTT (the zero-allocation wire-path gate).
#[global_allocator]
static ALLOC: bench::alloc::CountingAllocator = bench::alloc::CountingAllocator;
use bench::rtt::{
    measure_obs_overhead, measure_sde_soap_with_breakdown, measure_trace_overhead, render,
    render_breakdown, render_obs_overhead, render_sweep, render_trace_overhead, run_payload_sweep,
    run_table1, RttConfig,
};
use sde::TransportKind;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (json_path, args) = take_json_arg(&raw);
    let sweep = args.iter().any(|a| a == "--sweep");
    let stages = args.iter().any(|a| a == "--stages");
    let obs_overhead = args.iter().any(|a| a == "--obs-overhead");
    let trace_overhead_flag = args.iter().any(|a| a == "--trace-overhead");
    let trace_waterfall = args.iter().any(|a| a == "--trace-waterfall");
    let calls: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(100);
    let transport = if args.iter().any(|a| a == "mem") {
        TransportKind::Mem
    } else {
        TransportKind::Tcp
    };
    let cfg = RttConfig {
        calls,
        warmup: calls / 5 + 1,
        transport,
    };
    eprintln!(
        "measuring {} calls per configuration over {:?} ...",
        cfg.calls, transport
    );
    // Track OS-thread and reactor-connection peaks across the whole
    // run — the event-driven engine's fixed-thread claim in numbers.
    let sampler = bench::procinfo::PeakSampler::start();
    let table = run_table1(&cfg);
    println!("{}", render(&table));

    let mut breakdown = None;
    if stages {
        eprintln!("measuring per-stage breakdown ...");
        let (_, b) = measure_sde_soap_with_breakdown(&cfg);
        println!("{}", render_breakdown(&b));
        breakdown = Some(b);
    }

    let mut overhead = None;
    if obs_overhead {
        eprintln!("measuring instrumentation overhead (off vs. on) ...");
        let o = measure_obs_overhead(&cfg);
        println!("{}", render_obs_overhead(&o));
        overhead = Some(o);
    }

    let mut trace = None;
    if trace_overhead_flag || trace_waterfall {
        eprintln!("measuring tracing overhead on the cde client path (off vs. on) ...");
        let t = measure_trace_overhead(&cfg);
        println!("{}", render_trace_overhead(&t));
        trace = Some(t);
    }

    if trace_waterfall {
        // The slowest trace the tail sampler kept from the traced window.
        let retained = obs::tracectx::store().retained();
        match retained.iter().max_by_key(|t| t.root_duration_us) {
            Some(slowest) => {
                println!("Slowest tail-sampled trace:");
                println!("{}", obs::tracectx::render_waterfall(slowest));
            }
            None => println!("No tail-sampled traces retained in this window."),
        }
    }

    if sweep {
        eprintln!("running payload sweep ...");
        let points = run_payload_sweep(&cfg, &[16, 256, 4096, 65536]);
        println!("{}", render_sweep(&points));
        println!(
            "The XML path (SOAP) scales with payload much faster than binary\n\
             CDR (CORBA), which is why Table 1's SOAP rows are the slow ones."
        );
    }

    let runtime = sampler.stop();
    println!(
        "runtime: threads_peak={} concurrent_conns={}",
        runtime.threads_peak, runtime.concurrent_conns
    );

    if let Some(path) = json_path {
        let transport_name = match transport {
            TransportKind::Tcp => "tcp",
            TransportKind::Mem => "mem",
        };
        let doc = table1_json(
            &table,
            transport_name,
            breakdown.as_ref(),
            overhead.as_ref(),
            trace.as_ref(),
            Some(&runtime),
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
