//! Regenerates the **§5.7 rogue-client claim**: stale-method spam cannot
//! force needless interface generations.
//!
//! Usage: `rogue_client [calls] [edits]` — defaults to 200 calls, 3 edits.

use bench::rogue::{render, run};

fn main() {
    let mut args = std::env::args().skip(1);
    let calls: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let edits: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let report = run(calls, edits);
    println!("{}", render(&report));
}
