//! Regenerates **Figures 7 and 8**: the active-publishing race matrix and
//! the reactive-publishing (SDE+CDE joint algorithm) matrix — over both
//! technologies.

use bench::consistency::{render, run_active_matrix_over, run_reactive_matrix_over};
use sde::Technology;

fn main() {
    for technology in [Technology::Soap, Technology::Corba] {
        let active = run_active_matrix_over(technology);
        println!("{}", render(&active));
        println!(
            "consistent combinations: {:?}   [paper: (1,i), (1,ii), (2,ii)]\n",
            active.consistent_pairs()
        );

        let reactive = run_reactive_matrix_over(technology);
        println!("{}", render(&reactive));
        let all_ok = reactive.cells.iter().all(|c| c.consistent);
        println!(
            "recency guarantee for all {} combinations: {}   [paper: all meet the guarantee]\n",
            reactive.cells.len(),
            if all_ok { "HOLDS" } else { "VIOLATED" }
        );
    }
}
