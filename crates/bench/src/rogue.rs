//! The §5.7 rogue-client experiment.
//!
//! "Since publication is triggered only when the published interface is
//! out of date, this algorithm prevents a rogue client from overwhelming
//! the server by sending multiple calls to non-existent methods that
//! trigger IDL generation needlessly."
//!
//! The driver spams a live SDE server with stale-method calls and counts
//! how many interface generations actually run — it must stay O(edits),
//! not O(calls).

use std::time::Duration;

use cde::ClientEnvironment;
use jpie::expr::Expr;
use jpie::{MethodBuilder, TypeDesc, Value};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};
/// Results of a rogue-client run.
#[derive(Debug, Clone)]
pub struct RogueReport {
    /// Stale calls the rogue client fired.
    pub rogue_calls: u64,
    /// Live edits made during the run.
    pub edits: u64,
    /// Interface generations the publisher executed.
    pub generations: u64,
    /// Documents actually published.
    pub publications: u64,
    /// Stale notifications that reached the SDE manager.
    pub stale_notifications: u64,
}

/// Runs the experiment: `calls` stale invocations, with `edits` genuine
/// interface edits interleaved evenly.
pub fn run(calls: u64, edits: u64) -> RogueReport {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(5)),
        wal_dir: None,
    })
    .expect("manager");
    let class = jpie::ClassHandle::new("RogueTarget");
    class
        .add_method(
            MethodBuilder::new("real", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::lit(1)),
        )
        .expect("real method");
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let (gens_before, pubs_before, _, _) = server.publisher().metrics().snapshot();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let edit_every = if edits == 0 {
        u64::MAX
    } else {
        calls / (edits + 1) + 1
    };
    let mut edits_done = 0u64;
    for i in 0..calls {
        // The rogue call: a method that has never existed.
        let _ = stub.call_raw("no_such_method", &[Value::Int(i as i32)]);
        if i % edit_every == edit_every - 1 && edits_done < edits {
            class
                .add_method(
                    MethodBuilder::new(format!("evolve{edits_done}"), TypeDesc::Void)
                        .distributed(true),
                )
                .expect("edit");
            edits_done += 1;
        }
    }
    // Let pending stable-timeout publications drain.
    server.publisher().ensure_current();

    let (gens_after, pubs_after, _, _) = server.publisher().metrics().snapshot();
    let report = RogueReport {
        rogue_calls: calls,
        edits: edits_done,
        generations: gens_after - gens_before,
        publications: pubs_after - pubs_before,
        stale_notifications: manager.stale_notifications(),
    };
    manager.shutdown();
    report
}

/// Renders the report with the paper's claim evaluated.
pub fn render(report: &RogueReport) -> String {
    let mut out = String::from("Section 5.7: rogue-client resistance\n");
    out.push_str(&crate::render_table(
        &["metric", "value"],
        &[
            vec!["rogue stale calls".into(), report.rogue_calls.to_string()],
            vec!["live edits".into(), report.edits.to_string()],
            vec![
                "interface generations".into(),
                report.generations.to_string(),
            ],
            vec!["publications".into(), report.publications.to_string()],
            vec![
                "stale notifications".into(),
                report.stale_notifications.to_string(),
            ],
        ],
    ));
    let bound = 2 * (report.edits + 1);
    out.push_str(&format!(
        "\nClaim: generations stay O(edits), not O(calls) — {} generations for {} calls, {} edits: {}\n",
        report.generations,
        report.rogue_calls,
        report.edits,
        if report.generations <= bound { "HOLDS" } else { "VIOLATED" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spamming_does_not_multiply_generations() {
        let report = run(60, 2);
        assert_eq!(report.rogue_calls, 60);
        assert!(report.stale_notifications >= 1);
        // Generations bounded by edits, not by calls.
        assert!(report.generations <= 2 * (report.edits + 1), "{report:?}");
        assert!(report.generations < report.rogue_calls / 2, "{report:?}");
    }

    #[test]
    fn zero_edits_zero_generations_after_quiesce() {
        let report = run(40, 0);
        // Initial document already published before the spam started; the
        // spam itself must not trigger regeneration.
        assert!(report.generations <= 1, "{report:?}");
    }
}
