//! Application export: converting a live SDE server into a static one.
//!
//! §7 of the paper: "the performance overhead introduced by SDE is only
//! present during the development phase. At the end of the development
//! phase, the dynamic SDE server can be converted into a static SOAP or
//! CORBA server through JPie's built-in application export mechanism."
//!
//! Export snapshots the class's current *distributed interface* into a
//! fixed dispatch table (so later interface edits no longer affect the
//! deployed service) and routes each operation to the live instance's
//! method bodies. The exported server is a plain [`StaticSoapServer`] /
//! [`StaticCorbaServer`] with none of the development-time machinery —
//! exactly the class of server the Table 1 baselines measure.

use std::sync::Arc;

use corba::CorbaError;
use httpd::HttpError;
use jpie::{ClassHandle, Instance, SignatureView, Value};

use crate::{StaticCorbaServer, StaticSoapServer};

fn frozen_ops(class: &ClassHandle) -> Vec<SignatureView> {
    class.distributed_signatures()
}

fn install<BuilderOp>(signatures: &[SignatureView], instance: &Arc<Instance>, mut add: BuilderOp)
where
    BuilderOp: FnMut(&SignatureView, Box<crate::StaticOp>),
{
    for sig in signatures {
        let instance = instance.clone();
        let method = sig.name.clone();
        let arity = sig.params.len();
        let handler: Box<crate::StaticOp> = Box::new(move |args: &[Value]| {
            if args.len() != arity {
                return Err(format!(
                    "{method} expects {arity} argument(s), got {}",
                    args.len()
                ));
            }
            instance
                .invoke_distributed(&method, args)
                .map_err(|e| e.to_string())
        });
        add(sig, handler);
    }
}

/// Exports the current distributed interface of `class`, served by
/// `instance`, as a static SOAP server bound at `addr`.
///
/// # Errors
///
/// Fails if the endpoint cannot be bound.
///
/// # Examples
///
/// ```
/// use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
/// use jpie::expr::Expr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let class = ClassHandle::new("Done");
/// class.add_method(
///     MethodBuilder::new("twice", TypeDesc::Int)
///         .param("x", TypeDesc::Int)
///         .distributed(true)
///         .body_expr(Expr::param("x") * Expr::lit(2)),
/// )?;
/// let instance = std::sync::Arc::new(class.instantiate()?);
/// let server = baseline::export_soap(&class, &instance, "mem://doc-export")?;
/// let mut client = baseline::StaticSoapClient::from_wsdl_xml(&server.wsdl_xml())?;
/// assert_eq!(client.call("twice", &[Value::Int(21)])?, Value::Int(42));
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub fn export_soap(
    class: &ClassHandle,
    instance: &Arc<Instance>,
    addr: &str,
) -> Result<StaticSoapServer, HttpError> {
    let mut builder = StaticSoapServer::builder(&class.name());
    install(&frozen_ops(class), instance, |sig, handler| {
        builder.operation_boxed(
            &sig.name,
            sig.params
                .iter()
                .map(|(_, n, t)| (n.clone(), t.clone()))
                .collect(),
            sig.return_ty.clone(),
            handler,
        );
    });
    builder.bind(addr)
}

/// Exports the current distributed interface of `class` as a static CORBA
/// server bound at `addr` (see [`export_soap`]).
///
/// # Errors
///
/// Fails if the ORB endpoint cannot be bound.
pub fn export_corba(
    class: &ClassHandle,
    instance: &Arc<Instance>,
    addr: &str,
) -> Result<StaticCorbaServer, CorbaError> {
    let mut builder = StaticCorbaServer::builder(&class.name());
    install(&frozen_ops(class), instance, |sig, handler| {
        builder.operation_boxed(
            &sig.name,
            sig.params
                .iter()
                .map(|(_, n, t)| (n.clone(), t.clone()))
                .collect(),
            sig.return_ty.clone(),
            handler,
        );
    });
    builder.bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StaticCorbaClient, StaticSoapClient};
    use jpie::expr::Expr;
    use jpie::{MethodBuilder, TypeDesc};

    fn calc() -> (ClassHandle, Arc<Instance>) {
        let class = ClassHandle::new("Exported");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        class
            .add_method(MethodBuilder::new("secret", TypeDesc::Void))
            .unwrap();
        let instance = Arc::new(class.instantiate().unwrap());
        (class, instance)
    }

    #[test]
    fn exported_soap_serves_frozen_interface() {
        let (class, instance) = calc();
        let server = export_soap(&class, &instance, "mem://export-soap").unwrap();
        let wsdl = server.wsdl();
        // Only distributed methods are exported.
        assert_eq!(wsdl.operations.len(), 1);

        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();
        assert_eq!(
            client.call("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        server.shutdown();
    }

    #[test]
    fn exported_corba_serves_frozen_interface() {
        let (class, instance) = calc();
        let server = export_corba(&class, &instance, "mem://export-corba").unwrap();
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).unwrap();
        assert_eq!(
            client
                .call("add", &[Value::Int(40), Value::Int(2)])
                .unwrap(),
            Value::Int(42)
        );
        server.shutdown();
    }

    #[test]
    fn interface_edits_after_export_do_not_leak() {
        let (class, instance) = calc();
        let server = export_soap(&class, &instance, "mem://export-frozen").unwrap();
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();

        // Post-export interface growth is invisible to the static server.
        class
            .add_method(
                MethodBuilder::new("late", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::lit(9)),
            )
            .unwrap();
        let err = client.call("late", &[]).unwrap_err();
        assert!(err.contains("Non existent Method"), "{err}");

        // A rename makes the frozen table point at a missing method; the
        // static server reports it as an application-level error rather
        // than serving the renamed version.
        let add = class.find_method("add").unwrap();
        class.rename_method(add, "plus").unwrap();
        let err = client
            .call("add", &[Value::Int(1), Value::Int(1)])
            .unwrap_err();
        assert!(err.contains("no such method"), "{err}");
        server.shutdown();
    }
}
