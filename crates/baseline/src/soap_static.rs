//! The Axis/Tomcat-style static Web Service and static Axis-style client.

use std::collections::HashMap;
use std::sync::Arc;

use httpd::{Connection, HttpClient, HttpError, HttpServer, Request, Response, Status};
use jpie::{TypeDesc, Value};
use soap::{decode_request, SoapError, SoapFault, SoapResponse, WsdlDocument, WsdlOperation};

use crate::StaticOp;

struct OpEntry {
    params: Vec<(String, TypeDesc)>,
    return_ty: TypeDesc,
    handler: Box<StaticOp>,
}

/// Builder for a [`StaticSoapServer`].
pub struct StaticSoapServerBuilder {
    service_name: String,
    ops: HashMap<String, OpEntry>,
}

impl std::fmt::Debug for StaticSoapServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticSoapServerBuilder")
            .field("service_name", &self.service_name)
            .field("operations", &self.ops.len())
            .finish()
    }
}

impl StaticSoapServerBuilder {
    /// Registers an operation with its (fixed) signature and handler.
    pub fn operation<F>(
        &mut self,
        name: &str,
        params: Vec<(String, TypeDesc)>,
        return_ty: TypeDesc,
        handler: F,
    ) -> &mut Self
    where
        F: Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    {
        self.ops.insert(
            name.to_string(),
            OpEntry {
                params,
                return_ty,
                handler: Box::new(handler),
            },
        );
        self
    }

    /// Registers an operation whose handler is already boxed (used by the
    /// application-export path, [`crate::export_soap`]).
    pub fn operation_boxed(
        &mut self,
        name: &str,
        params: Vec<(String, TypeDesc)>,
        return_ty: TypeDesc,
        handler: Box<crate::StaticOp>,
    ) -> &mut Self {
        self.ops.insert(
            name.to_string(),
            OpEntry {
                params,
                return_ty,
                handler,
            },
        );
        self
    }

    /// Binds the endpoint and starts serving.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint cannot be bound.
    pub fn bind(self, addr: &str) -> Result<StaticSoapServer, HttpError> {
        let ops = Arc::new(self.ops);
        let service_name = self.service_name;
        let handler_ops = ops.clone();
        let namespace = format!("urn:{service_name}");
        let handler_ns = namespace.clone();
        let http = HttpServer::bind(addr, move |req: &Request| {
            handle(req, &handler_ops, &handler_ns)
        })?;
        let endpoint = format!("{}/{}", http.base_url(), service_name);
        Ok(StaticSoapServer {
            service_name,
            ops,
            http,
            endpoint,
        })
    }
}

fn handle(req: &Request, ops: &HashMap<String, OpEntry>, _namespace: &str) -> Response {
    let soap_req = match decode_request(&req.body_str()) {
        Ok(r) => r,
        Err(e) => {
            return fault(&SoapFault::malformed_request(e.to_string()));
        }
    };
    let Some(entry) = ops.get(soap_req.method()) else {
        return fault(&SoapFault::non_existent_method(soap_req.method()));
    };
    if soap_req.args().len() != entry.params.len() {
        return fault(&SoapFault::non_existent_method(soap_req.method()));
    }
    let args: Vec<Value> = soap_req.args().iter().map(|(_, v)| v.clone()).collect();
    match (entry.handler)(&args) {
        Ok(v) => {
            // Encode straight into the response body — no String
            // round-trip on the reply hot path.
            let mut body = Vec::with_capacity(256);
            soap::encode_ok_into(soap_req.method(), soap_req.namespace(), &v, &mut body);
            Response::ok(body, "text/xml")
        }
        Err(msg) => fault(&SoapFault::application_exception(msg)),
    }
}

fn fault(f: &SoapFault) -> Response {
    let mut body = Vec::with_capacity(256);
    soap::encode_fault_into(f, &mut body);
    Response::new(Status::INTERNAL_SERVER_ERROR, body, "text/xml")
}

/// A static Web Service: fixed dispatch table, fixed WSDL — the
/// "Axis-Tomcat" row of Table 1.
pub struct StaticSoapServer {
    service_name: String,
    ops: Arc<HashMap<String, OpEntry>>,
    http: HttpServer,
    endpoint: String,
}

impl std::fmt::Debug for StaticSoapServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticSoapServer")
            .field("service_name", &self.service_name)
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl StaticSoapServer {
    /// Starts a builder for a service named `service_name`.
    pub fn builder(service_name: &str) -> StaticSoapServerBuilder {
        StaticSoapServerBuilder {
            service_name: service_name.to_string(),
            ops: HashMap::new(),
        }
    }

    /// The SOAP endpoint URL.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The (fixed) WSDL document for this service.
    pub fn wsdl(&self) -> WsdlDocument {
        let mut operations: Vec<WsdlOperation> = self
            .ops
            .iter()
            .map(|(name, entry)| WsdlOperation {
                name: name.clone(),
                params: entry.params.clone(),
                return_ty: entry.return_ty.clone(),
            })
            .collect();
        operations.sort_by(|a, b| a.name.cmp(&b.name));
        WsdlDocument {
            service_name: self.service_name.clone(),
            endpoint: self.endpoint.clone(),
            operations,
            version: 0,
        }
    }

    /// The WSDL document as XML.
    pub fn wsdl_xml(&self) -> String {
        self.wsdl().to_xml()
    }

    /// Stops serving.
    pub fn shutdown(&self) {
        self.http.shutdown();
    }
}

/// A static SOAP client: compiles the WSDL once and keeps one HTTP
/// connection alive — the "Axis client" of Table 1.
#[derive(Debug)]
pub struct StaticSoapClient {
    wsdl: WsdlDocument,
    namespace: String,
    /// Request path, split from the endpoint once at compile time.
    path: String,
    /// Encode buffer recycled through the request body and back: a
    /// warm call serializes its envelope without allocating.
    encode_buf: Vec<u8>,
    connection: Connection,
}

impl StaticSoapClient {
    /// Builds a client from a WSDL document in XML form.
    ///
    /// # Errors
    ///
    /// Fails if the WSDL is malformed or the endpoint is unreachable.
    pub fn from_wsdl_xml(xml: &str) -> Result<StaticSoapClient, SoapError> {
        let wsdl = WsdlDocument::parse(xml)?;
        Self::from_wsdl(wsdl)
    }

    /// Builds a client from a parsed WSDL document.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint is unreachable.
    pub fn from_wsdl(wsdl: WsdlDocument) -> Result<StaticSoapClient, SoapError> {
        let connection = HttpClient::new()
            .connect(&wsdl.endpoint)
            .map_err(|e| SoapError::Malformed(format!("connect: {e}")))?;
        Ok(StaticSoapClient {
            namespace: wsdl.namespace(),
            path: path_of(&wsdl.endpoint),
            encode_buf: Vec::new(),
            wsdl,
            connection,
        })
    }

    /// The compiled WSDL.
    pub fn wsdl(&self) -> &WsdlDocument {
        &self.wsdl
    }

    /// Invokes `method` with positional `args` over the persistent
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns an error string for faults and transport failures (static
    /// clients have no live-update recovery — that is the point).
    pub fn call(&mut self, method: &str, args: &[Value]) -> Result<Value, String> {
        let mut body = std::mem::take(&mut self.encode_buf);
        match self.wsdl.operation(method) {
            Some(op) if op.params.len() >= args.len() => {
                soap::encode_request_into(
                    &self.namespace,
                    method,
                    op.params.iter().map(|(n, _)| n.as_str()).zip(args),
                    &mut body,
                );
            }
            op => {
                // Unknown method or too few named parameters: fall back
                // to positional names.
                let names: Vec<String> = (0..args.len()).map(|i| format!("arg{i}")).collect();
                soap::encode_request_into(
                    &self.namespace,
                    method,
                    args.iter().enumerate().map(|(i, v)| {
                        let name = op
                            .and_then(|o| o.params.get(i))
                            .map_or(names[i].as_str(), |(n, _)| n.as_str());
                        (name, v)
                    }),
                    &mut body,
                );
            }
        }
        let req = httpd::Request::post(self.path.clone(), body, "text/xml");
        let sent = self.connection.send(&req);
        self.encode_buf = req.into_body();
        let resp = sent.map_err(|e| format!("transport: {e}"))?;
        match soap::decode_response(&resp.body_str()).map_err(|e| e.to_string())? {
            SoapResponse::Ok(v) => Ok(v),
            SoapResponse::Fault(f) => Err(f.to_string()),
        }
    }
}

fn path_of(url: &str) -> String {
    url.find("://")
        .and_then(|i| url[i + 3..].find('/').map(|j| url[i + 3 + j..].to_string()))
        .unwrap_or_else(|| "/".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(tag: &str) -> StaticSoapServer {
        let mut b = StaticSoapServer::builder("Calc");
        b.operation(
            "add",
            vec![("a".into(), TypeDesc::Int), ("b".into(), TypeDesc::Int)],
            TypeDesc::Int,
            |args| match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
                _ => Err("bad types".into()),
            },
        );
        b.operation("fail", vec![], TypeDesc::Void, |_| Err("nope".into()));
        b.bind(&format!("mem://static-soap-{tag}")).unwrap()
    }

    #[test]
    fn call_roundtrip() {
        let server = server("rt");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();
        assert_eq!(
            client.call("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        // Connection is persistent: a second call reuses it.
        assert_eq!(
            client.call("add", &[Value::Int(4), Value::Int(5)]).unwrap(),
            Value::Int(9)
        );
        server.shutdown();
    }

    #[test]
    fn wsdl_lists_operations() {
        let server = server("wsdl");
        let wsdl = server.wsdl();
        assert_eq!(wsdl.operations.len(), 2);
        assert!(wsdl.operation("add").is_some());
        server.shutdown();
    }

    #[test]
    fn unknown_method_faults() {
        let server = server("missing");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();
        let err = client.call("ghost", &[]).unwrap_err();
        assert!(err.contains("Non existent Method"), "{err}");
        server.shutdown();
    }

    #[test]
    fn handler_error_becomes_fault() {
        let server = server("apperr");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();
        let err = client.call("fail", &[]).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        server.shutdown();
    }

    #[test]
    fn arity_mismatch_faults() {
        let server = server("arity");
        let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml()).unwrap();
        assert!(client.call("add", &[Value::Int(1)]).is_err());
        server.shutdown();
    }

    #[test]
    fn path_extraction() {
        assert_eq!(path_of("mem://x/Calc"), "/Calc");
        assert_eq!(path_of("tcp://1.2.3.4:5/a/b"), "/a/b");
        assert_eq!(path_of("mem://bare"), "/");
    }
}
