//! The static OpenORB-style CORBA server and client.

use std::collections::HashMap;
use std::sync::Arc;

use corba::{
    CorbaError, DynamicImplementation, IdlInterface, IdlModule, IdlOperation, Ior, OrbConnection,
    ServerOrb, ServerRequest,
};
use jpie::{TypeDesc, Value};

use crate::StaticOp;

struct OpEntry {
    params: Vec<(String, TypeDesc)>,
    return_ty: TypeDesc,
    handler: Box<StaticOp>,
}

/// Builder for a [`StaticCorbaServer`].
pub struct StaticCorbaServerBuilder {
    name: String,
    ops: HashMap<String, OpEntry>,
}

impl std::fmt::Debug for StaticCorbaServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticCorbaServerBuilder")
            .field("name", &self.name)
            .field("operations", &self.ops.len())
            .finish()
    }
}

impl StaticCorbaServerBuilder {
    /// Registers an operation with its signature and handler.
    pub fn operation<F>(
        &mut self,
        name: &str,
        params: Vec<(String, TypeDesc)>,
        return_ty: TypeDesc,
        handler: F,
    ) -> &mut Self
    where
        F: Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    {
        self.ops.insert(
            name.to_string(),
            OpEntry {
                params,
                return_ty,
                handler: Box::new(handler),
            },
        );
        self
    }

    /// Registers an operation whose handler is already boxed (used by the
    /// application-export path, [`crate::export_corba`]).
    pub fn operation_boxed(
        &mut self,
        name: &str,
        params: Vec<(String, TypeDesc)>,
        return_ty: TypeDesc,
        handler: Box<crate::StaticOp>,
    ) -> &mut Self {
        self.ops.insert(
            name.to_string(),
            OpEntry {
                params,
                return_ty,
                handler,
            },
        );
        self
    }

    /// Initializes the server ORB at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint cannot be bound.
    pub fn bind(self, addr: &str) -> Result<StaticCorbaServer, CorbaError> {
        let ops = Arc::new(self.ops);
        let skeleton = StaticSkeleton { ops: ops.clone() };
        let type_id = format!("IDL:{}:1.0", self.name);
        let orb = ServerOrb::init(addr, &type_id, skeleton)?;
        Ok(StaticCorbaServer {
            name: self.name,
            ops,
            orb,
        })
    }
}

/// The static skeleton: a fixed dispatch table behind the DSI entry point
/// (a real static skeleton would be generated code; the dispatch cost is
/// equivalent).
struct StaticSkeleton {
    ops: Arc<HashMap<String, OpEntry>>,
}

impl DynamicImplementation for StaticSkeleton {
    fn invoke(&self, request: &mut ServerRequest) {
        let Some(entry) = self.ops.get(request.operation()) else {
            request.set_exception(CorbaError::non_existent_method(request.operation()));
            return;
        };
        if request.arguments().len() != entry.params.len() {
            request.set_exception(CorbaError::system(
                corba::SystemExceptionKind::BadParam,
                format!(
                    "{} expects {} arguments",
                    request.operation(),
                    entry.params.len()
                ),
            ));
            return;
        }
        match (entry.handler)(request.arguments()) {
            Ok(v) => request.set_result(v),
            Err(msg) => request.set_exception(CorbaError::user_exception(msg)),
        }
    }
}

/// A static CORBA server: the "OpenORB" row of Table 1.
pub struct StaticCorbaServer {
    name: String,
    ops: Arc<HashMap<String, OpEntry>>,
    orb: ServerOrb,
}

impl std::fmt::Debug for StaticCorbaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticCorbaServer")
            .field("name", &self.name)
            .field("ior", &self.orb.ior().address)
            .finish_non_exhaustive()
    }
}

impl StaticCorbaServer {
    /// Starts a builder for an interface named `name`.
    pub fn builder(name: &str) -> StaticCorbaServerBuilder {
        StaticCorbaServerBuilder {
            name: name.to_string(),
            ops: HashMap::new(),
        }
    }

    /// The server's IOR.
    pub fn ior(&self) -> Ior {
        self.orb.ior()
    }

    /// The (fixed) CORBA-IDL document.
    pub fn idl(&self) -> IdlModule {
        let mut operations: Vec<IdlOperation> = self
            .ops
            .iter()
            .map(|(name, entry)| IdlOperation {
                name: name.clone(),
                params: entry.params.clone(),
                return_ty: entry.return_ty.clone(),
            })
            .collect();
        operations.sort_by(|a, b| a.name.cmp(&b.name));
        IdlModule {
            name: self.name.clone(),
            interfaces: vec![IdlInterface {
                name: self.name.clone(),
                operations,
            }],
            version: 0,
        }
    }

    /// Stops the ORB.
    pub fn shutdown(&self) {
        self.orb.shutdown();
    }
}

/// A static CORBA client holding a persistent IIOP connection — the
/// "OpenORB client" of Table 1.
#[derive(Debug)]
pub struct StaticCorbaClient {
    idl: IdlModule,
    connection: OrbConnection,
}

impl StaticCorbaClient {
    /// Connects using the IDL document and the server IOR (Fig 2 step 1).
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn connect(idl: IdlModule, ior: &Ior) -> Result<StaticCorbaClient, CorbaError> {
        let connection = OrbConnection::connect(ior)?;
        Ok(StaticCorbaClient { idl, connection })
    }

    /// The compiled IDL.
    pub fn idl(&self) -> &IdlModule {
        &self.idl
    }

    /// Invokes `operation` with positional `args`.
    ///
    /// # Errors
    ///
    /// Propagates server exceptions and transport failures.
    pub fn call(&mut self, operation: &str, args: &[Value]) -> Result<Value, CorbaError> {
        self.connection.call(operation, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(tag: &str) -> StaticCorbaServer {
        let mut b = StaticCorbaServer::builder("Calc");
        b.operation(
            "add",
            vec![("a".into(), TypeDesc::Int), ("b".into(), TypeDesc::Int)],
            TypeDesc::Int,
            |args| match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
                _ => Err("bad types".into()),
            },
        );
        b.bind(&format!("mem://static-corba-{tag}")).unwrap()
    }

    #[test]
    fn call_roundtrip() {
        let server = server("rt");
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).unwrap();
        assert_eq!(
            client.call("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            client.call("add", &[Value::Int(7), Value::Int(8)]).unwrap(),
            Value::Int(15)
        );
        server.shutdown();
    }

    #[test]
    fn idl_document_matches_registry() {
        let server = server("idl");
        let idl = server.idl();
        assert_eq!(idl.primary_interface().unwrap().operations.len(), 1);
        let text = idl.to_idl();
        assert!(text.contains("long add(in long a, in long b);"));
        server.shutdown();
    }

    #[test]
    fn unknown_operation_raises() {
        let server = server("missing");
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).unwrap();
        let err = client.call("ghost", &[]).unwrap_err();
        assert!(err.is_non_existent_method());
        server.shutdown();
    }

    #[test]
    fn handler_error_is_user_exception() {
        let mut b = StaticCorbaServer::builder("Errs");
        b.operation("boom", vec![], TypeDesc::Void, |_| Err("bad day".into()));
        let server = b.bind("mem://static-corba-apperr").unwrap();
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).unwrap();
        let err = client.call("boom", &[]).unwrap_err();
        assert!(matches!(err, CorbaError::User { message, .. } if message == "bad day"));
        server.shutdown();
    }

    #[test]
    fn arity_checked() {
        let server = server("arity");
        let mut client = StaticCorbaClient::connect(server.idl(), &server.ior()).unwrap();
        let err = client.call("add", &[Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            CorbaError::System(corba::SystemExceptionKind::BadParam, _)
        ));
        server.shutdown();
    }
}
