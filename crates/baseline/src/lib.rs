//! # baseline — static SOAP and CORBA comparators
//!
//! Table 1 of the paper compares the SDE servers against *static*
//! deployments: an Axis Web Service inside Tomcat and a static OpenORB
//! server, each driven by a static client. This crate provides those
//! comparators on the same substrates as SDE, but with everything the
//! live middleware adds stripped away: a fixed dispatch table instead of
//! a dynamic class, no DL Publisher, no stall lock, no interface
//! versioning. The RTT difference between these servers and the SDE ones
//! is therefore exactly the overhead §7 measures.
//!
//! # Examples
//!
//! ```
//! use baseline::{StaticSoapServer, StaticSoapClient};
//! use jpie::{TypeDesc, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut server = StaticSoapServer::builder("Echo");
//! server.operation(
//!     "echo",
//!     vec![("s".into(), TypeDesc::Str)],
//!     TypeDesc::Str,
//!     |args| Ok(args[0].clone()),
//! );
//! let server = server.bind("mem://doc-static-soap")?;
//!
//! let mut client = StaticSoapClient::from_wsdl_xml(&server.wsdl_xml())?;
//! let v = client.call("echo", &[Value::Str("hi".into())])?;
//! assert_eq!(v, Value::Str("hi".into()));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod corba_static;
mod export;
mod soap_static;

pub use corba_static::{StaticCorbaClient, StaticCorbaServer, StaticCorbaServerBuilder};
pub use export::{export_corba, export_soap};
pub use soap_static::{StaticSoapClient, StaticSoapServer, StaticSoapServerBuilder};

use jpie::Value;

/// A fixed server operation: positional arguments in, value or error
/// message out.
pub type StaticOp = dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static;
