//! Interoperable Object References and their stringified `IOR:` form.
//!
//! The paper's clients "must attain both a CORBA-IDL document as well as an
//! IOR in order to establish a communication link with a server" (§2.2);
//! SDE publishes the IOR through the Interface Server (§5.2.1). The
//! encoding follows the CORBA encapsulation scheme: a CDR stream holding
//! the repository id and one IIOP-style profile, hex-encoded behind the
//! `IOR:` prefix. The profile's host field carries a full transport
//! address (`tcp://...` or `mem://...`), so IORs work over both
//! transports.

use crate::cdr::{CdrReader, CdrWriter};
use crate::error::CorbaError;

const TAG_INTERNET_IOP: u32 = 0;

/// An Interoperable Object Reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ior {
    /// Repository id of the most derived interface, e.g. `IDL:Calc:1.0`.
    pub type_id: String,
    /// Transport address of the server ORB (`tcp://host:port` or
    /// `mem://name`).
    pub address: String,
    /// Key identifying the object within the server ORB.
    pub object_key: Vec<u8>,
}

impl Ior {
    /// Creates an IOR.
    pub fn new(
        type_id: impl Into<String>,
        address: impl Into<String>,
        object_key: impl Into<Vec<u8>>,
    ) -> Ior {
        Ior {
            type_id: type_id.into(),
            address: address.into(),
            object_key: object_key.into(),
        }
    }

    /// Encodes as the stringified `IOR:<hex>` form.
    pub fn to_ior_string(&self) -> String {
        let mut w = CdrWriter::new(true);
        w.write_string(&self.type_id);
        w.write_ulong(1); // one profile
        w.write_ulong(TAG_INTERNET_IOP);
        // Profile body as an encapsulation: byte-order octet + data.
        let mut profile = CdrWriter::new(true);
        profile.write_octet(0); // big-endian encapsulation
        profile.write_octet(1); // IIOP major
        profile.write_octet(0); // IIOP minor
        profile.write_string(&self.address);
        profile.write_ushort(0); // port folded into the address string
        profile.write_octet_seq(&self.object_key);
        w.write_octet_seq(&profile.into_bytes());
        let bytes = w.into_bytes();
        let mut out = String::with_capacity(4 + bytes.len() * 2);
        out.push_str("IOR:");
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Parses a stringified IOR.
    ///
    /// # Errors
    ///
    /// Returns [`CorbaError::BadIor`] if the prefix, hex, or structure is
    /// invalid.
    pub fn parse(s: &str) -> Result<Ior, CorbaError> {
        let hex = s
            .trim()
            .strip_prefix("IOR:")
            .ok_or_else(|| CorbaError::BadIor("missing IOR: prefix".into()))?;
        if hex.len() % 2 != 0 {
            return Err(CorbaError::BadIor("odd hex length".into()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| CorbaError::BadIor("invalid hex".into()))?;
            bytes.push(b);
        }
        let mut r = CdrReader::new(&bytes, true);
        let type_id = r
            .read_string()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let profile_count = r
            .read_ulong()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        if profile_count == 0 {
            return Err(CorbaError::BadIor("no profiles".into()));
        }
        let tag = r
            .read_ulong()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        if tag != TAG_INTERNET_IOP {
            return Err(CorbaError::BadIor(format!("unsupported profile tag {tag}")));
        }
        let body = r
            .read_octet_seq()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        // Peek the byte-order octet, then re-read the encapsulation from
        // its start so CDR alignment stays anchored correctly.
        let byte_order = *body
            .first()
            .ok_or_else(|| CorbaError::BadIor("empty profile".into()))?;
        let mut p = CdrReader::new(&body, byte_order == 0);
        let _order = p
            .read_octet()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let _major = p
            .read_octet()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let _minor = p
            .read_octet()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let address = p
            .read_string()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let _port = p
            .read_ushort()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        let object_key = p
            .read_octet_seq()
            .map_err(|e| CorbaError::BadIor(e.to_string()))?;
        Ok(Ior {
            type_id,
            address,
            object_key,
        })
    }
}

impl std::fmt::Display for Ior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ior_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ior = Ior::new("IDL:Calc:1.0", "tcp://127.0.0.1:4321", b"calc-1".to_vec());
        let s = ior.to_ior_string();
        assert!(s.starts_with("IOR:"));
        assert!(s[4..].chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(Ior::parse(&s).unwrap(), ior);
    }

    #[test]
    fn roundtrip_mem_address_and_empty_key() {
        let ior = Ior::new("IDL:Mail:1.0", "mem://mail-orb", Vec::new());
        assert_eq!(Ior::parse(&ior.to_ior_string()).unwrap(), ior);
    }

    #[test]
    fn parse_trims_whitespace() {
        let ior = Ior::new("IDL:X:1.0", "mem://x", b"k".to_vec());
        let s = format!("  {}\n", ior.to_ior_string());
        assert_eq!(Ior::parse(&s).unwrap(), ior);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Ior::parse("not an ior").is_err());
        assert!(Ior::parse("IOR:zz").is_err());
        assert!(Ior::parse("IOR:0").is_err());
        assert!(Ior::parse("IOR:00000001").is_err());
    }

    #[test]
    fn display_matches_string_form() {
        let ior = Ior::new("IDL:X:1.0", "mem://x", b"k".to_vec());
        assert_eq!(ior.to_string(), ior.to_ior_string());
    }
}
