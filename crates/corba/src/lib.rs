//! # corba — a CORBA-RMI substrate: IDL, CDR, GIOP/IIOP, IOR, ORBs
//!
//! The CORBA side of the reproduction, standing in for OpenORB (§2.2,
//! §5.2 of the paper). Implemented from scratch at the protocol level:
//!
//! * [`idl`] — the CORBA-IDL document model with a **generator** (the IDL
//!   Generator of §5.2) and a recursive-descent **parser** (the client's
//!   "IDL compiler", Fig 2),
//! * [`cdr`] — Common Data Representation marshalling with natural
//!   alignment and both byte orders,
//! * [`giop`] — GIOP 1.0 `Request`/`Reply` messages over any
//!   [`httpd::transport`] stream (IIOP when the transport is TCP),
//! * [`Ior`] — Interoperable Object References including the stringified
//!   `IOR:...` form the paper's Interface Server publishes,
//! * [`ServerOrb`] with the **Dynamic Skeleton Interface** — the paper
//!   uses DSI precisely so the server ORB need not be reinitialized when
//!   methods change (§5.2.2) — and [`DiiRequest`], the **Dynamic
//!   Invocation Interface** used by CDE (§2.3).
//!
//! # Examples
//!
//! ```
//! use corba::{DiiRequest, DynamicImplementation, ServerOrb, ServerRequest};
//! use jpie::Value;
//!
//! # fn main() -> Result<(), corba::CorbaError> {
//! struct Echo;
//! impl DynamicImplementation for Echo {
//!     fn invoke(&self, req: &mut ServerRequest) {
//!         let args = req.arguments().to_vec();
//!         req.set_result(args.into_iter().next().unwrap_or(Value::Null));
//!     }
//! }
//!
//! let orb = ServerOrb::init("mem://doc-orb", "IDL:Echo:1.0", Echo)?;
//! let ior = orb.ior();
//! let reply = DiiRequest::new(&ior, "echo")
//!     .arg(Value::Str("hi".into()))
//!     .invoke()?;
//! assert_eq!(reply, Value::Str("hi".into()));
//! orb.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod cdr;
mod error;
pub mod giop;
pub mod idl;
mod ior;
mod orb;
#[cfg(target_os = "linux")]
mod rorb;

pub use error::{CorbaError, SystemExceptionKind};
pub use idl::{IdlInterface, IdlModule, IdlOperation};
pub use ior::Ior;
pub use orb::{
    DiiRequest, DynamicImplementation, OrbConnection, OrbGate, ServerOrb, ServerRequest,
};
