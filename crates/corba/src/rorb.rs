//! The event-driven GIOP server engine: `tcp://` ORB connections as
//! reactor state machines.
//!
//! Mirrors `httpd`'s reactor engine: a blocking acceptor registers each
//! connection with the process-global [`reactor`] pool, GIOP frames are
//! reassembled incrementally from whatever bytes have arrived
//! ([`crate::giop::parse_frame_header`]), `LocateRequest`s are answered
//! inline on the reactor thread, and `Request`s hop to a bounded
//! dispatch pool where the [`DynamicImplementation`] runs. An idle
//! connection is a parked fd plus one idle-deadline timer — no thread,
//! matching the old per-connection `SERVER_IDLE_TIMEOUT` read timeout.

#![cfg(target_os = "linux")]

use std::any::Any;
use std::fmt;
use std::io::{self, Read, Write};
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use httpd::fault::{self, ChaosMode, FaultSide, Injected};
use httpd::transport::{Listener, Stream};
use reactor::{Action, Ctl, DispatchPool, EventSource, Interest, Readiness};

use crate::error::SystemExceptionKind;
use crate::giop::{
    decode_locate_request, parse_frame_header, write_locate_reply, write_reply_advertising,
    GiopBufs, LocateStatus, MsgType, ReplyBody, ReplyMessage,
};
use crate::orb::{
    giop_counters, request_reply, DynamicImplementation, OrbGate, SERVER_IDLE_TIMEOUT,
};

const READ_CHUNK: usize = 16 * 1024;

/// Reactor-engine state a [`crate::ServerOrb`] owns: the id its
/// connections are registered under and the handler pool.
pub(crate) struct ReactorState {
    pub(crate) server_id: u64,
    pub(crate) dispatch: Arc<DispatchPool>,
}

impl fmt::Debug for ReactorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReactorState")
            .field("server_id", &self.server_id)
            .finish_non_exhaustive()
    }
}

impl ReactorState {
    pub(crate) fn shutdown(&self) {
        reactor::pool().close_server(self.server_id);
        self.dispatch.shutdown();
    }
}

struct OrbShared {
    implementation: Arc<dyn DynamicImplementation>,
    served_key: Vec<u8>,
    dispatch: Arc<DispatchPool>,
    gate: Arc<OrbGate>,
}

/// Starts the reactor engine for a bound `tcp://` listener: spawns the
/// acceptor thread and the dispatch pool.
pub(crate) fn start(
    listener: Arc<Listener>,
    shutdown: Arc<AtomicBool>,
    implementation: Arc<dyn DynamicImplementation>,
    served_key: Vec<u8>,
    gate: Arc<OrbGate>,
) -> (ReactorState, JoinHandle<()>) {
    let label = listener.local_addr().to_string();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let dispatch = Arc::new(DispatchPool::new(
        &format!("orb-dispatch-{label}"),
        workers,
        64,
        Some(obs::registry().gauge_with("orb_dispatch_depth", &[("server", &label)])),
    ));
    let server_id = reactor::pool().allocate_server_id();
    let shared = Arc::new(OrbShared {
        implementation,
        served_key,
        dispatch: dispatch.clone(),
        gate,
    });
    let accept_thread = std::thread::Builder::new()
        .name("orb-accept".into())
        .spawn(move || accept_loop(&listener, &shutdown, &shared, server_id))
        .expect("spawn orb accept thread");
    (
        ReactorState {
            server_id,
            dispatch,
        },
        accept_thread,
    )
}

fn accept_loop(
    listener: &Listener,
    shutdown: &AtomicBool,
    shared: &Arc<OrbShared>,
    server_id: u64,
) {
    let Listener::Tcp(tcp) = listener else {
        return; // mem:// stays on the threaded engine
    };
    let label = listener.local_addr().to_string();
    while !shutdown.load(Ordering::SeqCst) {
        let stream = match tcp.accept() {
            Ok((s, _)) => {
                s.set_nodelay(true).ok();
                Stream::Tcp(s)
            }
            Err(_) => break,
        };
        if shutdown.load(Ordering::SeqCst) {
            stream.shutdown();
            break;
        }
        // Accept-side chaos: a Delay becomes a reactor timer, a
        // blackholed connection is parked off epoll (its reads block on
        // a condvar and must never run on a reactor thread).
        let mut stream = stream;
        let mut delay = None;
        if fault::active() {
            match fault::inject(&label, FaultSide::Accept) {
                Some(Injected::Refuse) => {
                    stream.shutdown();
                    continue;
                }
                Some(Injected::Delay(d)) => delay = Some(d),
                Some(Injected::Wrap(mode)) => stream = fault::wrap(stream, mode),
                None => {}
            }
        }
        if stream.set_nonblocking(true).is_err() {
            stream.shutdown();
            continue;
        }
        let blackholed = stream.chaos_mode() == Some(ChaosMode::Blackhole);
        let (state, interest, timeout) = if blackholed {
            (GState::Blackholed, Interest::None, None)
        } else if let Some(d) = delay {
            (GState::DelayedStart, Interest::None, Some(d))
        } else {
            (GState::Reading, Interest::Read, Some(SERVER_IDLE_TIMEOUT))
        };
        let conn = GiopConn {
            stream,
            shared: shared.clone(),
            server_id,
            state,
            inbuf: Vec::new(),
            bufs: GiopBufs::default(),
            out: Vec::new(),
        };
        reactor::pool()
            .next_handle()
            .register(Box::new(conn), interest, timeout);
    }
}

enum GState {
    /// Chaos delay pending; the timer transitions to `Reading`.
    DelayedStart,
    Reading,
    /// The servant is running on the dispatch pool.
    Dispatched,
    /// A reply frame in `out` is partially written.
    Writing {
        pos: usize,
    },
    /// Chaos blackhole: parked until shutdown sweeps it.
    Blackholed,
}

/// What a dispatch worker hands back through `resume`. The recycled
/// per-connection buffers ride along so a warm connection still
/// marshals without allocating.
enum GiopOutcome {
    Done {
        bufs: GiopBufs,
        out: Vec<u8>,
    },
    Pending {
        bufs: GiopBufs,
        out: Vec<u8>,
        pos: usize,
    },
    Failed,
}

struct GiopConn {
    stream: Stream,
    shared: Arc<OrbShared>,
    server_id: u64,
    state: GState,
    /// Accumulated frame bytes (recycled across requests).
    inbuf: Vec<u8>,
    /// Recycled marshalling buffers, loaned to the dispatch worker.
    bufs: GiopBufs,
    /// The reply frame being written, recycled like `bufs`.
    out: Vec<u8>,
}

/// Drains `buf[*pos..]` through a nonblocking writer. `Ok(true)` =
/// fully written, `Ok(false)` = `WouldBlock` with `pos` advanced.
fn drain_frame(stream: &mut Stream, buf: &[u8], pos: &mut usize) -> io::Result<bool> {
    while *pos < buf.len() {
        match stream.write(&buf[*pos..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
            Ok(n) => *pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

impl GiopConn {
    fn fill_inbuf(&mut self) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn run(&mut self, ctl: &mut Ctl<'_>) -> Action {
        loop {
            match self.state {
                GState::Reading => {
                    if self.inbuf.len() < 12 {
                        // Waiting for a frame header; the idle deadline
                        // replaces the old per-thread read timeout.
                        return Action::Rearm(Interest::Read, Some(SERVER_IDLE_TIMEOUT));
                    }
                    let header: [u8; 12] = self.inbuf[..12].try_into().expect("12 bytes");
                    let Ok((msg_type, big_endian, size)) = parse_frame_header(&header) else {
                        return Action::Close; // framing violation
                    };
                    let total = 12 + size;
                    if self.inbuf.len() < total {
                        return Action::Rearm(Interest::Read, Some(SERVER_IDLE_TIMEOUT));
                    }
                    match msg_type {
                        // CloseConnection, or protocol violations from
                        // a client (only servers send replies).
                        MsgType::CloseConnection | MsgType::Reply | MsgType::LocateReply => {
                            return Action::Close;
                        }
                        // Cheap and servant-free: answered inline on
                        // the reactor thread.
                        MsgType::LocateRequest => {
                            giop_counters().1.inc();
                            let Ok((request_id, key)) =
                                decode_locate_request(&self.inbuf[12..total], big_endian)
                            else {
                                return Action::Close;
                            };
                            let status = if key == self.shared.served_key {
                                LocateStatus::ObjectHere
                            } else {
                                LocateStatus::UnknownObject
                            };
                            self.inbuf.drain(..total);
                            self.out.clear();
                            if write_locate_reply(&mut self.out, request_id, status).is_err() {
                                return Action::Close;
                            }
                            self.state = GState::Writing { pos: 0 };
                        }
                        // Servant code may block: run it on the
                        // dispatch pool with the source suspended.
                        MsgType::Request => {
                            giop_counters().0.inc();
                            let Ok(writer) = self.stream.try_clone() else {
                                return Action::Close;
                            };
                            let body = self.inbuf[12..total].to_vec();
                            let shared = self.shared.clone();
                            let handle = ctl.handle();
                            let token = ctl.token();
                            let bufs = std::mem::take(&mut self.bufs);
                            let out = std::mem::take(&mut self.out);
                            let accepted = self.shared.dispatch.try_submit(move || {
                                let outcome =
                                    execute_request(&shared, &body, big_endian, writer, bufs, out);
                                handle.resume(token, Box::new(outcome));
                            });
                            if accepted {
                                self.inbuf.drain(..total);
                                self.state = GState::Dispatched;
                                return Action::Suspend;
                            }
                            // Dispatch queue saturated: answer with a
                            // retryable TRANSIENT instead of queueing
                            // unboundedly. The loaned buffers went down
                            // with the rejected closure; re-seed them.
                            self.bufs = GiopBufs::default();
                            self.out = Vec::new();
                            // The frame is still buffered (drained only
                            // on accept), so the shed reply can carry
                            // the real request id.
                            let request_id =
                                crate::giop::peek_request_id(&self.inbuf[12..total], big_endian)
                                    .unwrap_or(0);
                            self.inbuf.drain(..total);
                            let reply = ReplyMessage {
                                request_id,
                                body: ReplyBody::SystemException {
                                    kind: SystemExceptionKind::Transient,
                                    reason: "server busy".into(),
                                },
                            };
                            if write_reply_advertising(
                                &mut self.out,
                                &reply,
                                self.shared.implementation.caches_replies(),
                                &mut self.bufs,
                            )
                            .is_err()
                            {
                                return Action::Close;
                            }
                            self.state = GState::Writing { pos: 0 };
                        }
                    }
                }
                GState::Writing { pos } => {
                    let mut pos = pos;
                    let out = std::mem::take(&mut self.out);
                    let res = drain_frame(&mut self.stream, &out, &mut pos);
                    self.out = out;
                    match res {
                        Ok(true) => {
                            self.out.clear();
                            self.state = GState::Reading;
                            continue;
                        }
                        Ok(false) => {
                            self.state = GState::Writing { pos };
                            return Action::Rearm(Interest::Write, None);
                        }
                        Err(_) => return Action::Close,
                    }
                }
                GState::DelayedStart => {
                    self.state = GState::Reading;
                    continue;
                }
                GState::Dispatched | GState::Blackholed => return Action::Close,
            }
        }
    }
}

impl EventSource for GiopConn {
    fn fd(&self) -> RawFd {
        self.stream.raw_fd().unwrap_or(-1)
    }

    fn server_id(&self) -> u64 {
        self.server_id
    }

    fn on_ready(&mut self, ready: Readiness, ctl: &mut Ctl<'_>) -> Action {
        match self.state {
            GState::Reading => {
                if (ready.readable || ready.hangup) && !self.fill_inbuf() {
                    return Action::Close;
                }
                self.run(ctl)
            }
            GState::Writing { .. } => self.run(ctl),
            GState::DelayedStart | GState::Blackholed | GState::Dispatched => Action::Close,
        }
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Action {
        match self.state {
            GState::DelayedStart => {
                self.state = GState::Reading;
                self.run(ctl)
            }
            // Idle (or mid-frame) past the deadline: same outcome as
            // the old engine's read timeout — drop the connection.
            _ => Action::Close,
        }
    }

    fn on_resume(&mut self, payload: Box<dyn Any + Send>, ctl: &mut Ctl<'_>) -> Action {
        let Ok(outcome) = payload.downcast::<GiopOutcome>() else {
            return Action::Close;
        };
        match *outcome {
            GiopOutcome::Done { bufs, out } => {
                self.bufs = bufs;
                self.out = out;
                self.state = GState::Reading;
                // Pipelined frames may already be buffered.
                self.run(ctl)
            }
            GiopOutcome::Pending { bufs, out, pos } => {
                self.bufs = bufs;
                self.out = out;
                self.state = GState::Writing { pos };
                Action::Rearm(Interest::Write, None)
            }
            GiopOutcome::Failed => Action::Close,
        }
    }
}

/// Runs on a dispatch worker: servant invocation, reply marshalling,
/// and the first write attempt.
fn execute_request(
    shared: &Arc<OrbShared>,
    body: &[u8],
    big_endian: bool,
    mut writer: Stream,
    mut bufs: GiopBufs,
    mut out: Vec<u8>,
) -> GiopOutcome {
    let reply = request_reply(
        shared.implementation.as_ref(),
        &shared.served_key,
        body,
        big_endian,
        &shared.gate,
    );
    let advertise = shared.implementation.caches_replies();
    out.clear();
    if write_reply_advertising(&mut out, &reply, advertise, &mut bufs).is_err() {
        return GiopOutcome::Failed;
    }
    let mut pos = 0;
    match drain_frame(&mut writer, &out, &mut pos) {
        Ok(true) => GiopOutcome::Done { bufs, out },
        Ok(false) => GiopOutcome::Pending { bufs, out, pos },
        Err(_) => GiopOutcome::Failed,
    }
}
