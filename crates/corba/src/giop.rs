//! GIOP 1.0 message framing (IIOP when carried over TCP).
//!
//! Implements the two message types the RMI path needs — `Request` and
//! `Reply` — with the standard 12-byte header (`GIOP` magic, version,
//! byte-order flag, message type, body size). Arguments and results are
//! carried as the self-describing `any` encoding from [`crate::cdr`],
//! because both ends use the dynamic interfaces (DSI/DII): there are no
//! static stubs anywhere, just as in the paper's SDE/CDE pair.

use std::io::{Read, Write};

use jpie::Value;

use crate::cdr::{read_any, write_any, CdrReader, CdrWriter};
use crate::error::{CorbaError, SystemExceptionKind};

const MAGIC: &[u8; 4] = b"GIOP";
/// Maximum accepted message body (defensive bound against hostile sizes).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// Service-context id carrying the at-most-once call id ("SDE\x01" in
/// the vendor range; the payload is [`obs::callid::WIRE_LEN`] bytes,
/// client word then sequence word, both big-endian).
pub const CALL_ID_CONTEXT: u32 = 0x5344_4501;

/// Service-context id through which a reply advertises that the server
/// keeps a reply cache (payload: one octet, `1`). Clients treat its
/// presence as permission to retry non-idempotent calls under the same
/// call id.
pub const REPLY_CACHE_CONTEXT: u32 = 0x5344_4502;

/// Service-context id carrying the distributed-tracing context
/// ("SDE\x03"; the payload is [`obs::tracectx::WIRE_LEN`] bytes:
/// 16-byte trace id, 8-byte parent span id, 1 flag octet, big-endian).
pub const TRACE_CONTEXT: u32 = 0x5344_4503;

/// GIOP message types (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Client → server invocation.
    Request = 0,
    /// Server → client completion.
    Reply = 1,
    /// Client → server object-existence probe.
    LocateRequest = 3,
    /// Server → client probe answer.
    LocateReply = 4,
    /// Connection close notification.
    CloseConnection = 5,
}

impl MsgType {
    fn from_u8(v: u8) -> Option<MsgType> {
        Some(match v {
            0 => MsgType::Request,
            1 => MsgType::Reply,
            3 => MsgType::LocateRequest,
            4 => MsgType::LocateReply,
            5 => MsgType::CloseConnection,
            _ => return None,
        })
    }
}

/// Status carried by a LocateReply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateStatus {
    /// The server does not know the object key.
    UnknownObject,
    /// The object is served at this endpoint.
    ObjectHere,
}

impl LocateStatus {
    fn as_u32(self) -> u32 {
        match self {
            LocateStatus::UnknownObject => 0,
            LocateStatus::ObjectHere => 1,
        }
    }

    fn from_u32(v: u32) -> Option<LocateStatus> {
        Some(match v {
            0 => LocateStatus::UnknownObject,
            1 => LocateStatus::ObjectHere,
            _ => return None,
        })
    }
}

/// A decoded GIOP Request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMessage {
    /// Client-chosen id echoed in the reply.
    pub request_id: u32,
    /// False for `oneway` calls (not used by SDE, always true here).
    pub response_expected: bool,
    /// Object key from the target IOR.
    pub object_key: Vec<u8>,
    /// Operation (method) name.
    pub operation: String,
    /// Arguments in positional order.
    pub args: Vec<Value>,
    /// At-most-once call id from the [`CALL_ID_CONTEXT`] service
    /// context, if the client sent one.
    pub call_id: Option<obs::CallId>,
    /// Distributed-tracing context from the [`TRACE_CONTEXT`] service
    /// context, if the client sent one.
    pub trace: Option<obs::TraceContext>,
}

/// The status + payload of a GIOP Reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// `NO_EXCEPTION`: the operation's result value.
    NoException(Value),
    /// `USER_EXCEPTION`: repository id + message.
    UserException {
        /// Repository id of the exception.
        repository_id: String,
        /// Message carried with the exception.
        message: String,
    },
    /// `SYSTEM_EXCEPTION`: standard kind + reason.
    SystemException {
        /// Which standard exception.
        kind: SystemExceptionKind,
        /// Human-readable reason.
        reason: String,
    },
}

/// A decoded GIOP Reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMessage {
    /// Echo of the request id.
    pub request_id: u32,
    /// Status and payload.
    pub body: ReplyBody,
}

impl ReplyMessage {
    /// Converts the reply into the client-visible result.
    pub fn into_result(self) -> Result<Value, CorbaError> {
        match self.body {
            ReplyBody::NoException(v) => Ok(v),
            ReplyBody::UserException {
                repository_id,
                message,
            } => Err(CorbaError::User {
                repository_id,
                message,
            }),
            ReplyBody::SystemException { kind, reason } => Err(CorbaError::System(kind, reason)),
        }
    }
}

fn write_header(out: &mut Vec<u8>, msg_type: MsgType, body: &[u8]) {
    out.extend_from_slice(MAGIC);
    out.push(1); // GIOP major
    out.push(0); // GIOP minor
    out.push(0); // flags: big-endian
    out.push(msg_type as u8);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

/// Recyclable marshalling buffers for one GIOP endpoint.
///
/// The CDR body and the framed message need separate buffers (the
/// 12-byte GIOP header would wreck CDR's start-relative alignment if
/// the body were marshalled in place behind it), so a connection keeps
/// one of these and every message after warmup allocates nothing.
#[derive(Debug, Default)]
pub struct GiopBufs {
    body: Vec<u8>,
    frame: Vec<u8>,
}

/// Serializes and sends a Request.
///
/// # Errors
///
/// Propagates transport failures as [`CorbaError::Transport`].
pub fn write_request<W: Write>(w: &mut W, req: &RequestMessage) -> Result<(), CorbaError> {
    write_request_parts(
        w,
        req.request_id,
        req.response_expected,
        &req.object_key,
        &req.operation,
        &req.args,
        req.call_id,
        req.trace,
        &mut GiopBufs::default(),
    )
}

/// [`write_request`] with the fields passed by reference and the
/// marshalling buffers recycled — the client hot path, which avoids
/// both a [`RequestMessage`] (cloned key/operation/args) and fresh
/// body/frame allocations per call.
///
/// # Errors
///
/// Propagates transport failures as [`CorbaError::Transport`].
#[allow(clippy::too_many_arguments)]
pub fn write_request_parts<W: Write>(
    w: &mut W,
    request_id: u32,
    response_expected: bool,
    object_key: &[u8],
    operation: &str,
    args: &[Value],
    call_id: Option<obs::CallId>,
    trace: Option<obs::TraceContext>,
    bufs: &mut GiopBufs,
) -> Result<(), CorbaError> {
    let mut body = CdrWriter::with_buf(std::mem::take(&mut bufs.body), true);
    // Service context list: call id and/or trace context.
    body.write_ulong(u32::from(call_id.is_some()) + u32::from(trace.is_some()));
    if let Some(id) = call_id {
        body.write_ulong(CALL_ID_CONTEXT);
        body.write_octet_seq(&id.to_wire());
    }
    if let Some(ctx) = trace {
        body.write_ulong(TRACE_CONTEXT);
        body.write_octet_seq(&ctx.to_wire());
    }
    body.write_ulong(request_id);
    body.write_boolean(response_expected);
    body.write_octet_seq(object_key);
    body.write_string(operation);
    body.write_octet_seq(&[]); // principal (deprecated)
    body.write_ulong(args.len() as u32);
    for arg in args {
        write_any(&mut body, arg);
    }
    bufs.body = body.into_bytes();
    bufs.frame.clear();
    write_header(&mut bufs.frame, MsgType::Request, &bufs.body);
    w.write_all(&bufs.frame)?;
    w.flush()?;
    Ok(())
}

/// Serializes and sends a Reply.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_reply<W: Write>(w: &mut W, reply: &ReplyMessage) -> Result<(), CorbaError> {
    write_reply_with(w, reply, &mut GiopBufs::default())
}

/// [`write_reply`] with recycled marshalling buffers — the server hot
/// path (`serve_connection` keeps one [`GiopBufs`] per connection).
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_reply_with<W: Write>(
    w: &mut W,
    reply: &ReplyMessage,
    bufs: &mut GiopBufs,
) -> Result<(), CorbaError> {
    write_reply_advertising(w, reply, false, bufs)
}

/// [`write_reply_with`] that can additionally attach the
/// [`REPLY_CACHE_CONTEXT`] service context, telling the client this
/// server performs at-most-once reply caching.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_reply_advertising<W: Write>(
    w: &mut W,
    reply: &ReplyMessage,
    advertise_reply_cache: bool,
    bufs: &mut GiopBufs,
) -> Result<(), CorbaError> {
    let mut body = CdrWriter::with_buf(std::mem::take(&mut bufs.body), true);
    if advertise_reply_cache {
        body.write_ulong(1);
        body.write_ulong(REPLY_CACHE_CONTEXT);
        body.write_octet_seq(&[1]);
    } else {
        body.write_ulong(0); // empty service context list
    }
    body.write_ulong(reply.request_id);
    match &reply.body {
        ReplyBody::NoException(v) => {
            body.write_ulong(0);
            write_any(&mut body, v);
        }
        ReplyBody::UserException {
            repository_id,
            message,
        } => {
            body.write_ulong(1);
            body.write_string(repository_id);
            body.write_string(message);
        }
        ReplyBody::SystemException { kind, reason } => {
            body.write_ulong(2);
            body.write_string(&kind.repository_id());
            body.write_ulong(0); // minor code
            body.write_ulong(0); // completion status
            body.write_string(reason);
        }
    }
    bufs.body = body.into_bytes();
    bufs.frame.clear();
    write_header(&mut bufs.frame, MsgType::Reply, &bufs.body);
    w.write_all(&bufs.frame)?;
    w.flush()?;
    Ok(())
}

/// Serializes and sends a LocateRequest.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_locate_request<W: Write>(
    w: &mut W,
    request_id: u32,
    object_key: &[u8],
) -> Result<(), CorbaError> {
    let mut body = CdrWriter::new(true);
    body.write_ulong(request_id);
    body.write_octet_seq(object_key);
    let mut frame = Vec::new();
    write_header(&mut frame, MsgType::LocateRequest, &body.into_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Decodes a LocateRequest body into `(request_id, object_key)`.
///
/// # Errors
///
/// `MARSHAL` on malformed bodies.
pub fn decode_locate_request(body: &[u8], big_endian: bool) -> Result<(u32, Vec<u8>), CorbaError> {
    let mut r = CdrReader::new(body, big_endian);
    let request_id = r.read_ulong()?;
    let object_key = r.read_octet_seq()?;
    Ok((request_id, object_key))
}

/// Serializes and sends a LocateReply.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_locate_reply<W: Write>(
    w: &mut W,
    request_id: u32,
    status: LocateStatus,
) -> Result<(), CorbaError> {
    let mut body = CdrWriter::new(true);
    body.write_ulong(request_id);
    body.write_ulong(status.as_u32());
    let mut frame = Vec::new();
    write_header(&mut frame, MsgType::LocateReply, &body.into_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Decodes a LocateReply body into `(request_id, status)`.
///
/// # Errors
///
/// `MARSHAL` on malformed bodies or unknown statuses.
pub fn decode_locate_reply(
    body: &[u8],
    big_endian: bool,
) -> Result<(u32, LocateStatus), CorbaError> {
    let mut r = CdrReader::new(body, big_endian);
    let request_id = r.read_ulong()?;
    let raw = r.read_ulong()?;
    let status = LocateStatus::from_u32(raw)
        .ok_or_else(|| CorbaError::system(SystemExceptionKind::Marshal, "bad locate status"))?;
    Ok((request_id, status))
}

/// Sends a CloseConnection message.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_close<W: Write>(w: &mut W) -> Result<(), CorbaError> {
    let mut frame = Vec::new();
    write_header(&mut frame, MsgType::CloseConnection, &[]);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one GIOP message: the type, raw body and byte order.
///
/// Returns `Ok(None)` on clean EOF before any header byte.
///
/// # Errors
///
/// `MARSHAL` on framing violations, [`CorbaError::Transport`] on I/O
/// failure mid-message.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<(MsgType, Vec<u8>, bool)>, CorbaError> {
    let mut body = Vec::new();
    Ok(read_message_into(r, &mut body)?.map(|(ty, be)| (ty, body, be)))
}

/// [`read_message`] reading the body into a caller-supplied buffer,
/// whose capacity is reused across messages. Returns the message type
/// and byte order; the body is left in `buf`.
///
/// # Errors
///
/// Same as [`read_message`].
pub fn read_message_into<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
) -> Result<Option<(MsgType, bool)>, CorbaError> {
    let mut header = [0u8; 12];
    // Read the first byte separately to distinguish clean EOF.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => header[0] = first[0],
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut header[1..])?;
    let (msg_type, big_endian, size) = parse_frame_header(&header)?;
    buf.clear();
    buf.resize(size, 0);
    r.read_exact(buf)?;
    Ok(Some((msg_type, big_endian)))
}

/// Validates a 12-byte GIOP frame header, returning the message type,
/// byte order (`true` = big-endian) and body size. The incremental
/// (reactor) server path uses this to reassemble frames from whatever
/// bytes have arrived so far; the blocking path goes through
/// [`read_message_into`].
///
/// # Errors
///
/// `MARSHAL` on bad magic, unsupported version/type, or an oversized
/// declared body.
pub fn parse_frame_header(header: &[u8; 12]) -> Result<(MsgType, bool, usize), CorbaError> {
    if &header[..4] != MAGIC {
        return Err(CorbaError::system(
            SystemExceptionKind::Marshal,
            "bad GIOP magic",
        ));
    }
    if header[4] != 1 {
        return Err(CorbaError::system(
            SystemExceptionKind::Marshal,
            format!("unsupported GIOP major version {}", header[4]),
        ));
    }
    let little_endian = header[6] & 1 == 1;
    let msg_type = MsgType::from_u8(header[7]).ok_or_else(|| {
        CorbaError::system(
            SystemExceptionKind::Marshal,
            format!("unsupported message type {}", header[7]),
        )
    })?;
    let size_bytes: [u8; 4] = header[8..12].try_into().expect("4 bytes");
    let size = if little_endian {
        u32::from_le_bytes(size_bytes)
    } else {
        u32::from_be_bytes(size_bytes)
    } as usize;
    if size > MAX_BODY {
        return Err(CorbaError::system(
            SystemExceptionKind::Marshal,
            format!("message size {size} exceeds limit"),
        ));
    }
    Ok((msg_type, !little_endian, size))
}

/// Reads just the request id from a Request body, skipping the service
/// contexts. The reactor engine's load-shed path uses this to answer a
/// saturated-queue `TRANSIENT` with the correct id without paying for a
/// full unmarshal.
///
/// # Errors
///
/// `MARSHAL` on malformed bodies.
pub fn peek_request_id(body: &[u8], big_endian: bool) -> Result<u32, CorbaError> {
    let mut r = CdrReader::new(body, big_endian);
    let ctx_count = r.read_ulong()?;
    for _ in 0..ctx_count {
        let _ = r.read_ulong()?;
        let _ = r.read_octet_seq()?;
    }
    r.read_ulong()
}

/// Decodes a Request body (as returned by [`read_message`]).
///
/// # Errors
///
/// `MARSHAL` on malformed bodies.
pub fn decode_request(body: &[u8], big_endian: bool) -> Result<RequestMessage, CorbaError> {
    let mut r = CdrReader::new(body, big_endian);
    let ctx_count = r.read_ulong()?;
    let mut call_id = None;
    let mut trace = None;
    for _ in 0..ctx_count {
        let id = r.read_ulong()?;
        let data = r.read_octet_seq()?;
        if id == CALL_ID_CONTEXT && call_id.is_none() {
            // A malformed payload is treated as absent: the call still
            // executes, just without duplicate suppression.
            call_id = obs::CallId::from_wire(&data);
        } else if id == TRACE_CONTEXT && trace.is_none() {
            // Likewise: a malformed trace context never fails the call.
            trace = obs::TraceContext::from_wire(&data);
        }
    }
    let request_id = r.read_ulong()?;
    let response_expected = r.read_boolean()?;
    let object_key = r.read_octet_seq()?;
    let operation = r.read_string()?;
    let _principal = r.read_octet_seq()?;
    let argc = r.read_ulong()? as usize;
    if argc > r.remaining() {
        return Err(CorbaError::system(
            SystemExceptionKind::Marshal,
            "argument count exceeds stream",
        ));
    }
    let mut args = Vec::with_capacity(argc.min(4096));
    for _ in 0..argc {
        args.push(read_any(&mut r)?);
    }
    Ok(RequestMessage {
        request_id,
        response_expected,
        object_key,
        operation,
        args,
        call_id,
        trace,
    })
}

/// Decodes a Reply body.
///
/// # Errors
///
/// `MARSHAL` on malformed bodies.
pub fn decode_reply(body: &[u8], big_endian: bool) -> Result<ReplyMessage, CorbaError> {
    decode_reply_flags(body, big_endian).map(|(reply, _)| reply)
}

/// [`decode_reply`] that also reports whether the server attached the
/// [`REPLY_CACHE_CONTEXT`] advertisement.
///
/// # Errors
///
/// `MARSHAL` on malformed bodies.
pub fn decode_reply_flags(
    body: &[u8],
    big_endian: bool,
) -> Result<(ReplyMessage, bool), CorbaError> {
    let mut r = CdrReader::new(body, big_endian);
    let ctx_count = r.read_ulong()?;
    let mut reply_cache_advertised = false;
    for _ in 0..ctx_count {
        let id = r.read_ulong()?;
        let data = r.read_octet_seq()?;
        if id == REPLY_CACHE_CONTEXT && data.first() == Some(&1) {
            reply_cache_advertised = true;
        }
    }
    let request_id = r.read_ulong()?;
    let status = r.read_ulong()?;
    let body = match status {
        0 => ReplyBody::NoException(read_any(&mut r)?),
        1 => ReplyBody::UserException {
            repository_id: r.read_string()?,
            message: r.read_string()?,
        },
        2 => {
            let repo_id = r.read_string()?;
            let _minor = r.read_ulong()?;
            let _completed = r.read_ulong()?;
            let reason = r.read_string()?;
            let kind = SystemExceptionKind::from_repository_id(&repo_id)
                .unwrap_or(SystemExceptionKind::Unknown);
            ReplyBody::SystemException { kind, reason }
        }
        other => {
            return Err(CorbaError::system(
                SystemExceptionKind::Marshal,
                format!("unknown reply status {other}"),
            ))
        }
    };
    Ok((ReplyMessage { request_id, body }, reply_cache_advertised))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpie::TypeDesc;

    fn roundtrip_request(req: &RequestMessage) -> RequestMessage {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        let mut cursor = &buf[..];
        let (ty, body, be) = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(ty, MsgType::Request);
        decode_request(&body, be).unwrap()
    }

    fn roundtrip_reply(reply: &ReplyMessage) -> ReplyMessage {
        let mut buf = Vec::new();
        write_reply(&mut buf, reply).unwrap();
        let mut cursor = &buf[..];
        let (ty, body, be) = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(ty, MsgType::Reply);
        decode_reply(&body, be).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = RequestMessage {
            request_id: 42,
            response_expected: true,
            object_key: b"calc".to_vec(),
            operation: "add".into(),
            args: vec![
                Value::Int(1),
                Value::Str("two".into()),
                Value::Seq(TypeDesc::Double, vec![Value::Double(3.0)]),
            ],
            call_id: None,
            trace: None,
        };
        assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn request_no_args() {
        let req = RequestMessage {
            request_id: 0,
            response_expected: true,
            object_key: Vec::new(),
            operation: "ping".into(),
            args: Vec::new(),
            call_id: None,
            trace: None,
        };
        assert_eq!(roundtrip_request(&req), req);
    }

    #[test]
    fn reply_roundtrips_all_statuses() {
        for body in [
            ReplyBody::NoException(Value::Long(99)),
            ReplyBody::NoException(Value::Null),
            ReplyBody::UserException {
                repository_id: "IDL:livermi/ServerException:1.0".into(),
                message: "kaboom".into(),
            },
            ReplyBody::SystemException {
                kind: SystemExceptionKind::BadOperation,
                reason: "Non existent Method: f".into(),
            },
        ] {
            let reply = ReplyMessage {
                request_id: 7,
                body: body.clone(),
            };
            assert_eq!(roundtrip_reply(&reply), reply);
        }
    }

    #[test]
    fn call_id_service_context_round_trips() {
        let id = obs::CallId {
            client: 0x0102_0304_0506_0708,
            seq: 99,
        };
        let req = RequestMessage {
            request_id: 5,
            response_expected: true,
            object_key: b"k".to_vec(),
            operation: "bump".into(),
            args: vec![Value::Int(3)],
            call_id: Some(id),
            trace: None,
        };
        let back = roundtrip_request(&req);
        assert_eq!(back.call_id, Some(id));
        assert_eq!(back, req);
    }

    #[test]
    fn trace_service_context_round_trips() {
        let ctx = obs::TraceContext {
            trace: obs::TraceId(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff),
            parent: obs::SpanId(0x0102_0304_0506_0708),
            flags: 1,
        };
        let req = RequestMessage {
            request_id: 6,
            response_expected: true,
            object_key: b"k".to_vec(),
            operation: "bump".into(),
            args: vec![Value::Int(3)],
            call_id: Some(obs::CallId {
                client: 0xaaaa_bbbb_cccc_dddd,
                seq: 1,
            }),
            trace: Some(ctx),
        };
        let back = roundtrip_request(&req);
        assert_eq!(back.trace, Some(ctx));
        assert_eq!(back, req);

        // Trace context alone (no call id) also rides.
        let only = RequestMessage {
            call_id: None,
            request_id: 7,
            ..req.clone()
        };
        assert_eq!(roundtrip_request(&only), only);
    }

    #[test]
    fn reply_cache_advertisement_round_trips() {
        let reply = ReplyMessage {
            request_id: 8,
            body: ReplyBody::NoException(Value::Int(1)),
        };
        for advertise in [false, true] {
            let mut buf = Vec::new();
            write_reply_advertising(&mut buf, &reply, advertise, &mut GiopBufs::default()).unwrap();
            let mut cursor = &buf[..];
            let (ty, body, be) = read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(ty, MsgType::Reply);
            let (decoded, advertised) = decode_reply_flags(&body, be).unwrap();
            assert_eq!(decoded, reply);
            assert_eq!(advertised, advertise);
        }
    }

    #[test]
    fn into_result_maps_statuses() {
        let ok = ReplyMessage {
            request_id: 1,
            body: ReplyBody::NoException(Value::Int(5)),
        };
        assert_eq!(ok.into_result().unwrap(), Value::Int(5));

        let user = ReplyMessage {
            request_id: 1,
            body: ReplyBody::UserException {
                repository_id: "IDL:x:1.0".into(),
                message: "m".into(),
            },
        };
        assert!(matches!(user.into_result(), Err(CorbaError::User { .. })));

        let sys = ReplyMessage {
            request_id: 1,
            body: ReplyBody::SystemException {
                kind: SystemExceptionKind::Transient,
                reason: "r".into(),
            },
        };
        assert!(matches!(
            sys.into_result(),
            Err(CorbaError::System(SystemExceptionKind::Transient, _))
        ));
    }

    #[test]
    fn clean_eof_returns_none() {
        let mut cursor = &b""[..];
        assert!(read_message(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = b"HTTP/1.1 200".to_vec();
        frame.extend_from_slice(&[0; 8]);
        let mut cursor = &frame[..];
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn truncated_body_is_error() {
        let req = RequestMessage {
            request_id: 1,
            response_expected: true,
            object_key: Vec::new(),
            operation: "op".into(),
            args: Vec::new(),
            call_id: None,
            trace: None,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let mut cursor = &buf[..buf.len() - 3];
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn hostile_message_size_rejected() {
        let mut frame = Vec::new();
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&[1, 0, 0, 0]);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = &frame[..];
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn close_connection_roundtrip() {
        let mut buf = Vec::new();
        write_close(&mut buf).unwrap();
        let mut cursor = &buf[..];
        let (ty, body, _) = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(ty, MsgType::CloseConnection);
        assert!(body.is_empty());
    }
}
