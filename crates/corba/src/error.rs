use std::error::Error;
use std::fmt;

/// CORBA system exception kinds used by this ORB (a subset of the OMG
/// standard minor-code-free set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemExceptionKind {
    /// `BAD_OPERATION` — the operation does not exist on the target. The
    /// CORBA analogue of the paper's "Non existent Method" condition.
    BadOperation,
    /// `BAD_PARAM` — argument count/type mismatch.
    BadParam,
    /// `MARSHAL` — CDR stream was malformed or truncated.
    Marshal,
    /// `OBJECT_NOT_EXIST` — object key did not resolve (e.g. the paper's
    /// "server not initialized" state on the CORBA side).
    ObjectNotExist,
    /// `NO_IMPLEMENT` — no servant registered.
    NoImplement,
    /// `TRANSIENT` — transport failure, retry may work.
    Transient,
    /// `UNKNOWN` — unclassified server-side failure.
    Unknown,
}

impl SystemExceptionKind {
    /// The OMG repository id (`IDL:omg.org/CORBA/<NAME>:1.0`).
    pub fn repository_id(self) -> String {
        format!("IDL:omg.org/CORBA/{}:1.0", self.name())
    }

    /// The exception's standard name.
    pub fn name(self) -> &'static str {
        match self {
            SystemExceptionKind::BadOperation => "BAD_OPERATION",
            SystemExceptionKind::BadParam => "BAD_PARAM",
            SystemExceptionKind::Marshal => "MARSHAL",
            SystemExceptionKind::ObjectNotExist => "OBJECT_NOT_EXIST",
            SystemExceptionKind::NoImplement => "NO_IMPLEMENT",
            SystemExceptionKind::Transient => "TRANSIENT",
            SystemExceptionKind::Unknown => "UNKNOWN",
        }
    }

    /// Parses a repository id back to a kind.
    pub fn from_repository_id(id: &str) -> Option<SystemExceptionKind> {
        let name = id
            .strip_prefix("IDL:omg.org/CORBA/")?
            .strip_suffix(":1.0")?;
        Some(match name {
            "BAD_OPERATION" => SystemExceptionKind::BadOperation,
            "BAD_PARAM" => SystemExceptionKind::BadParam,
            "MARSHAL" => SystemExceptionKind::Marshal,
            "OBJECT_NOT_EXIST" => SystemExceptionKind::ObjectNotExist,
            "NO_IMPLEMENT" => SystemExceptionKind::NoImplement,
            "TRANSIENT" => SystemExceptionKind::Transient,
            "UNKNOWN" => SystemExceptionKind::Unknown,
            _ => return None,
        })
    }
}

impl fmt::Display for SystemExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced by the CORBA substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum CorbaError {
    /// A CORBA system exception, with a human-readable reason.
    System(SystemExceptionKind, String),
    /// A user exception raised by the servant (the paper wraps server
    /// method exceptions "in a generic exception type", §5.2.3).
    User {
        /// Repository id of the user exception.
        repository_id: String,
        /// Message carried with it.
        message: String,
    },
    /// Malformed IDL text (parser) or unrepresentable model (generator).
    Idl(String),
    /// Malformed IOR string.
    BadIor(String),
    /// Transport-level failure.
    Transport(String),
}

impl CorbaError {
    /// Shorthand for a system exception.
    pub fn system(kind: SystemExceptionKind, reason: impl Into<String>) -> CorbaError {
        CorbaError::System(kind, reason.into())
    }

    /// The generic user exception this ORB wraps servant exceptions in.
    pub fn user_exception(message: impl Into<String>) -> CorbaError {
        CorbaError::User {
            repository_id: "IDL:livermi/ServerException:1.0".into(),
            message: message.into(),
        }
    }

    /// The CORBA analogue of the paper's "Non existent Method" error
    /// (§5.2.3 sends it when the wrapper logic finds the call invalid).
    pub fn non_existent_method(operation: &str) -> CorbaError {
        CorbaError::system(
            SystemExceptionKind::BadOperation,
            format!("Non existent Method: {operation}"),
        )
    }

    /// Whether this is the stale-method error that triggers the CDE update
    /// protocol.
    pub fn is_non_existent_method(&self) -> bool {
        matches!(self, CorbaError::System(SystemExceptionKind::BadOperation, m) if m.starts_with("Non existent Method"))
    }
}

impl fmt::Display for CorbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorbaError::System(kind, reason) => write!(f, "system exception {kind}: {reason}"),
            CorbaError::User {
                repository_id,
                message,
            } => write!(f, "user exception {repository_id}: {message}"),
            CorbaError::Idl(m) => write!(f, "idl error: {m}"),
            CorbaError::BadIor(m) => write!(f, "invalid ior: {m}"),
            CorbaError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl Error for CorbaError {}

impl From<httpd::HttpError> for CorbaError {
    fn from(e: httpd::HttpError) -> Self {
        CorbaError::Transport(e.to_string())
    }
}

impl From<std::io::Error> for CorbaError {
    fn from(e: std::io::Error) -> Self {
        CorbaError::Transport(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_id_roundtrip() {
        for kind in [
            SystemExceptionKind::BadOperation,
            SystemExceptionKind::BadParam,
            SystemExceptionKind::Marshal,
            SystemExceptionKind::ObjectNotExist,
            SystemExceptionKind::NoImplement,
            SystemExceptionKind::Transient,
            SystemExceptionKind::Unknown,
        ] {
            let id = kind.repository_id();
            assert_eq!(SystemExceptionKind::from_repository_id(&id), Some(kind));
        }
        assert_eq!(SystemExceptionKind::from_repository_id("IDL:x:1.0"), None);
    }

    #[test]
    fn non_existent_method_detection() {
        assert!(CorbaError::non_existent_method("op").is_non_existent_method());
        assert!(
            !CorbaError::system(SystemExceptionKind::BadOperation, "other")
                .is_non_existent_method()
        );
        assert!(!CorbaError::user_exception("x").is_non_existent_method());
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<CorbaError>();
    }
}
