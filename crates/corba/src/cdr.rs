//! Common Data Representation (CDR) marshalling.
//!
//! Implements GIOP 1.0 CDR: primitives aligned to their natural boundary
//! relative to the start of the stream, strings as
//! `ulong length (incl. NUL) + bytes + NUL`, sequences as
//! `ulong count + elements`, and both byte orders (the reader honours the
//! flag from the GIOP header).
//!
//! On top of the primitives, [`write_any`] / [`read_any`] marshal
//! [`jpie::Value`]s self-describingly (a simplified CORBA `any`: a
//! type-code tag followed by the data). The DSI/DII path of the paper
//! needs exactly this — neither side has static stubs.

use jpie::{StructValue, TypeDesc, Value};

use crate::error::{CorbaError, SystemExceptionKind};

/// Simplified type-code kinds used by the `any` encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
enum TcKind {
    Null = 0,
    Boolean = 1,
    Long = 2,     // 32-bit
    LongLong = 3, // 64-bit
    Float = 4,
    Double = 5,
    Char = 6,
    String = 7,
    Struct = 8,
    Sequence = 9,
}

impl TcKind {
    fn from_u32(v: u32) -> Option<TcKind> {
        Some(match v {
            0 => TcKind::Null,
            1 => TcKind::Boolean,
            2 => TcKind::Long,
            3 => TcKind::LongLong,
            4 => TcKind::Float,
            5 => TcKind::Double,
            6 => TcKind::Char,
            7 => TcKind::String,
            8 => TcKind::Struct,
            9 => TcKind::Sequence,
            _ => return None,
        })
    }
}

/// Marshal error helper.
fn marshal_err(msg: impl Into<String>) -> CorbaError {
    CorbaError::system(SystemExceptionKind::Marshal, msg.into())
}

/// A CDR output stream.
///
/// # Examples
///
/// ```
/// let mut w = corba::cdr::CdrWriter::new(true);
/// w.write_ulong(7);
/// w.write_string("op");
/// let bytes = w.into_bytes();
/// let mut r = corba::cdr::CdrReader::new(&bytes, true);
/// assert_eq!(r.read_ulong().unwrap(), 7);
/// assert_eq!(r.read_string().unwrap(), "op");
/// ```
#[derive(Debug)]
pub struct CdrWriter {
    buf: Vec<u8>,
    big_endian: bool,
}

impl CdrWriter {
    /// Creates a writer; `big_endian` selects the byte order (GIOP flag 0).
    pub fn new(big_endian: bool) -> CdrWriter {
        CdrWriter::with_buf(Vec::with_capacity(256), big_endian)
    }

    /// Creates a writer reusing `buf`'s capacity; previous contents are
    /// cleared. This is the recycling path of the GIOP framing layer —
    /// alignment is relative to the start of the stream, so the buffer
    /// must hold exactly one CDR stream at a time.
    pub fn with_buf(mut buf: Vec<u8>, big_endian: bool) -> CdrWriter {
        buf.clear();
        CdrWriter { buf, big_endian }
    }

    /// Byte order of this stream.
    pub fn big_endian(&self) -> bool {
        self.big_endian
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the marshalled bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn align(&mut self, boundary: usize) {
        let misalign = self.buf.len() % boundary;
        if misalign != 0 {
            for _ in 0..boundary - misalign {
                self.buf.push(0);
            }
        }
    }

    /// Writes a single octet.
    pub fn write_octet(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes raw bytes with no alignment or length prefix.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a boolean as one octet.
    pub fn write_boolean(&mut self, v: bool) {
        self.write_octet(u8::from(v));
    }

    /// Writes an unsigned short (align 2).
    pub fn write_ushort(&mut self, v: u16) {
        self.align(2);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a signed long — CORBA's 32-bit integer (align 4).
    pub fn write_long(&mut self, v: i32) {
        self.align(4);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes an unsigned long (align 4).
    pub fn write_ulong(&mut self, v: u32) {
        self.align(4);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a long long — 64-bit integer (align 8).
    pub fn write_longlong(&mut self, v: i64) {
        self.align(8);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes an IEEE single float (align 4).
    pub fn write_float(&mut self, v: f32) {
        self.align(4);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes an IEEE double float (align 8).
    pub fn write_double(&mut self, v: f64) {
        self.align(8);
        if self.big_endian {
            self.buf.extend_from_slice(&v.to_be_bytes());
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a string: `ulong length (incl. NUL), bytes, NUL`.
    pub fn write_string(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.write_ulong((bytes.len() + 1) as u32);
        self.buf.extend_from_slice(bytes);
        self.buf.push(0);
    }

    /// Writes an octet sequence: `ulong count, bytes`.
    pub fn write_octet_seq(&mut self, bytes: &[u8]) {
        self.write_ulong(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// A CDR input stream.
#[derive(Debug)]
pub struct CdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    big_endian: bool,
}

impl<'a> CdrReader<'a> {
    /// Creates a reader over `buf` with the given byte order.
    pub fn new(buf: &'a [u8], big_endian: bool) -> CdrReader<'a> {
        CdrReader {
            buf,
            pos: 0,
            big_endian,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn align(&mut self, boundary: usize) {
        let misalign = self.pos % boundary;
        if misalign != 0 {
            self.pos += boundary - misalign;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CorbaError> {
        if self.pos + n > self.buf.len() {
            return Err(marshal_err(format!(
                "truncated cdr stream: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one octet.
    ///
    /// # Errors
    ///
    /// `MARSHAL` on truncation (all readers share this contract).
    pub fn read_octet(&mut self) -> Result<u8, CorbaError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean octet.
    pub fn read_boolean(&mut self) -> Result<bool, CorbaError> {
        Ok(self.read_octet()? != 0)
    }

    /// Reads an unsigned short (align 2).
    pub fn read_ushort(&mut self) -> Result<u16, CorbaError> {
        self.align(2);
        let s: [u8; 2] = self.take(2)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            u16::from_be_bytes(s)
        } else {
            u16::from_le_bytes(s)
        })
    }

    /// Reads a signed 32-bit long (align 4).
    pub fn read_long(&mut self) -> Result<i32, CorbaError> {
        self.align(4);
        let s: [u8; 4] = self.take(4)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            i32::from_be_bytes(s)
        } else {
            i32::from_le_bytes(s)
        })
    }

    /// Reads an unsigned 32-bit long (align 4).
    pub fn read_ulong(&mut self) -> Result<u32, CorbaError> {
        self.align(4);
        let s: [u8; 4] = self.take(4)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            u32::from_be_bytes(s)
        } else {
            u32::from_le_bytes(s)
        })
    }

    /// Reads a 64-bit long long (align 8).
    pub fn read_longlong(&mut self) -> Result<i64, CorbaError> {
        self.align(8);
        let s: [u8; 8] = self.take(8)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            i64::from_be_bytes(s)
        } else {
            i64::from_le_bytes(s)
        })
    }

    /// Reads an IEEE single float (align 4).
    pub fn read_float(&mut self) -> Result<f32, CorbaError> {
        self.align(4);
        let s: [u8; 4] = self.take(4)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            f32::from_be_bytes(s)
        } else {
            f32::from_le_bytes(s)
        })
    }

    /// Reads an IEEE double float (align 8).
    pub fn read_double(&mut self) -> Result<f64, CorbaError> {
        self.align(8);
        let s: [u8; 8] = self.take(8)?.try_into().expect("exact take");
        Ok(if self.big_endian {
            f64::from_be_bytes(s)
        } else {
            f64::from_le_bytes(s)
        })
    }

    /// Reads a string.
    pub fn read_string(&mut self) -> Result<String, CorbaError> {
        let len = self.read_ulong()? as usize;
        if len == 0 {
            return Err(marshal_err("string with zero length (missing NUL)"));
        }
        let bytes = self.take(len)?;
        let (content, nul) = bytes.split_at(len - 1);
        if nul != [0] {
            return Err(marshal_err("string not NUL-terminated"));
        }
        String::from_utf8(content.to_vec()).map_err(|_| marshal_err("string is not valid UTF-8"))
    }

    /// Reads an octet sequence.
    pub fn read_octet_seq(&mut self) -> Result<Vec<u8>, CorbaError> {
        let len = self.read_ulong()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Self-describing `any` encoding of jpie Values
// ---------------------------------------------------------------------------

fn write_tc(w: &mut CdrWriter, kind: TcKind) {
    w.write_ulong(kind as u32);
}

/// Writes a type descriptor (used for empty-sequence element types).
fn write_typedesc(w: &mut CdrWriter, ty: &TypeDesc) {
    match ty {
        TypeDesc::Void => write_tc(w, TcKind::Null),
        TypeDesc::Bool => write_tc(w, TcKind::Boolean),
        TypeDesc::Int => write_tc(w, TcKind::Long),
        TypeDesc::Long => write_tc(w, TcKind::LongLong),
        TypeDesc::Float => write_tc(w, TcKind::Float),
        TypeDesc::Double => write_tc(w, TcKind::Double),
        TypeDesc::Char => write_tc(w, TcKind::Char),
        TypeDesc::Str => write_tc(w, TcKind::String),
        TypeDesc::Named(name) => {
            write_tc(w, TcKind::Struct);
            w.write_string(name);
        }
        TypeDesc::Seq(elem) => {
            write_tc(w, TcKind::Sequence);
            write_typedesc(w, elem);
        }
    }
}

fn read_typedesc(r: &mut CdrReader<'_>) -> Result<TypeDesc, CorbaError> {
    let tag = r.read_ulong()?;
    let kind = TcKind::from_u32(tag).ok_or_else(|| marshal_err(format!("bad typecode {tag}")))?;
    Ok(match kind {
        TcKind::Null => TypeDesc::Void,
        TcKind::Boolean => TypeDesc::Bool,
        TcKind::Long => TypeDesc::Int,
        TcKind::LongLong => TypeDesc::Long,
        TcKind::Float => TypeDesc::Float,
        TcKind::Double => TypeDesc::Double,
        TcKind::Char => TypeDesc::Char,
        TcKind::String => TypeDesc::Str,
        TcKind::Struct => TypeDesc::Named(r.read_string()?),
        TcKind::Sequence => TypeDesc::Seq(Box::new(read_typedesc(r)?)),
    })
}

/// Marshals a [`Value`] as a simplified CORBA `any` (type code + data).
pub fn write_any(w: &mut CdrWriter, value: &Value) {
    match value {
        Value::Null => write_tc(w, TcKind::Null),
        Value::Bool(b) => {
            write_tc(w, TcKind::Boolean);
            w.write_boolean(*b);
        }
        Value::Int(i) => {
            write_tc(w, TcKind::Long);
            w.write_long(*i);
        }
        Value::Long(l) => {
            write_tc(w, TcKind::LongLong);
            w.write_longlong(*l);
        }
        Value::Float(x) => {
            write_tc(w, TcKind::Float);
            w.write_float(*x);
        }
        Value::Double(x) => {
            write_tc(w, TcKind::Double);
            w.write_double(*x);
        }
        Value::Char(c) => {
            write_tc(w, TcKind::Char);
            // wchar as ulong code point: our IDL char covers Unicode.
            w.write_ulong(*c as u32);
        }
        Value::Str(s) => {
            write_tc(w, TcKind::String);
            w.write_string(s);
        }
        Value::Struct(s) => {
            write_tc(w, TcKind::Struct);
            w.write_string(&s.type_name);
            w.write_ulong(s.fields.len() as u32);
            for (name, v) in &s.fields {
                w.write_string(name);
                write_any(w, v);
            }
        }
        Value::Seq(elem, items) => {
            write_tc(w, TcKind::Sequence);
            write_typedesc(w, elem);
            w.write_ulong(items.len() as u32);
            for item in items {
                write_any(w, item);
            }
        }
    }
}

/// Unmarshals a value written by [`write_any`].
///
/// # Errors
///
/// `MARSHAL` system exception on truncation or a malformed type code.
pub fn read_any(r: &mut CdrReader<'_>) -> Result<Value, CorbaError> {
    let tag = r.read_ulong()?;
    let kind = TcKind::from_u32(tag).ok_or_else(|| marshal_err(format!("bad typecode {tag}")))?;
    Ok(match kind {
        TcKind::Null => Value::Null,
        TcKind::Boolean => Value::Bool(r.read_boolean()?),
        TcKind::Long => Value::Int(r.read_long()?),
        TcKind::LongLong => Value::Long(r.read_longlong()?),
        TcKind::Float => Value::Float(r.read_float()?),
        TcKind::Double => Value::Double(r.read_double()?),
        TcKind::Char => {
            let code = r.read_ulong()?;
            Value::Char(char::from_u32(code).ok_or_else(|| marshal_err("bad char code"))?)
        }
        TcKind::String => Value::Str(r.read_string()?),
        TcKind::Struct => {
            let type_name = r.read_string()?;
            let count = r.read_ulong()? as usize;
            if count > r.remaining() {
                return Err(marshal_err("struct field count exceeds stream"));
            }
            let mut s = StructValue::new(type_name);
            for _ in 0..count {
                let name = r.read_string()?;
                let v = read_any(r)?;
                s.fields.push((name, v));
            }
            Value::Struct(s)
        }
        TcKind::Sequence => {
            let elem = read_typedesc(r)?;
            let count = r.read_ulong()? as usize;
            if count > r.remaining() {
                return Err(marshal_err("sequence count exceeds stream"));
            }
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(read_any(r)?);
            }
            Value::Seq(elem, items)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_any(v: &Value, big_endian: bool) -> Value {
        let mut w = CdrWriter::new(big_endian);
        write_any(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, big_endian);
        let got = read_any(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "trailing bytes for {v:?}");
        got
    }

    #[test]
    fn alignment_is_natural() {
        let mut w = CdrWriter::new(true);
        w.write_octet(1); // pos 0
        w.write_long(2); // aligns to 4
        w.write_octet(3); // pos 8
        w.write_double(4.0); // aligns to 16
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[1..4], &[0, 0, 0], "padding after octet");

        let mut r = CdrReader::new(&bytes, true);
        assert_eq!(r.read_octet().unwrap(), 1);
        assert_eq!(r.read_long().unwrap(), 2);
        assert_eq!(r.read_octet().unwrap(), 3);
        assert_eq!(r.read_double().unwrap(), 4.0);
    }

    #[test]
    fn both_byte_orders() {
        for be in [true, false] {
            let mut w = CdrWriter::new(be);
            w.write_ushort(0x1234);
            w.write_long(-5);
            w.write_ulong(0xDEADBEEF);
            w.write_longlong(-1 << 40);
            w.write_float(1.5);
            w.write_double(-2.25);
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, be);
            assert_eq!(r.read_ushort().unwrap(), 0x1234);
            assert_eq!(r.read_long().unwrap(), -5);
            assert_eq!(r.read_ulong().unwrap(), 0xDEADBEEF);
            assert_eq!(r.read_longlong().unwrap(), -1 << 40);
            assert_eq!(r.read_float().unwrap(), 1.5);
            assert_eq!(r.read_double().unwrap(), -2.25);
        }
    }

    #[test]
    fn endianness_actually_differs() {
        let mut be = CdrWriter::new(true);
        be.write_ulong(1);
        let mut le = CdrWriter::new(false);
        le.write_ulong(1);
        assert_ne!(be.into_bytes(), le.into_bytes());
    }

    #[test]
    fn string_encoding_matches_cdr() {
        let mut w = CdrWriter::new(true);
        w.write_string("ab");
        let bytes = w.into_bytes();
        // ulong 3 (len incl NUL), 'a', 'b', NUL
        assert_eq!(bytes, vec![0, 0, 0, 3, b'a', b'b', 0]);
    }

    #[test]
    fn empty_string_roundtrip() {
        let mut w = CdrWriter::new(true);
        w.write_string("");
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, true);
        assert_eq!(r.read_string().unwrap(), "");
    }

    #[test]
    fn octet_seq_roundtrip() {
        let mut w = CdrWriter::new(true);
        w.write_octet_seq(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, true);
        assert_eq!(r.read_octet_seq().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn any_roundtrip_all_values() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Long(1 << 50),
            Value::Float(3.5),
            Value::Double(-0.125),
            Value::Char('\u{4e2d}'),
            Value::Str("hello".into()),
            Value::Struct(
                StructValue::new("Point")
                    .with("x", Value::Int(1))
                    .with("label", Value::Str("p".into())),
            ),
            Value::Seq(TypeDesc::Int, vec![Value::Int(1), Value::Int(2)]),
            Value::Seq(TypeDesc::Str, vec![]),
            Value::Seq(
                TypeDesc::Named("P".into()),
                vec![Value::Struct(StructValue::new("P"))],
            ),
        ];
        for v in values {
            for be in [true, false] {
                assert_eq!(roundtrip_any(&v, be), v, "be={be}");
            }
        }
    }

    #[test]
    fn truncated_stream_is_marshal_error() {
        let mut w = CdrWriter::new(true);
        write_any(&mut w, &Value::Str("hello".into()));
        let bytes = w.into_bytes();
        for cut in [1, 4, 6, bytes.len() - 1] {
            let mut r = CdrReader::new(&bytes[..cut], true);
            let err = read_any(&mut r).unwrap_err();
            assert!(
                matches!(err, CorbaError::System(SystemExceptionKind::Marshal, _)),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bogus_typecode_rejected() {
        let mut w = CdrWriter::new(true);
        w.write_ulong(999);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, true);
        assert!(read_any(&mut r).is_err());
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // Sequence claiming u32::MAX elements, then nothing.
        let mut w = CdrWriter::new(true);
        w.write_ulong(TcKind::Sequence as u32);
        w.write_ulong(TcKind::Long as u32);
        w.write_ulong(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, true);
        assert!(read_any(&mut r).is_err());
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = CdrWriter::new(true);
        w.write_ulong(3);
        w.write_raw(&[0xFF, 0xFE, 0x00]);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, true);
        assert!(r.read_string().is_err());
    }
}
