//! CORBA-IDL documents: model, generator, parser.
//!
//! Matches §2.2 of the paper: a `module` root element containing uniquely
//! identified `interface`s whose operation parameter/return types may be
//! `string`, the primitives `long`/`long long`/`double`/`float`/`char`/
//! `boolean`, `sequence<T>`, or any type declared by an interface (here:
//! `struct`) within the module. The generator stamps the dynamic class's
//! interface version in a `#pragma version` line, making the §6 recency
//! guarantee observable from the published document.

use std::fmt::Write as _;

use jpie::{SignatureView, TypeDesc};

use crate::error::CorbaError;

/// One operation in an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlOperation {
    /// Operation name.
    pub name: String,
    /// `(name, type)` of the (all `in`) parameters, in order.
    pub params: Vec<(String, TypeDesc)>,
    /// Return type.
    pub return_ty: TypeDesc,
}

impl IdlOperation {
    /// Builds an operation from a dynamic-class signature view.
    pub fn from_signature(sig: &SignatureView) -> IdlOperation {
        IdlOperation {
            name: sig.name.clone(),
            params: sig
                .params
                .iter()
                .map(|(_, n, t)| (n.clone(), t.clone()))
                .collect(),
            return_ty: sig.return_ty.clone(),
        }
    }
}

/// One `interface` in the module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlInterface {
    /// Interface name.
    pub name: String,
    /// Operations in declaration order.
    pub operations: Vec<IdlOperation>,
}

impl IdlInterface {
    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&IdlOperation> {
        self.operations.iter().find(|o| o.name == name)
    }
}

/// A CORBA-IDL document: one `module` with interfaces, plus the interface
/// version stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlModule {
    /// Module name.
    pub name: String,
    /// Interfaces in the module.
    pub interfaces: Vec<IdlInterface>,
    /// Interface version of the dynamic class when generated.
    pub version: u64,
}

impl IdlModule {
    /// The minimal document published at CORBA server initialization
    /// (§5.2.1): a module with one empty interface.
    pub fn minimal(name: impl Into<String>) -> IdlModule {
        let name = name.into();
        IdlModule {
            interfaces: vec![IdlInterface {
                name: name.clone(),
                operations: Vec::new(),
            }],
            name,
            version: 0,
        }
    }

    /// Builds a single-interface module from distributed signatures.
    pub fn from_signatures(
        name: impl Into<String>,
        signatures: &[SignatureView],
        version: u64,
    ) -> IdlModule {
        let name = name.into();
        IdlModule {
            interfaces: vec![IdlInterface {
                name: name.clone(),
                operations: signatures
                    .iter()
                    .map(IdlOperation::from_signature)
                    .collect(),
            }],
            name,
            version,
        }
    }

    /// The primary interface (first in the module).
    pub fn primary_interface(&self) -> Option<&IdlInterface> {
        self.interfaces.first()
    }

    /// Every user-defined (named) type referenced by the module's
    /// operation signatures, sorted and deduplicated.
    pub fn referenced_user_types(&self) -> Vec<String> {
        fn collect(ty: &TypeDesc, out: &mut Vec<String>) {
            match ty {
                TypeDesc::Named(n) => out.push(n.clone()),
                TypeDesc::Seq(e) => collect(e, out),
                _ => {}
            }
        }
        let mut names = Vec::new();
        for iface in &self.interfaces {
            for op in &iface.operations {
                collect(&op.return_ty, &mut names);
                for (_, ty) in &op.params {
                    collect(ty, &mut names);
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// Renders the module as CORBA-IDL text.
    pub fn to_idl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "#pragma version {} {}", self.name, self.version);
        let _ = writeln!(out, "module {} {{", self.name);
        // User-defined value types travel self-describingly (CDR any), so
        // the document declares them as `any` typedefs — enough for the
        // dynamic client to compile and for the text to be valid IDL.
        for name in self.referenced_user_types() {
            let _ = writeln!(out, "  typedef any {name};");
        }
        for iface in &self.interfaces {
            let _ = writeln!(out, "  interface {} {{", iface.name);
            for op in &iface.operations {
                let params = op
                    .params
                    .iter()
                    .map(|(n, t)| format!("in {} {}", idl_type(t), n))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "    {} {}({});",
                    idl_type(&op.return_ty),
                    op.name,
                    params
                );
            }
            let _ = writeln!(out, "  }};");
        }
        let _ = writeln!(out, "}};");
        out
    }

    /// Parses CORBA-IDL text produced by [`IdlModule::to_idl`].
    ///
    /// # Errors
    ///
    /// Returns [`CorbaError::Idl`] on syntax errors or unknown types.
    pub fn parse(text: &str) -> Result<IdlModule, CorbaError> {
        Parser::new(text).parse_module()
    }
}

/// The IDL rendering of a type (paper §2.2 type mapping).
pub fn idl_type(ty: &TypeDesc) -> String {
    match ty {
        TypeDesc::Void => "void".into(),
        TypeDesc::Bool => "boolean".into(),
        TypeDesc::Int => "long".into(),
        TypeDesc::Long => "long long".into(),
        TypeDesc::Float => "float".into(),
        TypeDesc::Double => "double".into(),
        TypeDesc::Char => "char".into(),
        TypeDesc::Str => "string".into(),
        TypeDesc::Named(n) => n.clone(),
        TypeDesc::Seq(e) => format!("sequence<{}>", idl_type(e)),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u64),
    Punct(char),
    Pragma(String, u64),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Parser {
        Parser {
            tokens: tokenize(text),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), CorbaError> {
        match self.next() {
            Some(Token::Punct(p)) if p == c => Ok(()),
            other => Err(CorbaError::Idl(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CorbaError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(CorbaError::Idl(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CorbaError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(CorbaError::Idl(format!("expected {kw:?}, found {id:?}")))
        }
    }

    fn parse_module(&mut self) -> Result<IdlModule, CorbaError> {
        let mut version = 0;
        while let Some(Token::Pragma(_, v)) = self.peek() {
            version = *v;
            self.pos += 1;
        }
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut interfaces = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Punct('}')) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(kw)) if kw == "interface" => {
                    interfaces.push(self.parse_interface()?);
                }
                Some(Token::Ident(kw)) if kw == "typedef" => {
                    // `typedef any Name;` — opaque user-type declaration.
                    self.pos += 1;
                    let _base = self.parse_type()?;
                    let _alias = self.expect_ident()?;
                    self.expect_punct(';')?;
                }
                other => {
                    return Err(CorbaError::Idl(format!(
                        "expected interface or '}}', found {other:?}"
                    )))
                }
            }
        }
        // Trailing semicolon after the module close is optional.
        if matches!(self.peek(), Some(Token::Punct(';'))) {
            self.pos += 1;
        }
        if let Some(t) = self.peek() {
            return Err(CorbaError::Idl(format!("trailing tokens: {t:?}")));
        }
        Ok(IdlModule {
            name,
            interfaces,
            version,
        })
    }

    fn parse_interface(&mut self) -> Result<IdlInterface, CorbaError> {
        self.expect_keyword("interface")?;
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut operations = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::Punct('}'))) {
                self.pos += 1;
                break;
            }
            operations.push(self.parse_operation()?);
        }
        self.expect_punct(';')?;
        Ok(IdlInterface { name, operations })
    }

    fn parse_operation(&mut self) -> Result<IdlOperation, CorbaError> {
        let return_ty = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Some(Token::Punct(')'))) {
            loop {
                self.expect_keyword("in")?;
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push((pname, ty));
                match self.next() {
                    Some(Token::Punct(',')) => continue,
                    Some(Token::Punct(')')) => break,
                    other => {
                        return Err(CorbaError::Idl(format!(
                            "expected ',' or ')', found {other:?}"
                        )))
                    }
                }
            }
        } else {
            self.pos += 1;
        }
        self.expect_punct(';')?;
        Ok(IdlOperation {
            name,
            params,
            return_ty,
        })
    }

    fn parse_type(&mut self) -> Result<TypeDesc, CorbaError> {
        let id = self.expect_ident()?;
        Ok(match id.as_str() {
            "void" => TypeDesc::Void,
            "boolean" => TypeDesc::Bool,
            "float" => TypeDesc::Float,
            "double" => TypeDesc::Double,
            "char" => TypeDesc::Char,
            "string" => TypeDesc::Str,
            "long" => {
                // `long` or `long long`.
                if matches!(self.peek(), Some(Token::Ident(s)) if s == "long") {
                    self.pos += 1;
                    TypeDesc::Long
                } else {
                    TypeDesc::Int
                }
            }
            "sequence" => {
                self.expect_punct('<')?;
                let elem = self.parse_type()?;
                self.expect_punct('>')?;
                TypeDesc::Seq(Box::new(elem))
            }
            other => TypeDesc::Named(other.to_string()),
        })
    }
}

fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    for raw_line in text.lines() {
        let line = match raw_line.find("//") {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("#pragma version") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("").to_string();
            let version = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            tokens.push(Token::Pragma(name, version));
            continue;
        }
        if trimmed.starts_with('#') {
            continue; // other pragmas ignored
        }
        let mut chars = line.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c.is_alphabetic() || c == '_' {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            } else if c.is_ascii_digit() {
                let mut n = 0u64;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.saturating_mul(10).saturating_add(u64::from(d));
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(n));
            } else {
                tokens.push(Token::Punct(c));
                chars.next();
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IdlModule {
        IdlModule {
            name: "Calc".into(),
            interfaces: vec![IdlInterface {
                name: "Calc".into(),
                operations: vec![
                    IdlOperation {
                        name: "add".into(),
                        params: vec![("a".into(), TypeDesc::Int), ("b".into(), TypeDesc::Int)],
                        return_ty: TypeDesc::Int,
                    },
                    IdlOperation {
                        name: "avg".into(),
                        params: vec![("xs".into(), TypeDesc::Seq(Box::new(TypeDesc::Double)))],
                        return_ty: TypeDesc::Double,
                    },
                    IdlOperation {
                        name: "describe".into(),
                        params: vec![("p".into(), TypeDesc::Named("Point".into()))],
                        return_ty: TypeDesc::Str,
                    },
                    IdlOperation {
                        name: "reset".into(),
                        params: vec![],
                        return_ty: TypeDesc::Void,
                    },
                    IdlOperation {
                        name: "big".into(),
                        params: vec![("x".into(), TypeDesc::Long)],
                        return_ty: TypeDesc::Long,
                    },
                ],
            }],
            version: 4,
        }
    }

    #[test]
    fn generate_and_parse_roundtrip() {
        let module = sample();
        let text = module.to_idl();
        assert!(text.contains("module Calc {"));
        assert!(text.contains("long add(in long a, in long b);"));
        assert!(text.contains("sequence<double>"));
        assert!(text.contains("long long big(in long long x);"));
        let back = IdlModule::parse(&text).unwrap();
        assert_eq!(back, module);
    }

    #[test]
    fn minimal_module() {
        let module = IdlModule::minimal("Mail");
        let text = module.to_idl();
        let back = IdlModule::parse(&text).unwrap();
        assert_eq!(back.name, "Mail");
        assert_eq!(back.primary_interface().unwrap().operations.len(), 0);
        assert_eq!(back.version, 0);
    }

    #[test]
    fn version_pragma_roundtrip() {
        let mut module = sample();
        module.version = 99;
        let back = IdlModule::parse(&module.to_idl()).unwrap();
        assert_eq!(back.version, 99);
    }

    #[test]
    fn comments_ignored() {
        let text = "// leading comment\nmodule M { // trailing\n interface M { }; };";
        let back = IdlModule::parse(text).unwrap();
        assert_eq!(back.name, "M");
    }

    #[test]
    fn operation_lookup() {
        let module = sample();
        let iface = module.primary_interface().unwrap();
        assert!(iface.operation("add").is_some());
        assert!(iface.operation("nope").is_none());
    }

    #[test]
    fn syntax_errors_rejected() {
        for bad in [
            "",
            "module",
            "module M {",
            "module M { interface I { } }", // missing ; after interface
            "module M { interface I { long f(; }; };",
            "module M { interface I { long f(out long x); }; };",
            "module M {}; trailing",
        ] {
            assert!(IdlModule::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn idl_type_names() {
        assert_eq!(idl_type(&TypeDesc::Int), "long");
        assert_eq!(idl_type(&TypeDesc::Long), "long long");
        assert_eq!(
            idl_type(&TypeDesc::Seq(Box::new(TypeDesc::Named("P".into())))),
            "sequence<P>"
        );
    }

    #[test]
    fn from_signatures_builds_single_interface() {
        use jpie::{ClassHandle, MethodBuilder};
        let class = ClassHandle::new("Svc");
        class
            .add_method(MethodBuilder::new("ping", TypeDesc::Bool).distributed(true))
            .unwrap();
        let module = IdlModule::from_signatures(
            "Svc",
            &class.distributed_signatures(),
            class.interface_version(),
        );
        assert_eq!(module.interfaces.len(), 1);
        assert_eq!(
            module.primary_interface().unwrap().operations[0].name,
            "ping"
        );
    }

    #[test]
    fn user_types_get_typedefs() {
        let module = sample();
        assert_eq!(module.referenced_user_types(), vec!["Point".to_string()]);
        let text = module.to_idl();
        assert!(text.contains("typedef any Point;"), "{text}");
        // Typedefs survive the round trip (they are regenerated from the
        // signatures, so equality holds).
        assert_eq!(IdlModule::parse(&text).unwrap(), module);
    }

    #[test]
    fn nested_sequences_roundtrip() {
        let module = IdlModule {
            name: "M".into(),
            interfaces: vec![IdlInterface {
                name: "I".into(),
                operations: vec![IdlOperation {
                    name: "grid".into(),
                    params: vec![(
                        "g".into(),
                        TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(TypeDesc::Int)))),
                    )],
                    return_ty: TypeDesc::Void,
                }],
            }],
            version: 0,
        };
        assert_eq!(IdlModule::parse(&module.to_idl()).unwrap(), module);
    }
}
