//! Object Request Brokers: the server ORB with DSI dispatch and the
//! client-side DII request API.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use httpd::transport::{connect_with, Listener, Stream};
use jpie::Value;
use obs::sync::Mutex;

use crate::error::{CorbaError, SystemExceptionKind};
use crate::giop::{
    decode_reply_flags, decode_request, read_message_into, write_reply_advertising,
    write_request_parts, GiopBufs, MsgType, ReplyBody, ReplyMessage,
};
use crate::ior::Ior;

/// The Dynamic Skeleton Interface: servant logic that receives untyped
/// requests.
///
/// The paper "use\[s\] DSI to avoid reinitializing the Server ORB when the
/// server methods or types change" (§5.2.2) — the ORB stays up while the
/// implementation behind this trait changes arbitrarily.
pub trait DynamicImplementation: Send + Sync + 'static {
    /// Handles one request: inspect [`ServerRequest::operation`] and
    /// [`ServerRequest::arguments`], then call
    /// [`ServerRequest::set_result`] or [`ServerRequest::set_exception`].
    fn invoke(&self, request: &mut ServerRequest);

    /// Whether this servant consults a reply cache keyed by
    /// [`ServerRequest::call_id`]. When `true` the ORB advertises the
    /// fact in every reply's service-context list, which lets clients
    /// safely retry non-idempotent calls (a redelivered call id returns
    /// the cached reply instead of re-executing).
    fn caches_replies(&self) -> bool {
        false
    }
}

/// An in-progress server-side request handed to the DSI implementation.
#[derive(Debug)]
pub struct ServerRequest {
    operation: String,
    args: Vec<Value>,
    call_id: Option<obs::CallId>,
    trace: Option<obs::TraceContext>,
    outcome: Option<Result<Value, CorbaError>>,
}

impl ServerRequest {
    /// The requested operation name.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// The logical call id the client attached, if any — stable across
    /// transport-level retries of the same call.
    pub fn call_id(&self) -> Option<obs::CallId> {
        self.call_id
    }

    /// The distributed-tracing context the client attached, if any —
    /// the parent for server-side spans of this call.
    pub fn trace(&self) -> Option<obs::TraceContext> {
        self.trace
    }

    /// The positional arguments.
    pub fn arguments(&self) -> &[Value] {
        &self.args
    }

    /// Completes the request successfully.
    pub fn set_result(&mut self, value: Value) {
        self.outcome = Some(Ok(value));
    }

    /// Completes the request with an exception.
    pub fn set_exception(&mut self, error: CorbaError) {
        self.outcome = Some(Err(error));
    }
}

/// Drain gate and in-flight accounting for a server ORB, shared by the
/// threaded and reactor engines.
///
/// The CORBA analogue of `httpd::ServerGate`: planned reconfiguration
/// needs to drive an ORB to quiescence (Matevska-Meyer) — refuse *new*
/// requests with the retryable `TRANSIENT` system exception (carrying a
/// `retry_after_ms=N` pacing hint in the reason) while requests already
/// dispatched run to completion, observable through an exact in-flight
/// count. Admission increments before checking the flag (SeqCst both
/// sides), so a drainer that set the flag and then read a zero count
/// knows no request can still be racing into the servant.
#[derive(Debug, Default)]
pub struct OrbGate {
    in_flight: AtomicU64,
    draining: AtomicBool,
    retry_after_ms: AtomicU64,
}

impl OrbGate {
    /// Requests currently executing inside the servant.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Starts refusing new requests with `TRANSIENT`, hinting clients to
    /// retry after `retry_after_ms`; dispatched requests complete.
    pub fn begin_drain(&self, retry_after_ms: u64) {
        self.retry_after_ms.store(retry_after_ms, Ordering::SeqCst);
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Resumes normal admission.
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::SeqCst);
    }

    /// Whether the gate is currently refusing new requests.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running server ORB bound to one transport endpoint, dispatching every
/// request through a [`DynamicImplementation`].
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug)]
pub struct ServerOrb {
    ior: Ior,
    shutdown: Arc<AtomicBool>,
    listener: Arc<Listener>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    conns: Arc<ConnTracker>,
    gate: Arc<OrbGate>,
    /// Present when the reactor engine serves this ORB (`tcp://` on
    /// Linux); `None` on the threaded `mem://` path.
    #[cfg(target_os = "linux")]
    reactor: Option<crate::rorb::ReactorState>,
}

/// Live connections of the threaded engine, so [`ServerOrb::shutdown`]
/// can sever them. Without this a "dead" ORB would keep answering GIOP
/// on established connections — a zombie a failover front could never
/// fence off.
#[derive(Debug, Default)]
struct ConnTracker {
    streams: Mutex<std::collections::HashMap<u64, Stream>>,
    next: std::sync::atomic::AtomicU64,
}

impl ConnTracker {
    /// Registers a duplicate handle to `stream`; returns the slot id.
    fn track(&self, stream: &Stream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.streams.lock().insert(id, clone);
        Some(id)
    }

    fn untrack(&self, id: u64) {
        self.streams.lock().remove(&id);
    }

    /// Severs every live connection; their serve threads exit on the
    /// resulting read error.
    fn sever_all(&self) {
        for (_, s) in self.streams.lock().drain() {
            s.shutdown();
        }
    }
}

impl ServerOrb {
    /// Binds `addr` (e.g. `tcp://127.0.0.1:0` or `mem://calc-orb`) and
    /// starts dispatching to `implementation`.
    ///
    /// `tcp://` endpoints are served by the event-driven reactor engine
    /// (set `ORB_THREADED_TCP=1` to force the thread-per-connection
    /// engine); `mem://` endpoints always use the threaded engine.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint cannot be bound.
    pub fn init<I: DynamicImplementation>(
        addr: &str,
        type_id: &str,
        implementation: I,
    ) -> Result<ServerOrb, CorbaError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let local = listener.local_addr().to_string();
        let object_key = format!("{type_id}#key").into_bytes();
        let served_key = object_key.clone();
        let ior = Ior::new(type_id, local, object_key);
        let shutdown = Arc::new(AtomicBool::new(false));
        let implementation: Arc<dyn DynamicImplementation> = Arc::new(implementation);
        let gate = Arc::new(OrbGate::default());

        #[cfg(target_os = "linux")]
        if matches!(&*listener, Listener::Tcp(_)) && std::env::var_os("ORB_THREADED_TCP").is_none()
        {
            let (state, accept_thread) = crate::rorb::start(
                listener.clone(),
                shutdown.clone(),
                implementation,
                served_key,
                gate.clone(),
            );
            return Ok(ServerOrb {
                ior,
                shutdown,
                listener,
                accept_thread: Mutex::new(Some(accept_thread)),
                conns: Arc::new(ConnTracker::default()),
                gate,
                reactor: Some(state),
            });
        }

        let conns = Arc::new(ConnTracker::default());
        let accept_listener = listener.clone();
        let accept_shutdown = shutdown.clone();
        let accept_conns = conns.clone();
        let accept_gate = gate.clone();
        let accept_thread = thread::Builder::new()
            .name("orb-accept".into())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::SeqCst) {
                    let mut stream = match accept_listener.accept() {
                        Ok(s) => s,
                        Err(_) => break,
                    };
                    if accept_shutdown.load(Ordering::SeqCst) {
                        stream.shutdown();
                        break;
                    }
                    // A connection that goes silent (or was blackholed)
                    // must not pin its serve thread forever.
                    let _ = stream.set_read_timeout(Some(SERVER_IDLE_TIMEOUT));
                    let implementation = implementation.clone();
                    let conn_key = served_key.clone();
                    let conn_gate = accept_gate.clone();
                    let tracked = accept_conns.track(&stream);
                    let thread_conns = accept_conns.clone();
                    let _ = thread::Builder::new()
                        .name("orb-conn".into())
                        .spawn(move || {
                            serve_connection(stream, implementation, conn_key, conn_gate);
                            if let Some(id) = tracked {
                                thread_conns.untrack(id);
                            }
                        });
                }
            })
            .expect("spawn orb accept thread");

        Ok(ServerOrb {
            ior,
            shutdown,
            listener,
            accept_thread: Mutex::new(Some(accept_thread)),
            conns,
            gate,
            #[cfg(target_os = "linux")]
            reactor: None,
        })
    }

    /// The IOR clients use to reach this ORB.
    pub fn ior(&self) -> Ior {
        self.ior.clone()
    }

    /// The ORB's drain gate (in-flight accounting + drain-mode
    /// `TRANSIENT` refusals), engine-independent.
    pub fn gate(&self) -> &Arc<OrbGate> {
        &self.gate
    }

    /// Stops accepting connections, sweeps every live connection off
    /// its engine, and joins the threads this ORB spawned.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        self.conns.sever_all();
        #[cfg(target_os = "linux")]
        if let Some(r) = &self.reactor {
            r.shutdown();
        }
    }
}

impl Drop for ServerOrb {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long a server-side connection may sit idle (or mid-message)
/// before its serve thread (or reactor deadline timer) gives up on it.
pub(crate) const SERVER_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default client-side reply timeout: a server that accepts and never
/// replies surfaces as a transport error instead of a hang.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// GIOP message counters, resolved once — `serve_connection` is the RMI
/// hot path the Table-1 RTT benchmark measures.
pub(crate) fn giop_counters() -> &'static (Arc<obs::Counter>, Arc<obs::Counter>) {
    static COUNTERS: std::sync::OnceLock<(Arc<obs::Counter>, Arc<obs::Counter>)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = obs::registry();
        (
            r.counter_with("giop_requests_total", &[("type", "request")]),
            r.counter_with("giop_requests_total", &[("type", "locate")]),
        )
    })
}

fn serve_connection(
    stream: Stream,
    implementation: Arc<dyn DynamicImplementation>,
    served_key: Vec<u8>,
    gate: Arc<OrbGate>,
) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = stream;
    // One set of marshalling buffers per connection: after the first
    // request, the read/encode/frame cycle allocates nothing.
    let mut body = Vec::new();
    let mut bufs = GiopBufs::default();
    loop {
        let (msg_type, big_endian) = match read_message_into(&mut reader, &mut body) {
            Ok(Some(m)) => m,
            Ok(None) | Err(_) => return,
        };
        match msg_type {
            MsgType::CloseConnection => return,
            // Protocol violations from a client.
            MsgType::Reply | MsgType::LocateReply => return,
            MsgType::LocateRequest => {
                giop_counters().1.inc();
                let Ok((request_id, key)) = crate::giop::decode_locate_request(&body, big_endian)
                else {
                    return;
                };
                let status = if key == served_key {
                    crate::giop::LocateStatus::ObjectHere
                } else {
                    crate::giop::LocateStatus::UnknownObject
                };
                if crate::giop::write_locate_reply(&mut writer, request_id, status).is_err() {
                    return;
                }
            }
            MsgType::Request => {
                giop_counters().0.inc();
                let reply = request_reply(
                    implementation.as_ref(),
                    &served_key,
                    &body,
                    big_endian,
                    &gate,
                );
                let advertise = implementation.caches_replies();
                if write_reply_advertising(&mut writer, &reply, advertise, &mut bufs).is_err() {
                    return;
                }
            }
        }
    }
}

/// Decode one GIOP `Request` body, dispatch it through the servant's DSI
/// `invoke`, and produce the `ReplyMessage` to send back. Shared by the
/// threaded serve loop and the reactor engine.
pub(crate) fn request_reply(
    implementation: &dyn DynamicImplementation,
    served_key: &[u8],
    body: &[u8],
    big_endian: bool,
    gate: &OrbGate,
) -> ReplyMessage {
    let (request_id, reply_body) = match decode_request(body, big_endian) {
        Ok(req) => {
            let id = req.request_id;
            // A real ORB dispatches by object key; an unknown
            // key is OBJECT_NOT_EXIST, not a servant call.
            if req.object_key != served_key {
                let outcome = Err(CorbaError::system(
                    SystemExceptionKind::ObjectNotExist,
                    "unknown object key",
                ));
                (id, outcome_to_reply(outcome))
            } else {
                // Increment before checking the drain flag (see
                // [`OrbGate`]): a drained-but-admitted request is
                // refused with TRANSIENT — the servant never ran, so a
                // client retry is always safe.
                gate.in_flight.fetch_add(1, Ordering::SeqCst);
                let outcome = if gate.draining.load(Ordering::SeqCst) {
                    Err(CorbaError::system(
                        SystemExceptionKind::Transient,
                        format!(
                            "orb draining; retry_after_ms={}",
                            gate.retry_after_ms.load(Ordering::SeqCst)
                        ),
                    ))
                } else {
                    let mut sreq = ServerRequest {
                        operation: req.operation,
                        args: req.args,
                        call_id: req.call_id,
                        trace: req.trace,
                        outcome: None,
                    };
                    implementation.invoke(&mut sreq);
                    sreq.outcome.unwrap_or_else(|| {
                        Err(CorbaError::system(
                            SystemExceptionKind::NoImplement,
                            "servant set no result",
                        ))
                    })
                };
                gate.in_flight.fetch_sub(1, Ordering::SeqCst);
                (id, outcome_to_reply(outcome))
            }
        }
        Err(e) => (0, outcome_to_reply(Err(e))),
    };
    ReplyMessage {
        request_id,
        body: reply_body,
    }
}

fn outcome_to_reply(outcome: Result<Value, CorbaError>) -> ReplyBody {
    match outcome {
        Ok(v) => ReplyBody::NoException(v),
        Err(CorbaError::User {
            repository_id,
            message,
        }) => ReplyBody::UserException {
            repository_id,
            message,
        },
        Err(CorbaError::System(kind, reason)) => ReplyBody::SystemException { kind, reason },
        Err(other) => ReplyBody::SystemException {
            kind: SystemExceptionKind::Unknown,
            reason: other.to_string(),
        },
    }
}

/// A keep-alive client connection to a server ORB (what a client ORB holds
/// after initialization from an IOR, Fig 2).
#[derive(Debug)]
pub struct OrbConnection {
    stream: Stream,
    object_key: Vec<u8>,
    next_request_id: AtomicU32,
    // Recycled marshalling buffers: a warm connection makes calls
    // without allocating for the request frame or the reply body.
    bufs: GiopBufs,
    read_buf: Vec<u8>,
    peer_caches_replies: bool,
}

impl OrbConnection {
    /// Connects to the ORB referenced by `ior` with the default reply
    /// timeout.
    ///
    /// # Errors
    ///
    /// Fails if the address in the IOR is unreachable.
    pub fn connect(ior: &Ior) -> Result<OrbConnection, CorbaError> {
        OrbConnection::connect_with_timeout(ior, Some(CLIENT_READ_TIMEOUT))
    }

    /// Connects with an explicit reply timeout (`None` waits forever).
    ///
    /// # Errors
    ///
    /// Same as [`OrbConnection::connect`].
    pub fn connect_with_timeout(
        ior: &Ior,
        read_timeout: Option<Duration>,
    ) -> Result<OrbConnection, CorbaError> {
        let stream = connect_with(&ior.address, read_timeout)?;
        Ok(OrbConnection {
            stream,
            object_key: ior.object_key.clone(),
            next_request_id: AtomicU32::new(1),
            bufs: GiopBufs::default(),
            read_buf: Vec::new(),
            peer_caches_replies: false,
        })
    }

    /// Whether the most recent reply advertised a server-side reply
    /// cache (a retried call id is served from cache, not re-executed).
    pub fn peer_caches_replies(&self) -> bool {
        self.peer_caches_replies
    }

    /// Invokes `operation` with positional `args` and waits for the reply.
    ///
    /// # Errors
    ///
    /// Transport failures, marshal failures, and any exception the server
    /// replies with.
    pub fn call(&mut self, operation: &str, args: &[Value]) -> Result<Value, CorbaError> {
        self.call_with_id(operation, args, None)
    }

    /// Like [`OrbConnection::call`], but attaches a logical call id as a
    /// GIOP service context so a caching server can deduplicate retries.
    ///
    /// # Errors
    ///
    /// Same as [`OrbConnection::call`].
    pub fn call_with_id(
        &mut self,
        operation: &str,
        args: &[Value],
        call_id: Option<obs::CallId>,
    ) -> Result<Value, CorbaError> {
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        write_request_parts(
            &mut self.stream,
            request_id,
            true,
            &self.object_key,
            operation,
            args,
            call_id,
            // The caller's active span (the cde attempt span, or any
            // user-opened context) becomes the server spans' parent.
            obs::tracectx::current(),
            &mut self.bufs,
        )?;
        let (msg_type, big_endian) = read_message_into(&mut self.stream, &mut self.read_buf)?
            .ok_or_else(|| CorbaError::Transport("connection closed awaiting reply".into()))?;
        if msg_type != MsgType::Reply {
            return Err(CorbaError::system(
                SystemExceptionKind::Marshal,
                format!("expected Reply, got {msg_type:?}"),
            ));
        }
        let (reply, advertised) = decode_reply_flags(&self.read_buf, big_endian)?;
        if advertised {
            self.peer_caches_replies = true;
        }
        if reply.request_id != request_id {
            return Err(CorbaError::system(
                SystemExceptionKind::Marshal,
                "reply id does not match request id",
            ));
        }
        reply.into_result()
    }

    /// Probes whether the server actually serves this connection's object
    /// key (GIOP LocateRequest/LocateReply).
    ///
    /// # Errors
    ///
    /// Transport and marshal failures.
    pub fn locate(&mut self) -> Result<crate::giop::LocateStatus, CorbaError> {
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        crate::giop::write_locate_request(&mut self.stream, request_id, &self.object_key)?;
        let (msg_type, big_endian) = read_message_into(&mut self.stream, &mut self.read_buf)?
            .ok_or_else(|| CorbaError::Transport("connection closed awaiting locate".into()))?;
        if msg_type != MsgType::LocateReply {
            return Err(CorbaError::system(
                SystemExceptionKind::Marshal,
                format!("expected LocateReply, got {msg_type:?}"),
            ));
        }
        let (reply_id, status) = crate::giop::decode_locate_reply(&self.read_buf, big_endian)?;
        if reply_id != request_id {
            return Err(CorbaError::system(
                SystemExceptionKind::Marshal,
                "locate reply id mismatch",
            ));
        }
        Ok(status)
    }

    /// Closes the connection.
    pub fn close(mut self) {
        let _ = crate::giop::write_close(&mut self.stream);
        self.stream.shutdown();
    }
}

/// A Dynamic Invocation Interface request builder — the client-side dual
/// of DSI, used by the paper's CDE (§2.3: "the Dynamic Invocation
/// Interface (DII) implementation of OpenORB").
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug, Clone)]
pub struct DiiRequest {
    ior: Ior,
    operation: String,
    args: Vec<Value>,
    read_timeout: Option<Duration>,
}

impl DiiRequest {
    /// Starts a request for `operation` on the object referenced by `ior`.
    pub fn new(ior: &Ior, operation: impl Into<String>) -> DiiRequest {
        DiiRequest {
            ior: ior.clone(),
            operation: operation.into(),
            args: Vec::new(),
            read_timeout: Some(CLIENT_READ_TIMEOUT),
        }
    }

    /// Appends a positional argument.
    pub fn arg(mut self, value: Value) -> DiiRequest {
        self.args.push(value);
        self
    }

    /// Overrides the reply timeout (`None` waits forever).
    pub fn timeout(mut self, read_timeout: Option<Duration>) -> DiiRequest {
        self.read_timeout = read_timeout;
        self
    }

    /// Sends the request over a fresh connection and waits for the result.
    ///
    /// # Errors
    ///
    /// Same as [`OrbConnection::call`].
    pub fn invoke(self) -> Result<Value, CorbaError> {
        let mut conn = OrbConnection::connect_with_timeout(&self.ior, self.read_timeout)?;
        let out = conn.call(&self.operation, &self.args);
        conn.close();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpie::TypeDesc;

    struct Arith;
    impl DynamicImplementation for Arith {
        fn invoke(&self, req: &mut ServerRequest) {
            match req.operation() {
                "add" => match req.arguments() {
                    [Value::Int(a), Value::Int(b)] => req.set_result(Value::Int(a + b)),
                    _ => req.set_exception(CorbaError::system(
                        SystemExceptionKind::BadParam,
                        "add(int, int)",
                    )),
                },
                "explode" => req.set_exception(CorbaError::user_exception("application failure")),
                other => req.set_exception(CorbaError::non_existent_method(other)),
            }
        }
    }

    #[test]
    fn dii_call_roundtrip() {
        let orb = ServerOrb::init("mem://orb-add", "IDL:Arith:1.0", Arith).unwrap();
        let result = DiiRequest::new(&orb.ior(), "add")
            .arg(Value::Int(20))
            .arg(Value::Int(22))
            .invoke()
            .unwrap();
        assert_eq!(result, Value::Int(42));
        orb.shutdown();
    }

    #[test]
    fn dii_over_tcp() {
        let orb = ServerOrb::init("tcp://127.0.0.1:0", "IDL:Arith:1.0", Arith).unwrap();
        let result = DiiRequest::new(&orb.ior(), "add")
            .arg(Value::Int(1))
            .arg(Value::Int(2))
            .invoke()
            .unwrap();
        assert_eq!(result, Value::Int(3));
        orb.shutdown();
    }

    #[test]
    fn user_exception_propagates() {
        let orb = ServerOrb::init("mem://orb-user-ex", "IDL:Arith:1.0", Arith).unwrap();
        let err = DiiRequest::new(&orb.ior(), "explode").invoke().unwrap_err();
        assert!(
            matches!(err, CorbaError::User { message, .. } if message == "application failure")
        );
        orb.shutdown();
    }

    #[test]
    fn bad_operation_is_non_existent_method() {
        let orb = ServerOrb::init("mem://orb-missing", "IDL:Arith:1.0", Arith).unwrap();
        let err = DiiRequest::new(&orb.ior(), "missing").invoke().unwrap_err();
        assert!(err.is_non_existent_method());
        orb.shutdown();
    }

    #[test]
    fn bad_param_system_exception() {
        let orb = ServerOrb::init("mem://orb-badparam", "IDL:Arith:1.0", Arith).unwrap();
        let err = DiiRequest::new(&orb.ior(), "add")
            .arg(Value::Str("nope".into()))
            .invoke()
            .unwrap_err();
        assert!(matches!(
            err,
            CorbaError::System(SystemExceptionKind::BadParam, _)
        ));
        orb.shutdown();
    }

    #[test]
    fn keep_alive_connection_many_calls() {
        let orb = ServerOrb::init("mem://orb-ka", "IDL:Arith:1.0", Arith).unwrap();
        let mut conn = OrbConnection::connect(&orb.ior()).unwrap();
        for i in 0..10 {
            let got = conn.call("add", &[Value::Int(i), Value::Int(1)]).unwrap();
            assert_eq!(got, Value::Int(i + 1));
        }
        conn.close();
        orb.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let orb = Arc::new(ServerOrb::init("mem://orb-conc", "IDL:Arith:1.0", Arith).unwrap());
        let mut handles = Vec::new();
        for i in 0..8 {
            let ior = orb.ior();
            handles.push(thread::spawn(move || {
                let got = DiiRequest::new(&ior, "add")
                    .arg(Value::Int(i))
                    .arg(Value::Int(i))
                    .invoke()
                    .unwrap();
                assert_eq!(got, Value::Int(2 * i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        orb.shutdown();
    }

    #[test]
    fn complex_values_cross_the_wire() {
        struct EchoSeq;
        impl DynamicImplementation for EchoSeq {
            fn invoke(&self, req: &mut ServerRequest) {
                req.set_result(req.arguments()[0].clone());
            }
        }
        let orb = ServerOrb::init("mem://orb-echo-seq", "IDL:Echo:1.0", EchoSeq).unwrap();
        let v = Value::Seq(
            TypeDesc::Named("P".into()),
            vec![Value::Struct(
                jpie::StructValue::new("P").with("x", Value::Double(1.5)),
            )],
        );
        let got = DiiRequest::new(&orb.ior(), "echo")
            .arg(v.clone())
            .invoke()
            .unwrap();
        assert_eq!(got, v);
        orb.shutdown();
    }

    #[test]
    fn connect_after_shutdown_fails() {
        let orb = ServerOrb::init("mem://orb-dead", "IDL:Arith:1.0", Arith).unwrap();
        let ior = orb.ior();
        orb.shutdown();
        assert!(OrbConnection::connect(&ior).is_err());
    }

    #[test]
    fn unknown_object_key_is_object_not_exist() {
        let orb = ServerOrb::init("mem://orb-wrong-key", "IDL:Arith:1.0", Arith).unwrap();
        let mut bogus = orb.ior();
        bogus.object_key = b"not-served-here".to_vec();
        let err = DiiRequest::new(&bogus, "add")
            .arg(Value::Int(1))
            .arg(Value::Int(2))
            .invoke()
            .unwrap_err();
        assert!(matches!(
            err,
            CorbaError::System(SystemExceptionKind::ObjectNotExist, _)
        ));
        orb.shutdown();
    }

    #[test]
    fn locate_request_roundtrip() {
        let orb = ServerOrb::init("mem://orb-locate", "IDL:Arith:1.0", Arith).unwrap();
        let mut conn = OrbConnection::connect(&orb.ior()).unwrap();
        assert_eq!(
            conn.locate().unwrap(),
            crate::giop::LocateStatus::ObjectHere
        );
        // Locate for an object this ORB does not serve.
        let mut bogus = orb.ior();
        bogus.object_key = b"somebody-else".to_vec();
        let mut conn2 = OrbConnection::connect(&bogus).unwrap();
        assert_eq!(
            conn2.locate().unwrap(),
            crate::giop::LocateStatus::UnknownObject
        );
        // The connection keeps working for real calls after a locate.
        let v = conn.call("add", &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(v, Value::Int(3));
        conn.close();
        conn2.close();
        orb.shutdown();
    }

    #[test]
    fn ior_identifies_endpoint() {
        let orb = ServerOrb::init("mem://orb-ior", "IDL:Arith:1.0", Arith).unwrap();
        let ior = orb.ior();
        assert_eq!(ior.type_id, "IDL:Arith:1.0");
        assert_eq!(ior.address, "mem://orb-ior");
        // The stringified form parses back to the same reference.
        assert_eq!(Ior::parse(&ior.to_ior_string()).unwrap(), ior);
        orb.shutdown();
    }
}
