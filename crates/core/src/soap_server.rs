//! The SOAP subsystem (paper §5.1): `SOAPServer` gateway, WSDL publisher,
//! and the SOAP Call Handler.

use std::sync::Arc;

use httpd::{Handler, HttpServer, Request, Response, Status};
use jpie::{ClassHandle, Instance};
use soap::{SoapFault, WsdlDocument};

use crate::replycache::{Admission, CachedReply};

use crate::docs::DocumentStore;
use crate::error::SdeError;
use crate::gateway::{GatewayCore, HandlerMetrics, InvokeFailure, SdeServerGateway, Technology};
use crate::publish::{GeneratedDoc, PublicationStrategy, PublisherCore};

/// A managed SOAP server: the paper's `SOAPServer` gateway plus its WSDL
/// Generator, SOAP Call Handler, and publication plumbing, deployed and
/// wired automatically (the "automated server deployment" contribution).
///
/// Create through [`crate::SdeManager::deploy_soap`].
#[derive(Debug)]
pub struct SoapServer {
    core: Arc<GatewayCore>,
    publisher: Arc<PublisherCore>,
    endpoint: HttpServer,
    wsdl_url: String,
    wsdl_path: String,
    store: DocumentStore,
}

impl SoapServer {
    pub(crate) fn deploy(
        class: ClassHandle,
        endpoint_addr: &str,
        store: DocumentStore,
        interface_base_url: &str,
        strategy: PublicationStrategy,
    ) -> Result<SoapServer, SdeError> {
        let core = GatewayCore::new(class.clone());

        // The SOAP Call Handler goes up first so the endpoint address is
        // known for the (minimal) WSDL document (§5.1.1).
        let handler = SoapCallHandler { core: core.clone() };
        // Hardened pool: size limits and timeouts keep one misbehaving
        // client from starving the call-handler workers.
        let endpoint =
            HttpServer::bind_with(endpoint_addr, handler, httpd::PoolConfig::hardened())?;
        let endpoint_url = format!("{}/{}", endpoint.base_url(), class.name());

        let wsdl_path = format!("/{}.wsdl", class.name());
        let wsdl_url = format!("{interface_base_url}{wsdl_path}");

        let gen_class = class.clone();
        let gen_endpoint = endpoint_url.clone();
        let sink_store = store.clone();
        let sink_path = wsdl_path.clone();
        let publisher = PublisherCore::start(
            class,
            strategy,
            Box::new(move || {
                let doc = WsdlDocument::from_signatures(
                    gen_class.name(),
                    gen_endpoint.clone(),
                    &gen_class.distributed_signatures(),
                    gen_class.interface_version(),
                );
                GeneratedDoc {
                    text: doc.to_xml(),
                    version: doc.version,
                }
            }),
            Box::new(move |doc| {
                sink_store.publish(&sink_path, doc.text.clone(), doc.version, "text/xml");
            }),
        );

        Ok(SoapServer {
            core,
            publisher,
            endpoint,
            wsdl_url,
            wsdl_path,
            store,
        })
    }

    /// The shared gateway state (used by the SDE Manager).
    pub(crate) fn core(&self) -> &Arc<GatewayCore> {
        &self.core
    }

    /// URL of the published WSDL document.
    pub fn wsdl_url(&self) -> &str {
        &self.wsdl_url
    }

    /// The SOAP endpoint URL clients post requests to.
    pub fn endpoint_url(&self) -> String {
        format!("{}/{}", self.endpoint.base_url(), self.core.class().name())
    }

    /// The live instance, if created.
    pub fn instance(&self) -> Option<Arc<Instance>> {
        self.core.instance()
    }

    /// Call-handler metrics.
    pub fn handler_metrics(&self) -> &HandlerMetrics {
        self.core.metrics()
    }

    /// Snapshot of the exactly-once reply cache.
    pub fn reply_cache_stats(&self) -> crate::replycache::ReplyCacheStats {
        self.core.reply_cache().stats()
    }

    /// Toggles the §5.7 reactive forced publication (see
    /// [`GatewayCore::set_reactive`](crate::GatewayCore::set_reactive)).
    pub fn set_reactive(&self, reactive: bool) {
        self.core.set_reactive(reactive);
    }

    /// The endpoint's drain gate: in-flight accounting and drain-mode
    /// 503s, for planned-migration quiescence.
    pub fn gate(&self) -> &Arc<httpd::ServerGate> {
        self.endpoint.gate()
    }
}

impl SdeServerGateway for SoapServer {
    fn class(&self) -> &ClassHandle {
        self.core.class()
    }

    fn technology(&self) -> Technology {
        Technology::Soap
    }

    fn interface_url(&self) -> String {
        self.wsdl_url.clone()
    }

    fn publisher(&self) -> &Arc<PublisherCore> {
        &self.publisher
    }

    fn create_instance(&self) -> Result<Arc<Instance>, SdeError> {
        self.core.create_instance()
    }

    fn shutdown(&self) {
        self.publisher.shutdown();
        self.endpoint.shutdown();
        self.store.retract(&self.wsdl_path);
        self.core.clear_instance();
    }
}

/// The SOAP Call Handler (§5.1.3): the communication endpoint performing
/// SOAP↔dynamic-class translation for remote invocations.
struct SoapCallHandler {
    core: Arc<GatewayCore>,
}

impl Handler for SoapCallHandler {
    fn handle(&self, req: &Request) -> Response {
        // Every response from this handler advertises the reply cache,
        // which is what licenses clients to retry non-idempotent calls.
        advertise(self.handle_inner(req))
    }
}

impl SoapCallHandler {
    fn handle_inner(&self, req: &Request) -> Response {
        let xml = req.body_str();
        let (soap_req, mut call_id, trace_ctx) = match soap::decode_request_traced(&xml) {
            Ok(r) => r,
            Err(e) => {
                // "If the parsing reveals a malformed SOAP Request, a SOAP
                // Fault with a 'Malformed SOAP Request' message is sent."
                fault_counter("malformed_request").inc();
                return fault_response(&SoapFault::malformed_request(e.to_string()));
            }
        };
        // Server-side span tree: joins the client's wire-propagated
        // context (a no-op when the caller sent none).
        let server_span = obs::tracectx::server_root("server.soap", trace_ctx, call_id);
        // At-most-once execution: a redelivered call id means the first
        // delivery already ran (its reply got lost on the way back) —
        // replay the stored reply instead of executing again. Admission
        // also claims an in-flight sentinel, so a duplicate racing a
        // still-executing first delivery waits for its result instead of
        // executing a second copy.
        if let Some(id) = call_id {
            let admit_span = obs::tracectx::child("replycache.admit");
            match self.core.reply_cache().admit(id) {
                Admission::Replay(CachedReply::SoapBody(body)) => {
                    admit_span.rename("replycache.hit");
                    admit_span.annotate("reply_replayed", obs::tracectx::AnnValue::U64(1));
                    return Response::ok_shared(body, "text/xml");
                }
                Admission::Replay(CachedReply::SoapFault(body)) => {
                    admit_span.rename("replycache.hit");
                    admit_span.annotate("reply_replayed", obs::tracectx::AnnValue::U64(1));
                    return Response::new_shared(Status::INTERNAL_SERVER_ERROR, body, "text/xml");
                }
                Admission::Replay(_) => {
                    // A CORBA-flavoured entry can only exist if two
                    // gateways shared one cache — they never do. Execute
                    // without exactly-once bookkeeping rather than panic.
                    call_id = None;
                }
                Admission::InFlight => {
                    // The original delivery outlasted the wait bound.
                    // 503 is the one reply the client retries without
                    // any idempotency licence — exactly right here: the
                    // retry redelivers the same id and finds the reply.
                    admit_span.rename("replycache.wait");
                    admit_span.fail("duplicate-in-flight");
                    fault_counter("duplicate_in_flight").inc();
                    return Response::unavailable(
                        "original delivery of this call is still executing",
                        std::time::Duration::from_millis(100),
                    );
                }
                Admission::Execute => {}
            }
        }
        match self.core.dispatch(soap_req.method(), soap_req.args()) {
            Ok(value) => {
                // Encode straight into the response body — no String
                // round-trip on the reply hot path.
                let marshal_span = obs::tracectx::child("marshal");
                let mut body = Vec::with_capacity(256);
                soap::encode_ok_into(soap_req.method(), soap_req.namespace(), &value, &mut body);
                drop(marshal_span);
                match call_id {
                    Some(id) => {
                        // Shared body: the cache entry and the response
                        // replay the same allocation.
                        let shared: Arc<[u8]> = body.into();
                        self.core
                            .reply_cache()
                            .complete(id, CachedReply::SoapBody(shared.clone()));
                        Response::ok_shared(shared, "text/xml")
                    }
                    None => Response::ok(body, "text/xml"),
                }
            }
            Err(InvokeFailure::NotInitialized) => {
                // Dispatch never entered the method body: release the
                // claim uncached so a retry after the server heals
                // executes normally.
                if let Some(id) = call_id {
                    self.core.reply_cache().abort(id);
                }
                server_span.fail("server-not-initialized");
                fault_counter("server_not_initialized").inc();
                fault_response(&SoapFault::server_not_initialized())
            }
            Err(InvokeFailure::NoMatch) => {
                // §5.7 ran inside dispatch (stall + forced publication);
                // now the exception goes back. The body never ran, so
                // the claim is released uncached.
                if let Some(id) = call_id {
                    self.core.reply_cache().abort(id);
                }
                server_span.fail("non-existent-method");
                fault_counter("non_existent_method").inc();
                obs::trace::event(
                    "sde::soap",
                    "non-existent-method",
                    format!(
                        "class={} method={}",
                        self.core.class().name(),
                        soap_req.method()
                    ),
                );
                fault_response(&SoapFault::non_existent_method(soap_req.method()))
            }
            Err(InvokeFailure::AppException(msg)) => {
                // The method body executed — possibly mutating state —
                // before throwing. A lost fault reply licenses a retry
                // that must NOT re-run those side effects, so the fault
                // is cached and replayed exactly like a success.
                server_span.fail("application-exception");
                fault_counter("application_exception").inc();
                let mut body = Vec::with_capacity(256);
                soap::encode_fault_into(&SoapFault::application_exception(msg), &mut body);
                match call_id {
                    Some(id) => {
                        let shared: Arc<[u8]> = body.into();
                        self.core
                            .reply_cache()
                            .complete(id, CachedReply::SoapFault(shared.clone()));
                        Response::new_shared(Status::INTERNAL_SERVER_ERROR, shared, "text/xml")
                    }
                    None => Response::new(Status::INTERNAL_SERVER_ERROR, body, "text/xml"),
                }
            }
        }
    }
}

/// Stamps the reply-cache advertisement header on a response.
fn advertise(mut resp: Response) -> Response {
    resp.headers_mut().set(soap::REPLY_CACHE_HEADER, "1");
    resp
}

/// Fault paths are cold, so the registry lookup per fault is fine.
fn fault_counter(kind: &str) -> std::sync::Arc<obs::Counter> {
    obs::registry().counter_with("sde_soap_faults_total", &[("kind", kind)])
}

fn fault_response(fault: &SoapFault) -> Response {
    let mut body = Vec::with_capacity(256);
    soap::encode_fault_into(fault, &mut body);
    // SOAP 1.1 over HTTP requires status 500 for faults.
    Response::new(Status::INTERNAL_SERVER_ERROR, body, "text/xml")
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpd::HttpClient;
    use jpie::expr::Expr;
    use jpie::{MethodBuilder, TypeDesc, Value};
    use soap::SoapRequest;
    use soap::SoapResponse;
    use std::time::Duration;

    fn deploy_calc(tag: &str) -> SoapServer {
        let class = ClassHandle::new("Calc");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        SoapServer::deploy(
            class,
            &format!("mem://soap-ep-{tag}"),
            DocumentStore::new(),
            "mem://ifc-unused",
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        )
        .unwrap()
    }

    fn call(server: &SoapServer, req: &SoapRequest) -> SoapResponse {
        let resp = HttpClient::new()
            .post(
                &server.endpoint_url(),
                req.to_xml().into_bytes(),
                "text/xml",
            )
            .unwrap();
        soap::decode_response(&resp.body_str()).unwrap()
    }

    #[test]
    fn uninitialized_server_faults() {
        let server = deploy_calc("uninit");
        let resp = call(
            &server,
            &SoapRequest::new("urn:Calc", "add")
                .arg("a", Value::Int(1))
                .arg("b", Value::Int(2)),
        );
        match resp {
            SoapResponse::Fault(f) => assert_eq!(f.fault_string, "Server not initialized"),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn successful_call_roundtrip() {
        let server = deploy_calc("ok");
        server.create_instance().unwrap();
        let resp = call(
            &server,
            &SoapRequest::new("urn:Calc", "add")
                .arg("a", Value::Int(20))
                .arg("b", Value::Int(22)),
        );
        assert_eq!(resp, SoapResponse::Ok(Value::Int(42)));
        server.shutdown();
    }

    #[test]
    fn malformed_request_faults() {
        let server = deploy_calc("malformed");
        server.create_instance().unwrap();
        let resp = HttpClient::new()
            .post(
                &server.endpoint_url(),
                b"this is not xml".to_vec(),
                "text/xml",
            )
            .unwrap();
        assert_eq!(resp.status(), 500);
        match soap::decode_response(&resp.body_str()).unwrap() {
            SoapResponse::Fault(f) => assert_eq!(f.fault_string, "Malformed SOAP Request"),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn non_existent_method_faults_and_publishes() {
        let server = deploy_calc("stale");
        server.create_instance().unwrap();
        let resp = call(&server, &SoapRequest::new("urn:Calc", "ghost"));
        match resp {
            SoapResponse::Fault(f) => {
                assert!(f.is_non_existent_method());
                assert_eq!(f.detail.as_deref(), Some("ghost"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // After the fault returns, the published WSDL is current (§6).
        assert_eq!(
            server.publisher().published_version(),
            server.class().interface_version()
        );
        server.shutdown();
    }

    #[test]
    fn application_exception_wrapped_in_fault() {
        let server = deploy_calc("appex");
        let boom = server
            .class()
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .distributed(true)
                    .body_block(vec![jpie::expr::Stmt::Throw(Expr::lit("exploded"))]),
            )
            .unwrap();
        let _ = boom;
        server.create_instance().unwrap();
        let resp = call(&server, &SoapRequest::new("urn:Calc", "boom"));
        match resp {
            SoapResponse::Fault(f) => {
                assert_eq!(f.fault_string, "Application Exception");
                assert!(f.detail.unwrap().contains("exploded"));
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn redelivered_faulting_call_replays_the_cached_fault() {
        let server = deploy_calc("faultcache");
        server.class().add_field("n", TypeDesc::Int).unwrap();
        server
            .class()
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .distributed(true)
                    .body_block(vec![
                        jpie::expr::Stmt::SetField("n".into(), Expr::field("n") + Expr::lit(1)),
                        jpie::expr::Stmt::Throw(Expr::lit("exploded")),
                    ]),
            )
            .unwrap();
        server.create_instance().unwrap();

        // The same call id delivered twice — as a client retrying a lost
        // fault reply would.
        let id = obs::CallId::fresh();
        let mut body = Vec::new();
        soap::encode_request_with_id_into(
            "urn:Calc",
            "boom",
            std::iter::empty::<(&str, &Value)>(),
            Some(id),
            &mut body,
        );
        let post = || {
            HttpClient::new()
                .post(&server.endpoint_url(), body.clone(), "text/xml")
                .unwrap()
        };
        let first = post();
        let second = post();

        // Identical fault replies, but the side effect landed only once.
        assert_eq!(first.status(), 500);
        assert_eq!(first.body_str(), second.body_str());
        match soap::decode_response(&second.body_str()).unwrap() {
            SoapResponse::Fault(f) => {
                assert_eq!(f.fault_string, "Application Exception");
                assert!(f.detail.unwrap().contains("exploded"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let instance = server.instance().unwrap();
        assert_eq!(instance.field("n").unwrap(), Value::Int(1));
        assert_eq!(server.reply_cache_stats().hits, 1);
        server.shutdown();
    }

    #[test]
    fn wsdl_regenerated_after_live_change() {
        let server = deploy_calc("regen");
        server.create_instance().unwrap();
        let v0 = server.publisher().published_version();
        server
            .class()
            .add_method(MethodBuilder::new("mul", TypeDesc::Int).distributed(true))
            .unwrap();
        server.publisher().ensure_current();
        assert!(server.publisher().published_version() > v0);
        server.shutdown();
    }
}
