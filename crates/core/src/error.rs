use std::error::Error;
use std::fmt;

/// Error produced by the SDE middleware.
#[derive(Debug)]
pub enum SdeError {
    /// The underlying transport could not be set up.
    Transport(httpd::HttpError),
    /// The CORBA substrate failed.
    Corba(corba::CorbaError),
    /// The dynamic-class runtime failed.
    Jpie(jpie::JpieError),
    /// A server with this class name is already managed.
    AlreadyManaged(String),
    /// No managed server with this class name.
    NotManaged(String),
    /// The gateway is in the wrong state (e.g. instance already created).
    State(String),
}

impl fmt::Display for SdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdeError::Transport(e) => write!(f, "transport error: {e}"),
            SdeError::Corba(e) => write!(f, "corba error: {e}"),
            SdeError::Jpie(e) => write!(f, "dynamic class error: {e}"),
            SdeError::AlreadyManaged(c) => write!(f, "class {c} is already managed"),
            SdeError::NotManaged(c) => write!(f, "class {c} is not managed"),
            SdeError::State(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl Error for SdeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SdeError::Transport(e) => Some(e),
            SdeError::Corba(e) => Some(e),
            SdeError::Jpie(e) => Some(e),
            _ => None,
        }
    }
}

impl From<httpd::HttpError> for SdeError {
    fn from(e: httpd::HttpError) -> Self {
        SdeError::Transport(e)
    }
}

impl From<corba::CorbaError> for SdeError {
    fn from(e: corba::CorbaError) -> Self {
        SdeError::Corba(e)
    }
}

impl From<jpie::JpieError> for SdeError {
    fn from(e: jpie::JpieError) -> Self {
        SdeError::Jpie(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SdeError::AlreadyManaged("Calc".into());
        assert!(e.to_string().contains("Calc"));
        assert!(e.source().is_none());

        let e: SdeError = jpie::JpieError::NothingToUndo.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<SdeError>();
    }
}
