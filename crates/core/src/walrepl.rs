//! WAL replication: append-streaming a shard's [`VersionWal`] to a
//! follower on another machine.
//!
//! PR 5's durable version log makes crash-restart safe at the *same*
//! authority; replication generalises it to failover. A
//! [`WalReplicator`] serves the leader side: it accepts follower
//! connections, negotiates where each follower's copy ends, and streams
//! every durably-appended record as it lands. A [`WalFollower`] keeps a
//! local replica `VersionWal` in sync, acking each batch only after its
//! own fsync — so a record acked by the follower survives the death of
//! both the leader *and* the follower process.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! [u8 kind] [u64 arg] [u32 payload_len] [payload] [u32 crc32(head ++ payload)]
//! ```
//!
//! | kind | name   | sender   | arg                 | payload            |
//! |------|--------|----------|---------------------|--------------------|
//! | 1    | HELLO  | follower | replica durable len | u32 replica crc    |
//! | 2    | APPEND | leader   | leader offset       | record bytes       |
//! | 3    | ACK    | follower | new durable len     | —                  |
//! | 4    | RESYNC | leader   | 0                   | whole log bytes    |
//! | 5    | NACK   | follower | replica durable len | —                  |
//!
//! Gap detection: APPEND carries the byte offset the records start at;
//! a follower whose replica is shorter NACKs and the leader falls back
//! to a full RESYNC. Duplicate delivery after a reconnect (the leader
//! resends from an offset the follower already has) is acked
//! idempotently without touching the file. A follower *ahead* of the
//! leader — the leader lost its disk and restarted empty — refuses the
//! divergent stream at handshake and takes a full resync, because a
//! "longer" replica that diverges from the leader's prefix is not more
//! durable, it is wrong.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use httpd::transport::{connect_with, Listener, Stream};

use crate::wal::{crc32, VersionWal};

/// Frame kinds.
const HELLO: u8 = 1;
const APPEND: u8 = 2;
const ACK: u8 = 3;
const RESYNC: u8 = 4;
const NACK: u8 = 5;

/// Upper bound on a frame payload: a whole log is streamed in one
/// RESYNC frame, so this must comfortably exceed any realistic log.
const MAX_FRAME: usize = 64 << 20;

/// How long a blocking read waits before re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

fn write_frame(w: &mut Stream, kind: u8, arg: u64, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(13 + payload.len() + 4);
    frame.push(kind);
    frame.extend_from_slice(&arg.to_be_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_be_bytes());
    w.write_all(&frame)
}

/// Reads one frame, waiting until `stop` is raised. Read timeouts poll
/// the flag; any other error (or a raised flag) aborts the connection.
fn read_frame(r: &mut Stream, stop: &AtomicBool) -> std::io::Result<(u8, u64, Vec<u8>)> {
    let mut fixed = [0u8; 13];
    read_exact_polling(r, &mut fixed, stop)?;
    let kind = fixed[0];
    let arg = u64::from_be_bytes(fixed[1..9].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(fixed[9..13].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("replication frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_exact_polling(r, &mut payload, stop)?;
    let mut crc_bytes = [0u8; 4];
    read_exact_polling(r, &mut crc_bytes, stop)?;
    let mut check = Vec::with_capacity(13 + len);
    check.extend_from_slice(&fixed);
    check.extend_from_slice(&payload);
    if crc32(&check) != u32::from_be_bytes(crc_bytes) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "replication frame checksum mismatch",
        ));
    }
    Ok((kind, arg, payload))
}

/// `read_exact` that re-checks `stop` on every read timeout. The stream
/// must have a read timeout installed.
fn read_exact_polling(r: &mut Stream, buf: &mut [u8], stop: &AtomicBool) -> std::io::Result<()> {
    let mut at = 0usize;
    while at < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "replication shutting down",
            ));
        }
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "replication peer closed",
                ))
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ------------------------------------------------------------- leader

/// Leader side: streams a [`VersionWal`] to any number of followers.
pub struct WalReplicator {
    listener: Arc<Listener>,
    addr: String,
    stop: Arc<AtomicBool>,
    /// Highest durable length any follower has acked.
    acked: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WalReplicator {
    /// Binds `addr` and starts accepting followers; each gets its own
    /// streaming thread fed by the WAL's growth condvar.
    ///
    /// # Errors
    ///
    /// Fails if `addr` cannot be bound.
    pub fn serve(wal: Arc<VersionWal>, addr: &str) -> Result<WalReplicator, httpd::HttpError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let bound = listener.local_addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let acked = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let listener = listener.clone();
            let stop = stop.clone();
            let acked = acked.clone();
            std::thread::Builder::new()
                .name("wal-repl-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let Ok(stream) = listener.accept() else { break };
                        let wal = wal.clone();
                        let stop = stop.clone();
                        let acked = acked.clone();
                        let _ = std::thread::Builder::new()
                            .name("wal-repl-stream".into())
                            .spawn(move || {
                                if let Err(e) = stream_to_follower(&wal, stream, &stop, &acked) {
                                    obs::trace::event(
                                        "sde::walrepl",
                                        "leader-stream-end",
                                        format!("error={e}"),
                                    );
                                }
                            });
                    }
                })
                .expect("spawn wal-repl accept thread")
        };
        Ok(WalReplicator {
            listener,
            addr: bound,
            stop,
            acked,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address followers connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Highest durable length any follower has acked (fsynced).
    pub fn acked_len(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }

    /// Stops accepting and tears down streaming threads.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.listener.close();
    }
}

impl Drop for WalReplicator {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// One follower connection on the leader: handshake, then stream
/// appends as the log grows.
fn stream_to_follower(
    wal: &VersionWal,
    mut stream: Stream,
    stop: &AtomicBool,
    acked: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let (kind, follower_len, payload) = read_frame(&mut stream, stop)?;
    if kind != HELLO || payload.len() != 4 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "expected HELLO",
        ));
    }
    let follower_crc = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes"));

    // Negotiate the resume point. The follower's copy must be a prefix
    // of ours — same length bound AND same bytes (checked by crc).
    let durable = wal.durable_len();
    let prefix_ok = follower_len <= durable
        && crc32(&wal.read_from(0)?[..follower_len as usize]) == follower_crc;
    let mut sent = if prefix_ok {
        follower_len
    } else {
        full_resync(wal, &mut stream, stop)?
    };
    obs::registry().counter("wal_repl_followers_total").inc();
    obs::trace::event(
        "sde::walrepl",
        "follower-attached",
        format!(
            "follower_len={follower_len} resume_at={sent} resynced={}",
            !prefix_ok
        ),
    );

    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let durable = wal.wait_for_growth(sent, POLL);
        if durable <= sent {
            continue;
        }
        let batch = wal.read_from(sent)?;
        write_frame(&mut stream, APPEND, sent, &batch)?;
        obs::registry()
            .counter("wal_repl_records_sent_total")
            .add(batch.len() as u64);
        match read_frame(&mut stream, stop)? {
            (ACK, new_len, _) => {
                sent = new_len;
                acked.fetch_max(new_len, Ordering::SeqCst);
            }
            (NACK, _, _) => {
                // Gap or local write failure on the follower: start over
                // from a coherent state.
                sent = full_resync(wal, &mut stream, stop)?;
            }
            (kind, ..) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected frame kind {kind} awaiting ack"),
                ));
            }
        }
    }
}

/// Ships the whole log and waits for the fsync ack. Returns the acked
/// length.
fn full_resync(wal: &VersionWal, stream: &mut Stream, stop: &AtomicBool) -> std::io::Result<u64> {
    let all = wal.read_from(0)?;
    write_frame(stream, RESYNC, 0, &all)?;
    obs::registry().counter("wal_repl_resyncs_total").inc();
    match read_frame(stream, stop)? {
        (ACK, new_len, _) => Ok(new_len),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "follower refused full resync",
        )),
    }
}

// ----------------------------------------------------------- follower

/// Follower status shared with observers (the router's health/REPL
/// surfaces read replication lag from here).
#[derive(Debug, Default)]
struct FollowerShared {
    durable_len: AtomicU64,
    records: AtomicU64,
    connected: AtomicBool,
    resyncs: AtomicU64,
}

/// Follower side: keeps a local replica [`VersionWal`] in sync with a
/// leader, reconnecting with backoff until stopped.
pub struct WalFollower {
    stop: Arc<AtomicBool>,
    shared: Arc<FollowerShared>,
    replica_path: PathBuf,
    thread: Option<JoinHandle<()>>,
}

impl WalFollower {
    /// Starts replicating from the leader at `leader_addr` into the
    /// replica log at `replica_path`.
    pub fn start(leader_addr: &str, replica_path: &std::path::Path) -> WalFollower {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(FollowerShared::default());
        let thread = {
            let leader_addr = leader_addr.to_string();
            let replica_path = replica_path.to_path_buf();
            let stop = stop.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("wal-repl-follower".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match follow_once(&leader_addr, &replica_path, &stop, &shared) {
                            Ok(()) => break, // clean stop
                            Err(e) => {
                                shared.connected.store(false, Ordering::SeqCst);
                                if !stop.load(Ordering::SeqCst) {
                                    obs::trace::event(
                                        "sde::walrepl",
                                        "follower-reconnect",
                                        format!("error={e}"),
                                    );
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                            }
                        }
                    }
                    shared.connected.store(false, Ordering::SeqCst);
                })
                .expect("spawn wal follower thread")
        };
        WalFollower {
            stop,
            shared,
            replica_path: replica_path.to_path_buf(),
            thread: Some(thread),
        }
    }

    /// Bytes of the replica's durable prefix.
    pub fn durable_len(&self) -> u64 {
        self.shared.durable_len.load(Ordering::SeqCst)
    }

    /// Records applied to the replica.
    pub fn records_applied(&self) -> u64 {
        self.shared.records.load(Ordering::SeqCst)
    }

    /// Whether the follower currently holds a leader connection.
    pub fn is_connected(&self) -> bool {
        self.shared.connected.load(Ordering::SeqCst)
    }

    /// Full resyncs taken (0 in healthy steady state).
    pub fn resyncs(&self) -> u64 {
        self.shared.resyncs.load(Ordering::SeqCst)
    }

    /// Where the replica log lives (handed to
    /// [`crate::SdeManager::with_authority`] at promotion).
    pub fn replica_path(&self) -> &std::path::Path {
        &self.replica_path
    }

    /// Catch-up mode: blocks until the replica's durable prefix reaches
    /// `target_len` bytes (or `timeout` passes). A planned migration
    /// attaches a temporary follower to the source's replicator while
    /// the source keeps serving, then — once the source is quiescent and
    /// its log can no longer grow — waits here for exact convergence.
    pub fn wait_caught_up(&self, target_len: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.durable_len() < target_len {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops replicating and joins the worker thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WalFollower {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One leader session: connect, handshake, apply frames until error or
/// stop.
fn follow_once(
    leader_addr: &str,
    replica_path: &std::path::Path,
    stop: &AtomicBool,
    shared: &FollowerShared,
) -> std::io::Result<()> {
    let mut stream = connect_with(leader_addr, Some(POLL))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::ConnectionRefused, e.to_string()))?;
    // Opening replays (and truncates any torn tail), so the durable
    // length we advertise is exactly the intact prefix.
    let wal = VersionWal::open(replica_path)?;
    let durable = wal.durable_len();
    let crc = wal.prefix_crc()?;
    write_frame(&mut stream, HELLO, durable, &crc.to_be_bytes())?;
    shared.durable_len.store(durable, Ordering::SeqCst);
    shared.records.store(wal.record_count(), Ordering::SeqCst);
    shared.connected.store(true, Ordering::SeqCst);

    loop {
        let (kind, arg, payload) = read_frame(&mut stream, stop)?;
        match kind {
            APPEND => {
                let durable = wal.durable_len();
                if arg == durable {
                    match wal.append_raw(&payload) {
                        Ok(new_len) => {
                            shared.durable_len.store(new_len, Ordering::SeqCst);
                            shared.records.store(wal.record_count(), Ordering::SeqCst);
                            obs::registry().counter("wal_repl_acks_total").inc();
                            write_frame(&mut stream, ACK, new_len, &[])?;
                        }
                        Err(e) => {
                            obs::trace::event(
                                "sde::walrepl",
                                "follower-append-failed",
                                format!("error={e}"),
                            );
                            write_frame(&mut stream, NACK, wal.durable_len(), &[])?;
                        }
                    }
                } else if arg + payload.len() as u64 <= durable {
                    // Duplicate delivery after a reconnect: the records
                    // are already durable here. Ack idempotently.
                    obs::registry().counter("wal_repl_duplicates_total").inc();
                    write_frame(&mut stream, ACK, durable, &[])?;
                } else {
                    // Gap: the leader's cursor is ahead of our replica.
                    write_frame(&mut stream, NACK, durable, &[])?;
                }
            }
            RESYNC => {
                let new_len = wal.reset_to(&payload)?;
                shared.durable_len.store(new_len, Ordering::SeqCst);
                shared.records.store(wal.record_count(), Ordering::SeqCst);
                shared.resyncs.fetch_add(1, Ordering::SeqCst);
                write_frame(&mut stream, ACK, new_len, &[])?;
            }
            kind => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected frame kind {kind} from leader"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("live-rmi-walrepl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn open_wal(path: &Path) -> Arc<VersionWal> {
        Arc::new(VersionWal::open(path).expect("open wal"))
    }

    #[test]
    fn streams_appends_to_follower_with_fsync_acks() {
        let dir = temp_dir("stream");
        let leader = open_wal(&dir.join("leader.wal"));
        leader.append("/Calc.wsdl", 3).unwrap();
        let repl = WalReplicator::serve(leader.clone(), "mem://walrepl-stream").unwrap();
        let follower = WalFollower::start(repl.addr(), &dir.join("replica.wal"));
        // Pre-connection records arrive via the negotiated resume-at-0.
        wait_until("initial catch-up", || {
            follower.durable_len() == leader.durable_len()
        });
        // Live appends stream through and are acked only after fsync.
        leader.append("/Calc.wsdl", 7).unwrap();
        leader.append("/Calc.idl", 5).unwrap();
        wait_until("live catch-up", || {
            follower.durable_len() == leader.durable_len()
        });
        wait_until("leader sees acks", || {
            repl.acked_len() == leader.durable_len()
        });
        assert_eq!(follower.records_applied(), 3);
        assert_eq!(follower.resyncs(), 0, "healthy stream never resyncs");
        // The replica is independently replayable.
        follower.stop();
        let replica = open_wal(&dir.join("replica.wal"));
        assert_eq!(replica.floor("/Calc.wsdl"), Some(7));
        assert_eq!(replica.floor("/Calc.idl"), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_on_follower_is_truncated_and_resumed() {
        let dir = temp_dir("torn");
        let leader = open_wal(&dir.join("leader.wal"));
        leader.append("/A.wsdl", 1).unwrap();
        leader.append("/A.wsdl", 2).unwrap();
        // The replica already holds the first record (record encoding is
        // deterministic, so the bytes match the leader's prefix) plus a
        // torn half-record from a crash mid-replication.
        let replica_path = dir.join("replica.wal");
        {
            let replica = open_wal(&replica_path);
            replica.append("/A.wsdl", 1).unwrap();
        }
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&replica_path)
                .unwrap();
            f.write_all(&[0, 0, 0, 12, 9, 9]).unwrap();
        }
        let repl = WalReplicator::serve(leader.clone(), "mem://walrepl-torn").unwrap();
        let follower = WalFollower::start(repl.addr(), &replica_path);
        wait_until("catch-up past torn tail", || {
            follower.durable_len() == leader.durable_len()
        });
        assert_eq!(
            follower.resyncs(),
            0,
            "intact prefix must resume as an append stream, not a resync"
        );
        follower.stop();
        let replica = open_wal(&replica_path);
        assert_eq!(replica.floor("/A.wsdl"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_delivery_after_reconnect_is_acked_idempotently() {
        let dir = temp_dir("dup");
        // Pre-encode one record by writing it through a throwaway log.
        let donor = open_wal(&dir.join("donor.wal"));
        donor.append("/B.idl", 4).unwrap();
        let record = donor.read_from(0).unwrap();

        let listener = Listener::bind("mem://walrepl-dup").unwrap();
        let follower =
            WalFollower::start(&listener.local_addr().to_string(), &dir.join("replica.wal"));
        let stop = AtomicBool::new(false);
        let mut leader_side = listener.accept().unwrap();
        leader_side.set_read_timeout(Some(POLL)).unwrap();
        let (kind, len, _) = read_frame(&mut leader_side, &stop).unwrap();
        assert_eq!((kind, len), (HELLO, 0));
        // First delivery applies...
        write_frame(&mut leader_side, APPEND, 0, &record).unwrap();
        let (kind, acked, _) = read_frame(&mut leader_side, &stop).unwrap();
        assert_eq!((kind, acked), (ACK, record.len() as u64));
        // ...a replayed delivery of the same offset is acked without
        // growing the replica.
        write_frame(&mut leader_side, APPEND, 0, &record).unwrap();
        let (kind, acked, _) = read_frame(&mut leader_side, &stop).unwrap();
        assert_eq!((kind, acked), (ACK, record.len() as u64));
        assert_eq!(follower.records_applied(), 1, "duplicate must not re-apply");
        // A gap (offset beyond the replica) is refused with NACK.
        write_frame(&mut leader_side, APPEND, 10_000, &record).unwrap();
        let (kind, have, _) = read_frame(&mut leader_side, &stop).unwrap();
        assert_eq!((kind, have), (NACK, record.len() as u64));
        follower.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_ahead_of_resyncing_leader_takes_full_resync() {
        let dir = temp_dir("ahead");
        // The leader lost its disk and restarted with a shorter log.
        let leader = open_wal(&dir.join("leader.wal"));
        leader.append("/C.wsdl", 1).unwrap();
        // The follower's replica is LONGER (it replicated the previous
        // incarnation): it must refuse to treat its extra records as
        // durable and take the leader's truth wholesale.
        let replica_path = dir.join("replica.wal");
        {
            let replica = open_wal(&replica_path);
            replica.append("/C.wsdl", 1).unwrap();
            replica.append("/C.wsdl", 8).unwrap();
            replica.append("/C.idl", 9).unwrap();
        }
        let repl = WalReplicator::serve(leader.clone(), "mem://walrepl-ahead").unwrap();
        let follower = WalFollower::start(repl.addr(), &replica_path);
        wait_until("full resync", || follower.resyncs() >= 1);
        wait_until("converged", || {
            follower.durable_len() == leader.durable_len()
        });
        assert_eq!(follower.records_applied(), 1);
        follower.stop();
        let replica = open_wal(&replica_path);
        assert_eq!(replica.floor("/C.wsdl"), Some(1), "leader's truth wins");
        assert_eq!(replica.floor("/C.idl"), None, "divergent tail discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resync_converges_while_leader_concurrently_appends() {
        let dir = temp_dir("live-resync");
        let leader = open_wal(&dir.join("leader.wal"));
        leader.append("/D.wsdl", 1).unwrap();
        leader.append("/D.wsdl", 2).unwrap();
        // A divergent replica forces a full resync at handshake — while
        // a writer keeps appending to the leader the whole time. The
        // follower must converge through the normal append stream after
        // the resync snapshot, not ping-pong NACK/RESYNC forever.
        let replica_path = dir.join("replica.wal");
        {
            let replica = open_wal(&replica_path);
            replica.append("/Other.idl", 99).unwrap();
        }
        let repl = WalReplicator::serve(leader.clone(), "mem://walrepl-live-resync").unwrap();
        let writer = {
            let leader = leader.clone();
            std::thread::spawn(move || {
                for v in 3..40u64 {
                    leader.append("/D.wsdl", v).unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let follower = WalFollower::start(repl.addr(), &replica_path);
        writer.join().unwrap();
        wait_until("converged after concurrent appends", || {
            follower.durable_len() == leader.durable_len()
        });
        assert_eq!(
            follower.resyncs(),
            1,
            "one snapshot, then appends — not a NACK loop"
        );
        assert_eq!(follower.records_applied(), leader.record_count());
        follower.stop();
        let replica = open_wal(&replica_path);
        assert_eq!(replica.floor("/D.wsdl"), Some(39));
        assert_eq!(replica.floor("/Other.idl"), None, "divergence discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catch_up_mode_reaches_exact_convergence_once_leader_quiesces() {
        let dir = temp_dir("catchup");
        let leader = open_wal(&dir.join("leader.wal"));
        for v in 1..=10u64 {
            leader.append("/E.wsdl", v).unwrap();
        }
        let repl = WalReplicator::serve(leader.clone(), "mem://walrepl-catchup").unwrap();
        // The migration pattern: attach a temporary catch-up follower
        // while the leader still serves (and appends)...
        let follower = WalFollower::start(repl.addr(), &dir.join("catchup.wal"));
        leader.append("/E.wsdl", 11).unwrap();
        // ...then, after drain quiescence freezes the log, wait for the
        // exact final length.
        let target = leader.durable_len();
        assert!(follower.wait_caught_up(target, Duration::from_secs(5)));
        assert_eq!(follower.durable_len(), target);
        follower.stop();
        let replica = open_wal(&dir.join("catchup.wal"));
        assert_eq!(replica.floor("/E.wsdl"), Some(11));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promotion_replays_floors_for_missing_interface_documents() {
        let dir = temp_dir("missing-doc");
        // A replicated log naming two classes — but only one will exist
        // on the promoted follower (the other's source was never
        // shipped). Promotion must still succeed and floor the class it
        // does deploy.
        {
            let wal = open_wal(&dir.join("replica.wal"));
            wal.append("/Real.wsdl", 11).unwrap();
            wal.append("/Ghost.wsdl", 42).unwrap();
        }
        let manager = crate::SdeManager::with_authority("mem://walrepl-promote", &dir).unwrap();
        let class = jpie::parse::parse_class(
            "class Real { field int n; distributed int get() { return this.n; } }",
        )
        .unwrap();
        manager.deploy_soap(class.clone()).unwrap();
        assert!(
            class.interface_version() >= 11,
            "deployed class floored at the replicated version"
        );
        // The ghost's floor stays replayable for a later deploy.
        let wal = manager.wal().expect("wal configured");
        assert_eq!(wal.floor("/Ghost.wsdl"), Some(42));
        manager.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
