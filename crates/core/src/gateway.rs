//! Technology-independent gateway machinery shared by the SOAP and CORBA
//! subsystems — the generalization the paper's class hierarchy captures in
//! Fig 6 (`SDEServer` / `DLPublisher` / `CallHandler` with a SOAP and a
//! CORBA specialization of each).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use jpie::{ClassHandle, Instance, JpieError, SignatureView, Value};
use obs::events::VersionEventKind;
use obs::metrics::{Counter, Histogram};
use obs::sync::{Mutex, RwLock};

use crate::error::SdeError;
use crate::publish::PublisherCore;
use crate::replycache::ReplyCache;

/// Which RMI technology a gateway speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technology {
    /// SOAP over HTTP (Web Services).
    Soap,
    /// CORBA-RMI over IIOP.
    Corba,
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technology::Soap => f.write_str("SOAP"),
            Technology::Corba => f.write_str("CORBA"),
        }
    }
}

/// The Fig 6 `SDEServer` role: the common surface of a managed server
/// gateway, independent of technology.
pub trait SdeServerGateway: Send + Sync {
    /// The dynamic class behind the gateway.
    fn class(&self) -> &ClassHandle;
    /// Which technology this gateway serves.
    fn technology(&self) -> Technology;
    /// URL of the published interface description (WSDL or CORBA-IDL).
    fn interface_url(&self) -> String;
    /// The DL Publisher maintaining the published description.
    fn publisher(&self) -> &Arc<PublisherCore>;
    /// Creates the single live instance, activating the call handler.
    ///
    /// # Errors
    ///
    /// Fails if an instance already exists (§5.4).
    fn create_instance(&self) -> Result<Arc<Instance>, SdeError>;
    /// Stops the endpoint and publisher.
    fn shutdown(&self);
}

/// Per-handler counters (observable in benchmarks and experiments).
#[derive(Debug, Default)]
pub struct HandlerMetrics {
    /// Total requests received.
    pub requests: AtomicU64,
    /// Requests completed with a result.
    pub ok: AtomicU64,
    /// Requests answered with a fault/exception of any kind.
    pub faults: AtomicU64,
    /// Requests that hit the §5.7 stale-method path.
    pub stale: AtomicU64,
}

impl HandlerMetrics {
    /// Snapshot of (requests, ok, faults, stale).
    ///
    /// `Relaxed` loads (matching the `Relaxed` increments on the dispatch
    /// path): these atomics are pure statistics — no other data is
    /// published through them, so only the counters' own atomicity is
    /// required, not cross-variable ordering.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.faults.load(Ordering::Relaxed),
            self.stale.load(Ordering::Relaxed),
        )
    }
}

/// Global-registry handles mirroring [`HandlerMetrics`], resolved once per
/// gateway so the dispatch path stays atomic-ops-only. The per-instance
/// counters stay authoritative for experiments (they reset with the
/// gateway); these aggregate across all gateways of a class for
/// `/metrics` and the REPL.
struct GatewayObs {
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    faults: Arc<Counter>,
    stale: Arc<Counter>,
    dispatch_ns: Arc<Histogram>,
    /// `sde_method_calls_total{class,method}` handles, created on first
    /// call of each method.
    per_method: RwLock<HashMap<String, Arc<Counter>>>,
}

impl GatewayObs {
    fn for_class(class: &str) -> GatewayObs {
        let r = obs::registry();
        let labels = [("class", class)];
        GatewayObs {
            requests: r.counter_with("sde_requests_total", &labels),
            ok: r.counter_with("sde_ok_total", &labels),
            faults: r.counter_with("sde_faults_total", &labels),
            stale: r.counter_with("sde_stale_total", &labels),
            dispatch_ns: r.histogram_with("sde_dispatch_ns", &labels),
            per_method: RwLock::new(HashMap::new()),
        }
    }

    fn method_counter(&self, class: &str, method: &str) -> Arc<Counter> {
        if let Some(c) = self.per_method.read().get(method) {
            return c.clone();
        }
        // Two threads can both miss the read-side check; registering via
        // the map entry under the write lock makes exactly one handle
        // win — the loser never creates a second registration.
        self.per_method
            .write()
            .entry(method.to_string())
            .or_insert_with(|| {
                obs::registry().counter_with(
                    "sde_method_calls_total",
                    &[("class", class), ("method", method)],
                )
            })
            .clone()
    }
}

/// Why an RMI call could not be completed normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeFailure {
    /// No live instance yet — the handler is "inactive" (§5.1.3) and
    /// answers "Server not initialized".
    NotInitialized,
    /// The call matches no method in the current distributed interface —
    /// the "Non existent Method" condition that triggers §5.7.
    NoMatch,
    /// The method ran and threw; the message is wrapped in a SOAP Fault /
    /// generic CORBA exception.
    AppException(String),
}

/// State shared between a gateway, its call handler, and the SDE Manager.
pub struct GatewayCore {
    class: ClassHandle,
    /// Class name resolved once — the dispatch path must not clone the
    /// name `String` out of the class lock per call.
    class_name: String,
    /// Epoch-keyed snapshot of the distributed signatures, so
    /// name→method resolution reuses one `Arc` between edits (see
    /// [`ClassHandle::edit_epoch`]).
    dispatch_cache: Mutex<Option<(u64, Arc<Vec<SignatureView>>)>>,
    instance: RwLock<Option<Arc<Instance>>>,
    /// §5.7: while a stale call forces publication, processing of incoming
    /// messages is stalled. Normal calls take the read side; the stale
    /// path takes the write side.
    stall: RwLock<()>,
    metrics: HandlerMetrics,
    o: GatewayObs,
    /// Invoked on a stale call *after* processing stalls; wired by the
    /// SDE Manager to prompt the DL Publisher (§5.7's
    /// handler → manager → publisher notification chain).
    stale_notify: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
    /// Whether the §5.7 reactive mechanism is enabled. `false` models the
    /// *active publishing* regime of Fig 7 (publication and RMI paths
    /// fully independent), used by the consistency-matrix experiment.
    reactive: AtomicBool,
    /// Whether a stale call is currently stalling processing and forcing
    /// publication. Concurrent stale calls piggyback on that pass
    /// instead of queueing their own write-stall: a steady stream of
    /// stall writers would starve the (reader-side) call path.
    forcing: AtomicBool,
    /// At-most-once execution: replies to id-carrying calls, keyed by
    /// call id, consulted by the call handlers before dispatching.
    reply_cache: ReplyCache,
}

impl std::fmt::Debug for GatewayCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayCore")
            .field("class", &self.class.name())
            .field("active", &self.instance.read().is_some())
            .finish_non_exhaustive()
    }
}

impl GatewayCore {
    /// Creates an inactive core for `class`.
    pub fn new(class: ClassHandle) -> Arc<GatewayCore> {
        let class_name = class.name();
        let o = GatewayObs::for_class(&class_name);
        let reply_cache = ReplyCache::for_class(&class_name);
        Arc::new(GatewayCore {
            class,
            class_name,
            dispatch_cache: Mutex::new(None),
            instance: RwLock::new(None),
            stall: RwLock::new(()),
            metrics: HandlerMetrics::default(),
            o,
            stale_notify: RwLock::new(None),
            reactive: AtomicBool::new(true),
            forcing: AtomicBool::new(false),
            reply_cache,
        })
    }

    /// The gateway's reply cache (consulted by the SOAP and CORBA call
    /// handlers; inspectable from the REPL).
    pub fn reply_cache(&self) -> &ReplyCache {
        &self.reply_cache
    }

    /// The dynamic class.
    pub fn class(&self) -> &ClassHandle {
        &self.class
    }

    /// Handler metrics.
    pub fn metrics(&self) -> &HandlerMetrics {
        &self.metrics
    }

    /// Wires the stale-call notification (SDE Manager → DL Publisher).
    pub fn set_stale_notify(&self, notify: Arc<dyn Fn() + Send + Sync>) {
        *self.stale_notify.write() = Some(notify);
    }

    /// Creates the single live instance (activates the call handler).
    ///
    /// # Errors
    ///
    /// Fails if an instance already exists.
    pub fn create_instance(&self) -> Result<Arc<Instance>, SdeError> {
        let mut slot = self.instance.write();
        if slot.is_some() {
            return Err(SdeError::State(format!(
                "class {} already has a live instance",
                self.class.name()
            )));
        }
        let instance = Arc::new(self.class.instantiate()?);
        *slot = Some(instance.clone());
        Ok(instance)
    }

    /// The live instance, if created.
    pub fn instance(&self) -> Option<Arc<Instance>> {
        self.instance.read().clone()
    }

    /// Adopts an existing live instance — used by the live technology
    /// interchange (§8 future work): the new gateway serves the *same*
    /// instance the old one did, preserving all field state.
    pub fn adopt_instance(&self, instance: Arc<Instance>) {
        *self.instance.write() = Some(instance);
    }

    /// Drops the live instance (deactivates the handler).
    pub fn clear_instance(&self) {
        *self.instance.write() = None;
    }

    /// Runs one RMI call through the full §5.1.3/§5.2.3 logic. `args` are
    /// named when the wire format carries names (SOAP), unnamed (empty
    /// names) otherwise (CORBA).
    pub fn dispatch(&self, method: &str, args: &[(String, Value)]) -> Result<Value, InvokeFailure> {
        let span = obs::trace::Span::timed(self.o.dispatch_ns.clone());
        let dispatch_span = obs::tracectx::child("dispatch");
        let out = self.dispatch_inner(method, args);
        if let Err(e) = &out {
            dispatch_span.fail(match e {
                InvokeFailure::NotInitialized => "server-not-initialized",
                InvokeFailure::NoMatch => "non-existent-method",
                InvokeFailure::AppException(_) => "application-exception",
            });
        }
        drop(dispatch_span);
        span.finish();
        out
    }

    fn dispatch_inner(
        &self,
        method: &str,
        args: &[(String, Value)],
    ) -> Result<Value, InvokeFailure> {
        // Relaxed: pure statistics (see [`HandlerMetrics::snapshot`]).
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.o.requests.inc();
        // Normal processing holds the stall read lock: it is blocked while
        // a stale call is forcing publication (§5.7 "stalls the processing
        // of incoming messages").
        let traced = obs::tracectx::has_active();
        let stall_wait_start = if traced { obs::uptime_micros() } else { 0 };
        let _processing = self.stall.read();
        if traced {
            let stall_waited = obs::uptime_micros().saturating_sub(stall_wait_start);
            if stall_waited > 0 {
                obs::tracectx::annotate_active(
                    "stall_wait_us",
                    obs::tracectx::AnnValue::U64(stall_waited),
                );
            }
        }

        let Some(instance) = self.instance() else {
            self.metrics.faults.fetch_add(1, Ordering::Relaxed);
            self.o.faults.inc();
            return Err(InvokeFailure::NotInitialized);
        };

        let Some(bound) = self.match_distributed(method, args) else {
            drop(_processing);
            return Err(self.stale_path(method));
        };
        self.o.method_counter(&self.class_name, method).inc();

        match instance.invoke_distributed(method, &bound) {
            Ok(v) => {
                self.metrics.ok.fetch_add(1, Ordering::Relaxed);
                self.o.ok.inc();
                Ok(v)
            }
            // The method disappeared between matching and invocation (a
            // live edit raced us): same stale treatment.
            Err(JpieError::NoSuchMethod(_) | JpieError::ArgumentMismatch(_)) => {
                drop(_processing);
                Err(self.stale_path(method))
            }
            Err(e) => {
                self.metrics.faults.fetch_add(1, Ordering::Relaxed);
                self.o.faults.inc();
                Err(InvokeFailure::AppException(e.to_string()))
            }
        }
    }

    /// §5.7: the call names no current method. Stall message processing,
    /// notify the manager (which prompts the DL Publisher to get the
    /// published description current), then report the stale condition.
    fn stale_path(&self, method: &str) -> InvokeFailure {
        self.metrics.stale.fetch_add(1, Ordering::Relaxed);
        self.metrics.faults.fetch_add(1, Ordering::Relaxed);
        self.o.stale.inc();
        self.o.faults.inc();
        let class = self.class.name();
        obs::trace::event(
            "sde::gateway",
            "stale-call",
            format!("class={class} method={method}"),
        );
        obs::events::record(
            &class,
            VersionEventKind::StaleCall,
            self.class.interface_version(),
        );
        if !self.reactive.load(Ordering::SeqCst) {
            // Active-publishing mode (Fig 7): no synchronization between
            // the update path and the call path.
            return InvokeFailure::NoMatch;
        }
        let notify = self.stale_notify.read().clone();
        if let Some(notify) = notify {
            if self
                .forcing
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // First stale call: stall processing (§5.7 "stalls the
                // processing of incoming messages") and force publication.
                let _stalled = self.stall.write();
                notify();
                self.forcing.store(false, Ordering::SeqCst);
            } else {
                // Another stale call is already stalling the gateway.
                // Piggyback on its pass — `ensure_current` blocks until
                // the interface document is current, which is all §6
                // needs — without queueing another writer on the stall
                // lock: a continuous stream of writers would starve the
                // reader-side call path under load.
                notify();
            }
        }
        InvokeFailure::NoMatch
    }

    /// Enables or disables the §5.7 reactive forced publication. Disabling
    /// reproduces the *active publishing* regime of Fig 7 for the
    /// consistency experiments; production SDE always runs reactive
    /// (Fig 8).
    pub fn set_reactive(&self, reactive: bool) {
        self.reactive.store(reactive, Ordering::SeqCst);
    }

    /// Matches a call against the current distributed interface, binding
    /// arguments by name (when named) or position, with numeric widening.
    /// `None` means "no method in the current server interface matches" —
    /// the paper's stale-call condition.
    fn match_distributed(&self, method: &str, args: &[(String, Value)]) -> Option<Vec<Value>> {
        let sigs = self.distributed_view();
        let sig = sigs.iter().find(|s| s.name == method)?;
        bind_args(sig, args)
    }

    /// The current distributed-interface snapshot, cached by edit epoch:
    /// between live edits every dispatch reuses one shared `Arc` (a
    /// relaxed epoch load + small mutex), and the first call after an
    /// edit refetches through the class lock — so resolution always sees
    /// the current interface, clone-free in the steady state.
    pub(crate) fn distributed_view(&self) -> Arc<Vec<SignatureView>> {
        let epoch = self.class.edit_epoch();
        let mut cache = self.dispatch_cache.lock();
        if let Some((cached_epoch, sigs)) = cache.as_ref() {
            if *cached_epoch == epoch {
                return sigs.clone();
            }
        }
        let (epoch, sigs) = self.class.distributed_signatures_shared();
        *cache = Some((epoch, sigs.clone()));
        sigs
    }
}

/// Binds wire arguments to a signature: by name if every parameter name is
/// present among the argument names, otherwise positionally. Returns
/// `None` on arity or type mismatch.
pub(crate) fn bind_args(sig: &SignatureView, args: &[(String, Value)]) -> Option<Vec<Value>> {
    if args.len() != sig.params.len() {
        return None;
    }
    let by_name = sig
        .params
        .iter()
        .all(|(_, name, _)| args.iter().any(|(an, _)| an == name));
    let mut bound = Vec::with_capacity(args.len());
    for (i, (_, pname, pty)) in sig.params.iter().enumerate() {
        let value = if by_name {
            &args.iter().find(|(an, _)| an == pname).expect("checked").1
        } else {
            &args[i].1
        };
        bound.push(value.widen_to(pty)?);
    }
    Some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpie::expr::Expr;
    use jpie::{MethodBuilder, TypeDesc};

    fn calc_core() -> Arc<GatewayCore> {
        let class = ClassHandle::new("Calc");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        GatewayCore::new(class)
    }

    fn named(args: &[(&str, Value)]) -> Vec<(String, Value)> {
        args.iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn inactive_until_instance_created() {
        let core = calc_core();
        let err = core
            .dispatch("add", &named(&[("a", Value::Int(1)), ("b", Value::Int(2))]))
            .unwrap_err();
        assert_eq!(err, InvokeFailure::NotInitialized);
        core.create_instance().unwrap();
        let v = core
            .dispatch("add", &named(&[("a", Value::Int(1)), ("b", Value::Int(2))]))
            .unwrap();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn single_instance_enforced() {
        let core = calc_core();
        core.create_instance().unwrap();
        assert!(core.create_instance().is_err());
        core.clear_instance();
        assert!(core.create_instance().is_ok());
    }

    #[test]
    fn named_binding_is_order_independent() {
        let core = calc_core();
        core.create_instance().unwrap();
        let v = core
            .dispatch(
                "add",
                &named(&[("b", Value::Int(10)), ("a", Value::Int(1))]),
            )
            .unwrap();
        assert_eq!(v, Value::Int(11));
    }

    #[test]
    fn positional_binding_when_unnamed() {
        let core = calc_core();
        core.create_instance().unwrap();
        let args = vec![
            (String::new(), Value::Int(4)),
            (String::new(), Value::Int(5)),
        ];
        assert_eq!(core.dispatch("add", &args).unwrap(), Value::Int(9));
    }

    #[test]
    fn unknown_method_is_stale() {
        let core = calc_core();
        core.create_instance().unwrap();
        let err = core.dispatch("subtract", &[]).unwrap_err();
        assert_eq!(err, InvokeFailure::NoMatch);
        assert_eq!(core.metrics().snapshot().3, 1);
    }

    #[test]
    fn signature_mismatch_is_stale() {
        // A client calling with the old arity after a live signature
        // change must hit the stale path — that is the very scenario the
        // §6 protocol exists for.
        let core = calc_core();
        core.create_instance().unwrap();
        let err = core
            .dispatch("add", &named(&[("a", Value::Int(1))]))
            .unwrap_err();
        assert_eq!(err, InvokeFailure::NoMatch);
        let err = core
            .dispatch(
                "add",
                &named(&[("a", Value::Str("x".into())), ("b", Value::Int(2))]),
            )
            .unwrap_err();
        assert_eq!(err, InvokeFailure::NoMatch);
    }

    #[test]
    fn stale_notify_fires() {
        let core = calc_core();
        core.create_instance().unwrap();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        core.set_stale_notify(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        let _ = core.dispatch("ghost", &[]);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn app_exception_carries_message() {
        let class = ClassHandle::new("Boom");
        class
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .distributed(true)
                    .body_block(vec![jpie::expr::Stmt::Throw(Expr::lit("kaboom"))]),
            )
            .unwrap();
        let core = GatewayCore::new(class);
        core.create_instance().unwrap();
        match core.dispatch("boom", &[]).unwrap_err() {
            InvokeFailure::AppException(m) => assert!(m.contains("kaboom")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_distributed_methods_invisible() {
        let core = calc_core();
        core.class()
            .add_method(MethodBuilder::new("local", TypeDesc::Void).body_block(vec![]))
            .unwrap();
        core.create_instance().unwrap();
        assert_eq!(
            core.dispatch("local", &[]).unwrap_err(),
            InvokeFailure::NoMatch
        );
    }

    #[test]
    fn widening_in_binding() {
        let class = ClassHandle::new("W");
        class
            .add_method(
                MethodBuilder::new("half", TypeDesc::Double)
                    .param("x", TypeDesc::Double)
                    .distributed(true)
                    .body_expr(Expr::param("x") / Expr::lit(2.0)),
            )
            .unwrap();
        let core = GatewayCore::new(class);
        core.create_instance().unwrap();
        let v = core
            .dispatch("half", &named(&[("x", Value::Int(5))]))
            .unwrap();
        assert_eq!(v, Value::Double(2.5));
    }

    #[test]
    fn global_registry_mirrors_dispatch_outcomes() {
        // Unique class name: the registry is process-global and other
        // tests in this binary dispatch against "Calc" concurrently.
        let class = ClassHandle::new("GwObsMirror");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        let core = GatewayCore::new(class);
        core.create_instance().unwrap();
        let before = obs::registry().snapshot();
        let _ = core.dispatch("add", &named(&[("a", Value::Int(1)), ("b", Value::Int(2))]));
        let _ = core.dispatch("ghost", &[]);
        let d = obs::registry().snapshot().delta(&before);
        let k = |n: &str| obs::metrics::key(n, &[("class", "GwObsMirror")]);
        assert_eq!(d.counter(&k("sde_requests_total")), 2);
        assert_eq!(d.counter(&k("sde_ok_total")), 1);
        assert_eq!(d.counter(&k("sde_stale_total")), 1);
        assert_eq!(d.counter(&k("sde_faults_total")), 1);
        assert_eq!(
            d.counter(&obs::metrics::key(
                "sde_method_calls_total",
                &[("class", "GwObsMirror"), ("method", "add")]
            )),
            1
        );
        let h = d
            .histogram(&k("sde_dispatch_ns"))
            .expect("dispatch histogram");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn resolution_cache_reuses_snapshot_and_edits_invalidate() {
        let core = calc_core();
        core.create_instance().unwrap();
        let args = named(&[("a", Value::Int(1)), ("b", Value::Int(2))]);
        core.dispatch("add", &args).unwrap();
        let s1 = core.distributed_view();
        core.dispatch("add", &args).unwrap();
        // Steady state: the same Arc allocation backs every dispatch.
        assert!(Arc::ptr_eq(&s1, &core.distributed_view()));

        // A live edit invalidates the cache on the very next call: the
        // old name is stale, the new one resolves.
        let id = core.class().find_method("add").unwrap();
        core.class().rename_method(id, "plus").unwrap();
        assert_eq!(
            core.dispatch("add", &args).unwrap_err(),
            InvokeFailure::NoMatch
        );
        assert_eq!(core.dispatch("plus", &args).unwrap(), Value::Int(3));
        let s2 = core.distributed_view();
        assert!(!Arc::ptr_eq(&s1, &s2));
        assert!(s2.iter().any(|s| s.name == "plus"));
    }

    #[test]
    fn metrics_track_outcomes() {
        let core = calc_core();
        core.create_instance().unwrap();
        let _ = core.dispatch("add", &named(&[("a", Value::Int(1)), ("b", Value::Int(2))]));
        let _ = core.dispatch("ghost", &[]);
        let (requests, ok, faults, stale) = core.metrics().snapshot();
        assert_eq!((requests, ok, faults, stale), (2, 1, 1, 1));
    }
}
