//! The CORBA-RMI subsystem (paper §5.2): `CORBAServer` gateway, IDL
//! publisher, CORBA Call Handler over DSI, and IOR publication.

use std::sync::Arc;

use corba::{CorbaError, DynamicImplementation, IdlModule, Ior, ServerOrb, ServerRequest};
use jpie::{ClassHandle, Instance};

use crate::docs::DocumentStore;
use crate::error::SdeError;
use crate::gateway::{GatewayCore, HandlerMetrics, InvokeFailure, SdeServerGateway, Technology};
use crate::publish::{GeneratedDoc, PublicationStrategy, PublisherCore};
use crate::replycache::{Admission, CachedReply};

/// A managed CORBA server: the paper's `CORBAServer` gateway plus its IDL
/// Generator, CORBA Call Handler (a DSI servant wrapping the Server ORB),
/// and IOR publication.
///
/// Create through [`crate::SdeManager::deploy_corba`]. The paper "use\[s\]
/// DSI to avoid reinitializing the Server ORB when the server methods or
/// types change" (§5.2.2): the ORB here stays up across arbitrary live
/// edits of the class.
#[derive(Debug)]
pub struct CorbaServer {
    core: Arc<GatewayCore>,
    publisher: Arc<PublisherCore>,
    orb: ServerOrb,
    idl_url: String,
    ior_url: String,
    idl_path: String,
    ior_path: String,
    store: DocumentStore,
}

impl CorbaServer {
    pub(crate) fn deploy(
        class: ClassHandle,
        orb_addr: &str,
        store: DocumentStore,
        interface_base_url: &str,
        strategy: PublicationStrategy,
    ) -> Result<CorbaServer, SdeError> {
        let core = GatewayCore::new(class.clone());

        // Server ORB initialization (§5.2.1); the DSI servant wraps the
        // gateway core.
        let handler = CorbaCallHandler { core: core.clone() };
        let type_id = format!("IDL:{}:1.0", class.name());
        let orb = ServerOrb::init(orb_addr, &type_id, handler)?;

        let idl_path = format!("/{}.idl", class.name());
        let ior_path = format!("/{}.ior", class.name());
        let idl_url = format!("{interface_base_url}{idl_path}");
        let ior_url = format!("{interface_base_url}{ior_path}");

        // The IOR is stable across interface changes (DSI!) — published
        // once at initialization.
        store.publish(&ior_path, orb.ior().to_ior_string(), 0, "text/plain");

        let gen_class = class.clone();
        let sink_store = store.clone();
        let sink_path = idl_path.clone();
        let publisher = PublisherCore::start(
            class,
            strategy,
            Box::new(move || {
                let module = IdlModule::from_signatures(
                    gen_class.name(),
                    &gen_class.distributed_signatures(),
                    gen_class.interface_version(),
                );
                GeneratedDoc {
                    text: module.to_idl(),
                    version: module.version,
                }
            }),
            Box::new(move |doc| {
                sink_store.publish(&sink_path, doc.text.clone(), doc.version, "text/plain");
            }),
        );

        Ok(CorbaServer {
            core,
            publisher,
            orb,
            idl_url,
            ior_url,
            idl_path,
            ior_path,
            store,
        })
    }

    pub(crate) fn core(&self) -> &Arc<GatewayCore> {
        &self.core
    }

    /// URL of the published CORBA-IDL document.
    pub fn idl_url(&self) -> &str {
        &self.idl_url
    }

    /// URL of the published IOR.
    pub fn ior_url(&self) -> &str {
        &self.ior_url
    }

    /// The server ORB's IOR.
    pub fn ior(&self) -> Ior {
        self.orb.ior()
    }

    /// The live instance, if created.
    pub fn instance(&self) -> Option<Arc<Instance>> {
        self.core.instance()
    }

    /// Call-handler metrics.
    pub fn handler_metrics(&self) -> &HandlerMetrics {
        self.core.metrics()
    }

    /// Snapshot of the exactly-once reply cache.
    pub fn reply_cache_stats(&self) -> crate::replycache::ReplyCacheStats {
        self.core.reply_cache().stats()
    }

    /// The ORB's drain gate: in-flight accounting and drain-mode
    /// `TRANSIENT` refusals, for planned-migration quiescence.
    pub fn gate(&self) -> &Arc<corba::OrbGate> {
        self.orb.gate()
    }

    /// Toggles the §5.7 reactive forced publication (see
    /// [`GatewayCore::set_reactive`](crate::GatewayCore::set_reactive)).
    pub fn set_reactive(&self, reactive: bool) {
        self.core.set_reactive(reactive);
    }
}

impl SdeServerGateway for CorbaServer {
    fn class(&self) -> &ClassHandle {
        self.core.class()
    }

    fn technology(&self) -> Technology {
        Technology::Corba
    }

    fn interface_url(&self) -> String {
        self.idl_url.clone()
    }

    fn publisher(&self) -> &Arc<PublisherCore> {
        &self.publisher
    }

    fn create_instance(&self) -> Result<Arc<Instance>, SdeError> {
        self.core.create_instance()
    }

    fn shutdown(&self) {
        self.publisher.shutdown();
        self.orb.shutdown();
        self.store.retract(&self.idl_path);
        self.store.retract(&self.ior_path);
        self.core.clear_instance();
    }
}

/// The CORBA Call Handler (§5.2.3): "a simple wrapper around the Server
/// ORB" whose logic determines call validity and dispatches to the
/// dynamic class.
struct CorbaCallHandler {
    core: Arc<GatewayCore>,
}

impl DynamicImplementation for CorbaCallHandler {
    fn invoke(&self, request: &mut ServerRequest) {
        // Server-side span tree: joins the client's wire-propagated
        // context (a no-op when the caller sent none).
        let server_span =
            obs::tracectx::server_root("server.corba", request.trace(), request.call_id());
        // At-most-once execution: a redelivered call id means the first
        // delivery already ran — replay the stored outcome instead of
        // executing again. Admission also claims an in-flight sentinel,
        // so a duplicate racing a still-executing first delivery waits
        // for its result instead of executing a second copy.
        let mut call_id = request.call_id();
        if let Some(id) = call_id {
            let admit_span = obs::tracectx::child("replycache.admit");
            match self.core.reply_cache().admit(id) {
                Admission::Replay(CachedReply::Value(v)) => {
                    admit_span.rename("replycache.hit");
                    admit_span.annotate("reply_replayed", obs::tracectx::AnnValue::U64(1));
                    request.set_result(v);
                    return;
                }
                Admission::Replay(CachedReply::Exception(msg)) => {
                    // The first delivery executed the body and threw:
                    // replay the exception, never the side effects.
                    admit_span.rename("replycache.hit");
                    admit_span.annotate("reply_replayed", obs::tracectx::AnnValue::U64(1));
                    request.set_exception(CorbaError::user_exception(msg));
                    return;
                }
                Admission::Replay(_) => {
                    // A SOAP-flavoured entry can only exist if two
                    // gateways shared one cache — they never do. Execute
                    // without exactly-once bookkeeping rather than panic.
                    call_id = None;
                }
                Admission::InFlight => {
                    // The original delivery outlasted the wait bound:
                    // TRANSIENT is the retryable rejection — the retry
                    // redelivers the same id and finds the reply.
                    admit_span.rename("replycache.wait");
                    admit_span.fail("duplicate-in-flight");
                    fault_counter("duplicate_in_flight").inc();
                    request.set_exception(CorbaError::system(
                        corba::SystemExceptionKind::Transient,
                        "original delivery of this call is still executing",
                    ));
                    return;
                }
                Admission::Execute => {}
            }
        }
        // CORBA arguments are positional: wrap with empty names.
        let args: Vec<(String, jpie::Value)> = request
            .arguments()
            .iter()
            .map(|v| (String::new(), v.clone()))
            .collect();
        match self.core.dispatch(request.operation(), &args) {
            Ok(value) => {
                if let Some(id) = call_id {
                    self.core
                        .reply_cache()
                        .complete(id, CachedReply::Value(value.clone()));
                }
                request.set_result(value)
            }
            Err(InvokeFailure::NotInitialized) => {
                // Dispatch never entered the method body: release the
                // claim uncached.
                if let Some(id) = call_id {
                    self.core.reply_cache().abort(id);
                }
                server_span.fail("server-not-initialized");
                fault_counter("object_not_exist").inc();
                request.set_exception(CorbaError::system(
                    corba::SystemExceptionKind::ObjectNotExist,
                    "Server not initialized",
                ))
            }
            Err(InvokeFailure::NoMatch) => {
                // §5.7 already forced publication inside dispatch. The
                // body never ran, so the claim is released uncached.
                if let Some(id) = call_id {
                    self.core.reply_cache().abort(id);
                }
                server_span.fail("non-existent-method");
                fault_counter("non_existent_method").inc();
                obs::trace::event(
                    "sde::corba",
                    "non-existent-method",
                    format!(
                        "class={} operation={}",
                        self.core.class().name(),
                        request.operation()
                    ),
                );
                request.set_exception(CorbaError::non_existent_method(request.operation()))
            }
            Err(InvokeFailure::AppException(msg)) => {
                // "any exceptions thrown during the invocation ... is
                // wrapped in a generic exception type" (§5.2.3). The
                // body executed — possibly mutating state — before
                // throwing, so the exception is cached and replayed
                // exactly like a success: a lost fault reply must not
                // license a re-execution.
                server_span.fail("application-exception");
                fault_counter("user_exception").inc();
                if let Some(id) = call_id {
                    self.core
                        .reply_cache()
                        .complete(id, CachedReply::Exception(msg.clone()));
                }
                request.set_exception(CorbaError::user_exception(msg))
            }
        }
    }

    fn caches_replies(&self) -> bool {
        // The ORB advertises the cache in every reply's service-context
        // list, licensing clients to retry non-idempotent calls.
        true
    }
}

/// Fault paths are cold, so the registry lookup per fault is fine.
fn fault_counter(kind: &str) -> Arc<obs::Counter> {
    obs::registry().counter_with("sde_corba_faults_total", &[("kind", kind)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use corba::DiiRequest;
    use jpie::expr::Expr;
    use jpie::{MethodBuilder, TypeDesc, Value};
    use std::time::Duration;

    fn deploy_calc(tag: &str) -> CorbaServer {
        let class = ClassHandle::new("Calc");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        CorbaServer::deploy(
            class,
            &format!("mem://corba-orb-{tag}"),
            DocumentStore::new(),
            "mem://ifc-unused",
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        )
        .unwrap()
    }

    #[test]
    fn uninitialized_server_raises_object_not_exist() {
        let server = deploy_calc("uninit");
        let err = DiiRequest::new(&server.ior(), "add")
            .arg(Value::Int(1))
            .arg(Value::Int(2))
            .invoke()
            .unwrap_err();
        assert!(matches!(
            err,
            CorbaError::System(corba::SystemExceptionKind::ObjectNotExist, _)
        ));
        server.shutdown();
    }

    #[test]
    fn successful_call_roundtrip() {
        let server = deploy_calc("ok");
        server.create_instance().unwrap();
        let v = DiiRequest::new(&server.ior(), "add")
            .arg(Value::Int(40))
            .arg(Value::Int(2))
            .invoke()
            .unwrap();
        assert_eq!(v, Value::Int(42));
        server.shutdown();
    }

    #[test]
    fn non_existent_method_and_forced_publication() {
        let server = deploy_calc("stale");
        server.create_instance().unwrap();
        let err = DiiRequest::new(&server.ior(), "ghost")
            .invoke()
            .unwrap_err();
        assert!(err.is_non_existent_method());
        assert_eq!(
            server.publisher().published_version(),
            server.class().interface_version()
        );
        server.shutdown();
    }

    #[test]
    fn servant_exception_wrapped_generically() {
        let server = deploy_calc("appex");
        server
            .class()
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .distributed(true)
                    .body_block(vec![jpie::expr::Stmt::Throw(Expr::lit("bang"))]),
            )
            .unwrap();
        server.create_instance().unwrap();
        let err = DiiRequest::new(&server.ior(), "boom").invoke().unwrap_err();
        assert!(matches!(err, CorbaError::User { message, .. } if message.contains("bang")));
        server.shutdown();
    }

    #[test]
    fn redelivered_faulting_call_replays_the_cached_exception() {
        let server = deploy_calc("faultcache");
        server.class().add_field("n", TypeDesc::Int).unwrap();
        server
            .class()
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .distributed(true)
                    .body_block(vec![
                        jpie::expr::Stmt::SetField("n".into(), Expr::field("n") + Expr::lit(1)),
                        jpie::expr::Stmt::Throw(Expr::lit("bang")),
                    ]),
            )
            .unwrap();
        server.create_instance().unwrap();

        // Same call id delivered twice, as a retry after a lost fault
        // reply would: the exception replays, the side effect does not.
        let mut conn = corba::OrbConnection::connect(&server.ior()).unwrap();
        let id = obs::CallId::fresh();
        let first = conn.call_with_id("boom", &[], Some(id)).unwrap_err();
        let second = conn.call_with_id("boom", &[], Some(id)).unwrap_err();
        assert!(matches!(&first, CorbaError::User { message, .. } if message.contains("bang")));
        match (&first, &second) {
            (CorbaError::User { message: a, .. }, CorbaError::User { message: b, .. }) => {
                assert_eq!(a, b);
            }
            other => panic!("unexpected {other:?}"),
        }
        let instance = server.instance().unwrap();
        assert_eq!(instance.field("n").unwrap(), Value::Int(1));
        assert_eq!(server.reply_cache_stats().hits, 1);
        server.shutdown();
    }

    #[test]
    fn orb_survives_interface_changes() {
        // The DSI property: live edits never restart the ORB, so the IOR
        // stays valid.
        let server = deploy_calc("dsi");
        server.create_instance().unwrap();
        let ior = server.ior();
        for i in 0..3 {
            server
                .class()
                .add_method(
                    MethodBuilder::new(format!("gen{i}"), TypeDesc::Int)
                        .distributed(true)
                        .body_expr(Expr::lit(i)),
                )
                .unwrap();
            let v = DiiRequest::new(&ior, format!("gen{i}")).invoke().unwrap();
            assert_eq!(v, Value::Int(i));
        }
        assert_eq!(server.ior(), ior, "IOR unchanged across live edits");
        server.shutdown();
    }

    #[test]
    fn idl_and_ior_published() {
        let class = ClassHandle::new("Pub");
        let store = DocumentStore::new();
        let server = CorbaServer::deploy(
            class,
            "mem://corba-orb-pub",
            store.clone(),
            "mem://ifc-x",
            PublicationStrategy::ChangeDriven,
        )
        .unwrap();
        let idl = store.get("/Pub.idl").expect("idl published");
        assert!(idl.content().contains("module Pub"));
        let ior_doc = store.get("/Pub.ior").expect("ior published");
        assert_eq!(Ior::parse(ior_doc.content()).unwrap(), server.ior());
        server.shutdown();
        assert!(store.get("/Pub.idl").is_none(), "retracted on shutdown");
    }
}
