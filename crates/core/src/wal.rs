//! Append-only version write-ahead log for durable interface
//! publication.
//!
//! Every document publication appends one record and fsyncs, so a
//! server process killed at any point can be restarted at the same
//! authority and replay the log: [`crate::SdeManager`] floors each
//! redeployed class's interface version at the highest version the log
//! holds for its documents. Clients that fetched pre-crash documents
//! therefore never see the version stream move backwards — the §6
//! recency guarantee survives a crash.
//!
//! Record layout (all integers big-endian):
//!
//! ```text
//! [u32 payload_len] [payload: u64 version ++ path bytes] [u32 crc32(payload)]
//! ```
//!
//! Replay is tolerant of a torn tail: the first record whose length,
//! payload, or checksum cannot be read terminates the scan — everything
//! before it was fsynced and is trusted.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use obs::sync::{Condvar, Mutex};

/// CRC-32 (IEEE 802.3, reflected polynomial). Bitwise — publications
/// are rare and small, so a table buys nothing here.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Upper bound on a record payload accepted during replay: a length
/// prefix beyond this is treated as a torn/corrupt tail, not an
/// allocation request.
const MAX_PAYLOAD: u32 = 1 << 20;

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Highest version replayed or appended per document path.
    floors: HashMap<String, u64>,
    /// Count of intact records replayed or appended.
    records: u64,
    /// Byte length of the durable, intact prefix of the file. A failed
    /// append truncates back to this offset so a partial record never
    /// silently cuts off replay of everything written after it.
    good_len: u64,
    /// Set when a failed append could not be truncated away: the tail
    /// is in an unknown state, so further appends must not pretend to
    /// be durable.
    poisoned: bool,
}

/// The durable publication log: one per [`crate::SdeManager`] authority.
#[derive(Debug)]
pub struct VersionWal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    /// Signalled whenever the durable prefix grows, so a replication
    /// streamer (see [`crate::walrepl`]) can block instead of polling.
    grew: Condvar,
}

impl VersionWal {
    /// Opens (creating if absent) the log at `path` and replays every
    /// intact record.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or read. A torn or corrupt
    /// tail is NOT an error — replay simply stops there.
    pub fn open(path: &Path) -> std::io::Result<VersionWal> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (floors, good_len, records) = replay(&bytes);
        if (good_len as usize) < bytes.len() {
            // Drop the torn tail now: append mode writes at EOF, so a
            // new record after the torn bytes would be unreadable at the
            // next replay (the scan stops at the first bad record).
            file.set_len(good_len)?;
            obs::trace::event(
                "sde::wal",
                "truncate-torn-tail",
                format!(
                    "path={} dropped_bytes={}",
                    path.display(),
                    bytes.len() - good_len as usize
                ),
            );
        }
        if !floors.is_empty() {
            obs::trace::event(
                "sde::wal",
                "replay",
                format!("path={} documents={}", path.display(), floors.len()),
            );
        }
        Ok(VersionWal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                floors,
                records,
                good_len,
                poisoned: false,
            }),
            grew: Condvar::new(),
        })
    }

    /// Appends one publication record and fsyncs before returning: once
    /// this call returns `Ok`, a crash cannot lose the fact that
    /// `doc_path` reached `version`.
    ///
    /// # Errors
    ///
    /// Fails when the record could not be both written and fsynced
    /// (disk full, IO error) — the version is then NOT durable and the
    /// caller must not make it observable to clients.
    pub fn append(&self, doc_path: &str, version: u64) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(8 + doc_path.len());
        payload.extend_from_slice(&version.to_be_bytes());
        payload.extend_from_slice(doc_path.as_bytes());
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&crc32(&payload).to_be_bytes());

        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(std::io::Error::other(
                "version WAL poisoned by an earlier unrecoverable write failure",
            ));
        }
        // One write: a torn record is all-tail, never an interior hole.
        let written = inner
            .file
            .write_all(&record)
            .and_then(|()| inner.file.sync_data());
        if let Err(e) = written {
            obs::registry().counter("wal_append_failures_total").inc();
            // A partial record at the tail would make every later
            // append unreadable at replay — truncate back to the last
            // known-good record. If even that fails, poison the log.
            let good_len = inner.good_len;
            if inner.file.set_len(good_len).is_err() {
                inner.poisoned = true;
            }
            obs::trace::event(
                "sde::wal",
                "append-failed",
                format!("path={doc_path} version={version} error={e}"),
            );
            return Err(e);
        }
        inner.good_len += record.len() as u64;
        inner.records += 1;
        let slot = inner.floors.entry(doc_path.to_string()).or_insert(0);
        if version > *slot {
            *slot = version;
        }
        obs::registry().counter("wal_appends_total").inc();
        drop(inner);
        self.grew.notify_all();
        Ok(())
    }

    /// Test hook: makes every subsequent append fail, simulating an
    /// unrecoverable IO failure underneath the log.
    #[cfg(test)]
    pub(crate) fn poison_for_test(&self) {
        self.inner.lock().poisoned = true;
    }

    /// The highest version the log holds for `doc_path`, if any.
    pub fn floor(&self, doc_path: &str) -> Option<u64> {
        self.inner.lock().floors.get(doc_path).copied()
    }

    /// Every document path → highest version the log holds.
    pub fn floors(&self) -> HashMap<String, u64> {
        self.inner.lock().floors.clone()
    }

    /// Byte length of the durable, intact record prefix.
    pub fn durable_len(&self) -> u64 {
        self.inner.lock().good_len
    }

    /// Count of intact records replayed or appended so far.
    pub fn record_count(&self) -> u64 {
        self.inner.lock().records
    }

    /// Filesystem path backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until the durable prefix exceeds `seen_len` or the timeout
    /// elapses; returns the current durable length either way.
    pub fn wait_for_growth(&self, seen_len: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        while inner.good_len <= seen_len {
            if self.grew.wait_until(&mut inner, deadline).timed_out() {
                break;
            }
        }
        inner.good_len
    }

    /// Reads the durable record bytes in `[from, durable_len)` through a
    /// fresh read handle, so a replication streamer never disturbs the
    /// append cursor.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be reopened or read, or if `from` lies
    /// beyond the durable prefix (the caller's cursor is stale — it must
    /// renegotiate).
    pub fn read_from(&self, from: u64) -> std::io::Result<Vec<u8>> {
        let durable = self.inner.lock().good_len;
        if from > durable {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("read offset {from} beyond durable prefix {durable}"),
            ));
        }
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(from))?;
        let mut buf = vec![0u8; (durable - from) as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Appends pre-encoded record bytes received from a replication
    /// leader, fsyncing before returning. The bytes must parse as a
    /// whole number of intact records — a torn or corrupt frame is
    /// rejected without touching the file. Returns the new durable
    /// length.
    ///
    /// # Errors
    ///
    /// Fails on malformed record bytes, on a poisoned log, or when the
    /// write/fsync fails (the tail is truncated back like [`append`]).
    ///
    /// [`append`]: VersionWal::append
    pub fn append_raw(&self, bytes: &[u8]) -> std::io::Result<u64> {
        let (floors, good, records) = replay(bytes);
        if bytes.is_empty() || good as usize != bytes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "replicated bytes are not a whole number of intact records",
            ));
        }
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(std::io::Error::other(
                "version WAL poisoned by an earlier unrecoverable write failure",
            ));
        }
        let written = inner
            .file
            .write_all(bytes)
            .and_then(|()| inner.file.sync_data());
        if let Err(e) = written {
            obs::registry().counter("wal_append_failures_total").inc();
            let good_len = inner.good_len;
            if inner.file.set_len(good_len).is_err() {
                inner.poisoned = true;
            }
            return Err(e);
        }
        inner.good_len += bytes.len() as u64;
        inner.records += records;
        for (path, version) in floors {
            let slot = inner.floors.entry(path).or_insert(0);
            if version > *slot {
                *slot = version;
            }
        }
        let len = inner.good_len;
        drop(inner);
        self.grew.notify_all();
        Ok(len)
    }

    /// Replaces the whole log with `bytes` (a full resync from a
    /// replication leader), fsyncing before returning. The bytes must
    /// parse as a whole number of intact records. Returns the new
    /// durable length.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes or when the rewrite cannot be made
    /// durable — the log is then poisoned, since its contents are in an
    /// unknown state.
    pub fn reset_to(&self, bytes: &[u8]) -> std::io::Result<u64> {
        let (floors, good, records) = replay(bytes);
        if good as usize != bytes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "resync bytes are not a whole number of intact records",
            ));
        }
        let mut inner = self.inner.lock();
        let rewritten = inner
            .file
            .set_len(0)
            .and_then(|()| inner.file.write_all(bytes))
            .and_then(|()| inner.file.sync_data());
        if let Err(e) = rewritten {
            // Unlike a failed append there is no known-good prefix to
            // fall back to: the old records are gone.
            inner.poisoned = true;
            return Err(e);
        }
        inner.good_len = bytes.len() as u64;
        inner.records = records;
        inner.floors = floors;
        inner.poisoned = false;
        let len = inner.good_len;
        drop(inner);
        self.grew.notify_all();
        Ok(len)
    }

    /// CRC-32 over the whole durable prefix: a cheap fingerprint a
    /// replication follower sends at handshake so the leader can detect
    /// divergence (not just length mismatch).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be re-read.
    pub fn prefix_crc(&self) -> std::io::Result<u32> {
        Ok(crc32(&self.read_from(0)?))
    }
}

/// The WAL filename an [`crate::SdeManager`] uses for `addr`: the
/// authority string with every non-alphanumeric byte flattened to `_`,
/// under `dir`. Shared by the manager and by followers adopting a dead
/// shard's log.
pub fn wal_path_for(dir: &Path, addr: &str) -> PathBuf {
    let file: String = addr
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join(format!("{file}.wal"))
}

/// Scans raw log bytes into per-path version floors, stopping at the
/// first incomplete or corrupt record. Also returns the byte length of
/// the intact prefix (so the caller can realign appends past a torn
/// tail) and the count of intact records.
fn replay(bytes: &[u8]) -> (HashMap<String, u64>, u64, u64) {
    let mut floors = HashMap::new();
    let mut at = 0usize;
    let mut records = 0u64;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len < 8 || len > MAX_PAYLOAD as usize {
            break;
        }
        let Some(payload) = bytes.get(at + 4..at + 4 + len) else {
            break;
        };
        let Some(crc_bytes) = bytes.get(at + 4 + len..at + 8 + len) else {
            break;
        };
        if crc32(payload) != u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes")) {
            break;
        }
        let version = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        let Ok(path) = std::str::from_utf8(&payload[8..]) else {
            break;
        };
        let slot = floors.entry(path.to_string()).or_insert(0);
        if version > *slot {
            *slot = version;
        }
        at += 8 + len;
        records += 1;
    }
    (floors, at as u64, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("live-rmi-wal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_replays_floors() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let wal = VersionWal::open(&path).unwrap();
            wal.append("/Calc.wsdl", 1).unwrap();
            wal.append("/Calc.wsdl", 5).unwrap();
            wal.append("/Calc.idl", 3).unwrap();
            assert_eq!(wal.floor("/Calc.wsdl"), Some(5));
        }
        let wal = VersionWal::open(&path).unwrap();
        assert_eq!(wal.floor("/Calc.wsdl"), Some(5));
        assert_eq!(wal.floor("/Calc.idl"), Some(3));
        assert_eq!(wal.floor("/other"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let wal = VersionWal::open(&path).unwrap();
            wal.append("/A.wsdl", 7).unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0, 0, 0, 12, 0, 0]).unwrap();
        }
        let wal = VersionWal::open(&path).unwrap();
        assert_eq!(wal.floor("/A.wsdl"), Some(7), "intact prefix survives");
        // The log keeps working after recovery.
        wal.append("/A.wsdl", 9).unwrap();
        assert_eq!(wal.floor("/A.wsdl"), Some(9));
        // Crucially, the post-recovery record is readable at the NEXT
        // replay too: open() truncated the torn tail, so the append
        // landed on an intact prefix rather than behind garbage.
        let wal = VersionWal::open(&path).unwrap();
        assert_eq!(
            wal.floor("/A.wsdl"),
            Some(9),
            "records appended after torn-tail recovery must survive reopen"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_wal_refuses_appends() {
        let path = temp_path("poisoned");
        let _ = std::fs::remove_file(&path);
        let wal = VersionWal::open(&path).unwrap();
        wal.append("/A.idl", 1).unwrap();
        wal.poison_for_test();
        assert!(wal.append("/A.idl", 2).is_err(), "poisoned log must fail");
        // The floor still reflects only what is durably on disk.
        assert_eq!(wal.floor("/A.idl"), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let wal = VersionWal::open(&path).unwrap();
            wal.append("/A.idl", 2).unwrap();
            wal.append("/B.idl", 4).unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = bytes.len() - 5;
        bytes[second_start] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let wal = VersionWal::open(&path).unwrap();
        assert_eq!(wal.floor("/A.idl"), Some(2));
        assert_eq!(wal.floor("/B.idl"), None, "corrupt record rejected");
        let _ = std::fs::remove_file(&path);
    }
}
