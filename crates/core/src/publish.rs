//! The DL Publisher: detection of stable server-interface changes (§5.6)
//! and reactive forced publication (§5.7).
//!
//! This module is the heart of the paper. A [`PublisherCore`] watches a
//! dynamic class and regenerates/publishes its interface description
//! (WSDL or CORBA-IDL) according to a [`PublicationStrategy`]:
//!
//! * [`PublicationStrategy::ChangeDriven`] — publish on every change to
//!   the distributed interface (the paper rejects this: it publishes
//!   transient interfaces and is expensive),
//! * [`PublicationStrategy::Periodic`] — poll at a fixed interval (also
//!   rejected: can still publish a transient interface, which then
//!   persists at the client until the next poll),
//! * [`PublicationStrategy::StableTimeout`] — the paper's mechanism:
//!   change-driven, but waits for a *stable interval*. A change starts a
//!   countdown; further distributed-interface changes reset it; only when
//!   the timer expires is the new description generated and published.
//!
//! §5.6 details implemented exactly: the timer and the generation
//! operation are independent — the timer may expire *during* a generation,
//! in which case one follow-up generation runs as soon as the current one
//! finishes; the user can force timer expiry manually
//! ([`PublisherCore::force_publish`]); and a publication only happens when
//! the interface actually changed ("publishing if necessary").
//!
//! §5.7 is [`PublisherCore::ensure_current`]: when a call handler receives
//! a call to a stale method it stalls and prompts the publisher. The three
//! cases of the paper map directly onto the state here:
//! timer idle + no generation → already current (no work, which is what
//! makes a rogue client harmless); generation in progress + timer idle →
//! wait for it; generation in progress + timer running → the pending
//! changes are folded into a forced follow-up generation and we wait for
//! both. On return, the published description reflects every change made
//! before the call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use jpie::{ClassEvent, ClassHandle};
use obs::events::VersionEventKind;
use obs::metrics::{Counter, Histogram};
use obs::sync::{Condvar, Mutex};
use std::sync::mpsc::Receiver;

/// How the DL Publisher decides when to publish (§5.6 discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublicationStrategy {
    /// Publish immediately on every distributed-interface change.
    ChangeDriven,
    /// Publish at a fixed polling interval (if the interface changed).
    Periodic(Duration),
    /// The paper's mechanism: publish after the interface has been stable
    /// for the timeout.
    StableTimeout(Duration),
}

/// A generated interface description ready for publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedDoc {
    /// The document text (WSDL XML or CORBA-IDL).
    pub text: String,
    /// The class interface version the document reflects.
    pub version: u64,
}

/// Produces the interface description from the current class state.
/// Implementations are the paper's WSDL Generator / IDL Generator.
pub type DocumentGenerator = dyn Fn() -> GeneratedDoc + Send + Sync + 'static;

/// Publication sink — receives each newly generated document (the
/// Interface Server, plus metrics).
pub type PublishSink = dyn Fn(&GeneratedDoc) + Send + Sync + 'static;

/// Counters exposed by a publisher (used by the §5.6 ablation and the
/// §5.7 rogue-client experiment).
#[derive(Debug, Default)]
pub struct PublisherMetrics {
    /// Completed generation operations.
    pub generations: AtomicU64,
    /// Documents actually handed to the Interface Server.
    pub publications: AtomicU64,
    /// `ensure_current` calls that had to force work (i.e. were not
    /// already current).
    pub forced: AtomicU64,
    /// `ensure_current` calls answered with no work at all.
    pub already_current: AtomicU64,
}

impl PublisherMetrics {
    /// Snapshot of (generations, publications, forced, already_current).
    ///
    /// `Relaxed` loads (matching the `Relaxed` increments): these atomics
    /// are pure statistics — publication state itself is synchronized by
    /// the publisher's mutex/condvar, never through these counters, so
    /// only their own atomicity matters.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.generations.load(Ordering::Relaxed),
            self.publications.load(Ordering::Relaxed),
            self.forced.load(Ordering::Relaxed),
            self.already_current.load(Ordering::Relaxed),
        )
    }
}

/// Global-registry mirrors of [`PublisherMetrics`], resolved once per
/// publisher. The per-publisher counters remain authoritative for the
/// experiments; these feed `GET /metrics` and the REPL `stats` view.
struct PublisherObs {
    generations: Arc<Counter>,
    publications: Arc<Counter>,
    forced: Arc<Counter>,
    already_current: Arc<Counter>,
    generation_ns: Arc<Histogram>,
}

impl PublisherObs {
    fn for_class(class: &str) -> PublisherObs {
        let r = obs::registry();
        let labels = [("class", class)];
        PublisherObs {
            generations: r.counter_with("sde_generations_total", &labels),
            publications: r.counter_with("sde_publications_total", &labels),
            forced: r.counter_with("sde_forced_publications_total", &labels),
            already_current: r.counter_with("sde_already_current_total", &labels),
            generation_ns: r.histogram_with("sde_generation_ns", &labels),
        }
    }
}

#[derive(Debug)]
struct PubState {
    /// §5.6 countdown deadline; `None` when the timer is idle.
    deadline: Option<Instant>,
    /// A generation operation is in flight.
    generating: bool,
    /// An immediate generation has been requested (forced expiry or
    /// change-driven strategy).
    force_now: bool,
    /// Interface version of the last *published* document.
    published_version: u64,
    shutdown: bool,
}

/// The DL Publisher core shared by the WSDL and IDL publishers.
pub struct PublisherCore {
    state: Mutex<PubState>,
    cond: Condvar,
    strategy: Mutex<PublicationStrategy>,
    class: ClassHandle,
    generator: Box<DocumentGenerator>,
    sink: Box<PublishSink>,
    metrics: PublisherMetrics,
    o: PublisherObs,
    /// Artificial latency added to each generation — models the paper's
    /// "relatively expensive operation" and lets tests exercise the
    /// timer-expires-during-generation path deterministically.
    generation_latency: Mutex<Duration>,
    worker: Mutex<Option<JoinHandle<()>>>,
    listener: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for PublisherCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublisherCore")
            .field("class", &self.class.name())
            .field("strategy", &*self.strategy.lock())
            .finish_non_exhaustive()
    }
}

impl PublisherCore {
    /// Creates a publisher for `class`, immediately publishing the initial
    /// (minimal) document, and starts its worker and listener threads.
    pub fn start(
        class: ClassHandle,
        strategy: PublicationStrategy,
        generator: Box<DocumentGenerator>,
        sink: Box<PublishSink>,
    ) -> Arc<PublisherCore> {
        let o = PublisherObs::for_class(&class.name());
        let core = Arc::new(PublisherCore {
            state: Mutex::new(PubState {
                deadline: None,
                generating: false,
                force_now: false,
                published_version: class.interface_version(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            strategy: Mutex::new(strategy),
            class: class.clone(),
            generator,
            sink,
            metrics: PublisherMetrics::default(),
            o,
            generation_latency: Mutex::new(Duration::ZERO),
            worker: Mutex::new(None),
            listener: Mutex::new(None),
        });

        // Publish the initial document synchronously (the paper's minimal
        // WSDL / minimal CORBA-IDL at §5.1.1/§5.2.1).
        let initial = (core.generator)();
        (core.sink)(&initial);
        core.metrics.publications.fetch_add(1, Ordering::Relaxed);
        core.o.publications.inc();
        obs::events::record(
            &class.name(),
            VersionEventKind::Publication,
            initial.version,
        );
        core.state.lock().published_version = initial.version;

        // Listener thread: subscribes to class change events.
        let events = class.subscribe();
        let listener_core = core.clone();
        let listener = thread::Builder::new()
            .name(format!("dl-listener-{}", class.name()))
            .spawn(move || listener_loop(listener_core, events))
            .expect("spawn publisher listener");
        *core.listener.lock() = Some(listener);

        // Worker thread: runs generations per the state machine.
        let worker_core = core.clone();
        let worker = thread::Builder::new()
            .name(format!("dl-worker-{}", class.name()))
            .spawn(move || worker_loop(worker_core))
            .expect("spawn publisher worker");
        *core.worker.lock() = Some(worker);

        core
    }

    /// The class this publisher serves.
    pub fn class(&self) -> &ClassHandle {
        &self.class
    }

    /// Publication metrics.
    pub fn metrics(&self) -> &PublisherMetrics {
        &self.metrics
    }

    /// Changes the publication strategy (the SDE Manager Interface lets
    /// the user "control the publication frequency by specifying a
    /// timeout value", §4).
    pub fn set_strategy(&self, strategy: PublicationStrategy) {
        *self.strategy.lock() = strategy;
        self.cond.notify_all();
    }

    /// Current strategy.
    pub fn strategy(&self) -> PublicationStrategy {
        *self.strategy.lock()
    }

    /// Sets an artificial generation latency (models the expensive
    /// generation operation; used by tests and the consistency-matrix
    /// experiment).
    pub fn set_generation_latency(&self, latency: Duration) {
        *self.generation_latency.lock() = latency;
    }

    /// Version of the last published document.
    pub fn published_version(&self) -> u64 {
        self.state.lock().published_version
    }

    /// Whether the published document is current *right now* (timer idle,
    /// no generation in flight, version up to date).
    pub fn is_current(&self) -> bool {
        let st = self.state.lock();
        !st.generating
            && !st.force_now
            && st.deadline.is_none()
            && st.published_version == self.class.interface_version()
    }

    /// §4: "The user may decide to manually trigger the publication of the
    /// server interface description at any time by forcing timer
    /// expiration through the SDE Manager Interface."
    pub fn force_publish(&self) {
        let mut st = self.state.lock();
        st.deadline = None;
        st.force_now = true;
        self.cond.notify_all();
    }

    /// Blocks until the published interface description reflects every
    /// change made before this call — the §5.7 algorithm. Returns whether
    /// any waiting/forcing was needed (false = "was already current").
    pub fn ensure_current(&self) -> bool {
        let mut st = self.state.lock();
        let current_version = self.class.interface_version();
        if !st.generating
            && !st.force_now
            && st.deadline.is_none()
            && st.published_version == current_version
        {
            // Case 1 (§5.7): timer idle, no generation → already current.
            // This early return is what makes a rogue client unable to
            // trigger needless IDL generations.
            self.metrics.already_current.fetch_add(1, Ordering::Relaxed);
            self.o.already_current.inc();
            return false;
        }
        self.metrics.forced.fetch_add(1, Ordering::Relaxed);
        self.o.forced.inc();
        obs::trace::event(
            "sde::publisher",
            "ensure-current-forced",
            format!("class={} version={current_version}", self.class.name()),
        );
        // Cases 2/3: if a timer is pending (with or without an ongoing
        // generation), fold it into an immediate follow-up generation.
        if st.deadline.is_some() || st.published_version != current_version {
            st.deadline = None;
            st.force_now = true;
            self.cond.notify_all();
        }
        // Wait until all pending work has drained: any in-flight
        // generation finishes, plus the forced follow-up if one was queued.
        while st.generating || st.force_now {
            self.cond.wait(&mut st);
        }
        true
    }

    /// Stops the worker and listener threads.
    pub fn shutdown(&self) {
        {
            let mut st = self.state.lock();
            st.shutdown = true;
        }
        self.cond.notify_all();
        if let Some(t) = self.worker.lock().take() {
            let _ = t.join();
        }
        // The listener thread exits when the class drops its sender — or
        // immediately if the channel is already closed. Detach rather than
        // join, since the class (and its event sender) may outlive us.
        drop(self.listener.lock().take());
    }

    /// Called by the listener thread on every class event.
    fn on_change(&self, event: &ClassEvent) {
        let strategy = *self.strategy.lock();
        let mut st = self.state.lock();
        if st.shutdown {
            return;
        }
        if event.distributed_change {
            obs::events::record(
                &self.class.name(),
                VersionEventKind::InterfaceEdit,
                event.interface_version,
            );
        }
        // The listener thread receives events asynchronously; one may
        // arrive after a forced publication has already covered it. An
        // event whose interface version is already published carries no
        // pending work — arming the timer for it would leave the
        // publisher permanently "behind" its own output.
        if event.interface_version <= st.published_version && !st.generating && !st.force_now {
            return;
        }
        match strategy {
            PublicationStrategy::ChangeDriven => {
                if event.distributed_change {
                    st.force_now = true;
                    self.cond.notify_all();
                }
            }
            PublicationStrategy::Periodic(_) => {
                // Polling ignores change notifications; the worker re-arms
                // its own deadline.
            }
            PublicationStrategy::StableTimeout(timeout) => {
                // §5.6: a change starts the countdown; further
                // distributed-interface changes reset it (other changes
                // leave a running timer alone).
                if st.deadline.is_none() || event.distributed_change {
                    st.deadline = Some(Instant::now() + timeout);
                    obs::events::record(
                        &self.class.name(),
                        VersionEventKind::TimerReset,
                        event.interface_version,
                    );
                    self.cond.notify_all();
                }
            }
        }
    }
}

fn listener_loop(core: Arc<PublisherCore>, events: Receiver<ClassEvent>) {
    while let Ok(event) = events.recv() {
        core.on_change(&event);
        if core.state.lock().shutdown {
            return;
        }
    }
}

fn worker_loop(core: Arc<PublisherCore>) {
    loop {
        // Decide whether to generate now, wait, or exit. The flag records
        // whether this round was forced (stale call / manual trigger) as
        // opposed to a timer running out on its own.
        let was_forced = {
            let mut st = core.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                // Periodic strategy arms its own deadline.
                if st.deadline.is_none() && !st.force_now {
                    if let PublicationStrategy::Periodic(interval) = *core.strategy.lock() {
                        st.deadline = Some(Instant::now() + interval);
                    }
                }
                let now = Instant::now();
                let timer_expired = st.deadline.is_some_and(|d| d <= now);
                if st.force_now || timer_expired {
                    let forced = st.force_now;
                    if timer_expired
                        && !forced
                        && matches!(*core.strategy.lock(), PublicationStrategy::StableTimeout(_))
                    {
                        obs::events::record(
                            &core.class.name(),
                            VersionEventKind::StabilityTimeout,
                            core.class.interface_version(),
                        );
                    }
                    st.force_now = false;
                    st.deadline = None;
                    st.generating = true;
                    break forced;
                }
                match st.deadline {
                    Some(d) => {
                        core.cond.wait_until(&mut st, d);
                    }
                    None => core.cond.wait(&mut st),
                }
            }
        };

        // Generation happens outside the lock — the timer keeps running
        // independently (§5.6).
        let latency = *core.generation_latency.lock();
        let span = obs::trace::Span::timed(core.o.generation_ns.clone());
        if !latency.is_zero() {
            thread::sleep(latency);
        }
        let doc = (core.generator)();
        span.finish();
        core.metrics.generations.fetch_add(1, Ordering::Relaxed);
        core.o.generations.inc();
        obs::events::record(
            &core.class.name(),
            VersionEventKind::Generation,
            doc.version,
        );

        // Publish if the interface actually changed.
        let mut st = core.state.lock();
        if doc.version != st.published_version {
            st.published_version = doc.version;
            drop(st);
            (core.sink)(&doc);
            core.metrics.publications.fetch_add(1, Ordering::Relaxed);
            core.o.publications.inc();
            let kind = if was_forced {
                VersionEventKind::ForcedPublication
            } else {
                VersionEventKind::Publication
            };
            obs::events::record(&core.class.name(), kind, doc.version);
            obs::trace::event(
                "sde::publisher",
                "publish",
                format!(
                    "class={} version={} forced={was_forced}",
                    core.class.name(),
                    doc.version
                ),
            );
            st = core.state.lock();
        }
        st.generating = false;
        // If the just-published document already covers every change, a
        // still-armed timer has nothing left to publish: cancel it
        // ("publishing if necessary", §5.6). The check is conservative —
        // any change arriving after this read re-arms the timer through
        // its own event.
        if st.published_version == core.class.interface_version()
            && !st.force_now
            && !matches!(*core.strategy.lock(), PublicationStrategy::Periodic(_))
        {
            st.deadline = None;
        }
        core.cond.notify_all();
        // If the timer expired again during generation (or a force
        // arrived), the loop immediately runs another generation — the
        // queued-regeneration rule of §5.6.
        drop(st);
    }
}

impl Drop for PublisherCore {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        drop(st);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpie::{MethodBuilder, TypeDesc};
    use std::sync::Mutex as StdMutex;

    fn test_class(name: &str) -> ClassHandle {
        let class = ClassHandle::new(name);
        class
            .add_method(MethodBuilder::new("seed", TypeDesc::Void).distributed(true))
            .unwrap();
        class
    }

    /// Publisher wired to an in-memory publication log.
    fn start_publisher(
        class: &ClassHandle,
        strategy: PublicationStrategy,
    ) -> (Arc<PublisherCore>, Arc<StdMutex<Vec<u64>>>) {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let gen_class = class.clone();
        let sink_log = log.clone();
        let core = PublisherCore::start(
            class.clone(),
            strategy,
            Box::new(move || GeneratedDoc {
                text: format!("doc-v{}", gen_class.interface_version()),
                version: gen_class.interface_version(),
            }),
            Box::new(move |doc| sink_log.lock().unwrap().push(doc.version)),
        );
        (core, log)
    }

    fn wait_for<F: Fn() -> bool>(cond: F, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn initial_document_published_at_start() {
        let class = test_class("P0");
        let (core, log) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(20)),
        );
        assert_eq!(log.lock().unwrap().len(), 1);
        assert!(core.is_current());
        core.shutdown();
    }

    #[test]
    fn stable_timeout_waits_for_quiet_period() {
        let class = test_class("P1");
        let (core, log) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(40)),
        );

        // Burst of edits with gaps shorter than the timeout: no
        // publication until the burst ends.
        for i in 0..4 {
            class
                .add_method(MethodBuilder::new(format!("m{i}"), TypeDesc::Void).distributed(true))
                .unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(log.lock().unwrap().len(), 1, "no publication mid-burst");

        wait_for(|| core.is_current(), "stable publication");
        let published = log.lock().unwrap().clone();
        // Exactly one publication for the whole burst, at the final version.
        assert_eq!(published.len(), 2);
        assert_eq!(*published.last().unwrap(), class.interface_version());
        core.shutdown();
    }

    #[test]
    fn change_driven_publishes_every_change() {
        let class = test_class("P2");
        let (core, log) = start_publisher(&class, PublicationStrategy::ChangeDriven);
        for i in 0..3 {
            class
                .add_method(MethodBuilder::new(format!("m{i}"), TypeDesc::Void).distributed(true))
                .unwrap();
            wait_for(|| core.is_current(), "change-driven publication");
        }
        // Initial + one per change.
        assert_eq!(log.lock().unwrap().len(), 4);
        core.shutdown();
    }

    #[test]
    fn non_distributed_changes_do_not_reset_but_do_start_timer() {
        let class = test_class("P3");
        let (core, _log) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(30)),
        );
        // A body change starts the timer (per §5.6 "a change to the
        // relevant server class").
        let m = class.find_method("seed").unwrap();
        class.set_body_block(m, vec![]).unwrap();
        assert!(!core.is_current() || core.published_version() == class.interface_version());
        // It publishes nothing new (interface version unchanged)...
        wait_for(|| core.is_current(), "timer drain");
        assert_eq!(core.published_version(), class.interface_version());
        core.shutdown();
    }

    #[test]
    fn force_publish_expires_timer_immediately() {
        let class = test_class("P4");
        let (core, log) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        );
        class
            .add_method(MethodBuilder::new("late", TypeDesc::Void).distributed(true))
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 1, "huge timeout still pending");
        core.force_publish();
        wait_for(|| core.is_current(), "forced publication");
        assert_eq!(
            *log.lock().unwrap().last().unwrap(),
            class.interface_version()
        );
        core.shutdown();
    }

    #[test]
    fn ensure_current_is_noop_when_idle() {
        let class = test_class("P5");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        );
        wait_for(|| core.is_current(), "initial quiesce");
        assert!(!core.ensure_current(), "no work when already current");
        let (_, _, forced, already) = core.metrics().snapshot();
        assert_eq!(forced, 0);
        assert_eq!(already, 1);
        core.shutdown();
    }

    #[test]
    fn ensure_current_waits_for_pending_timer() {
        let class = test_class("P6");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        );
        class
            .add_method(MethodBuilder::new("fresh", TypeDesc::Void).distributed(true))
            .unwrap();
        // Timer armed with an hour to go; ensure_current must not wait an
        // hour — it forces the publication.
        let start = Instant::now();
        assert!(core.ensure_current());
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(core.published_version(), class.interface_version());
        core.shutdown();
    }

    #[test]
    fn ensure_current_waits_for_inflight_generation() {
        let class = test_class("P7");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(5)),
        );
        core.set_generation_latency(Duration::from_millis(60));
        class
            .add_method(MethodBuilder::new("slow", TypeDesc::Void).distributed(true))
            .unwrap();
        // Let the timer expire so the slow generation starts.
        thread::sleep(Duration::from_millis(20));
        assert!(core.ensure_current());
        assert_eq!(core.published_version(), class.interface_version());
        core.shutdown();
    }

    #[test]
    fn timer_expiry_during_generation_queues_followup() {
        let class = test_class("P8");
        let (core, log) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        );
        core.set_generation_latency(Duration::from_millis(80));
        // First change arms the timer; generation (slow) starts at ~10ms.
        class
            .add_method(MethodBuilder::new("a", TypeDesc::Void).distributed(true))
            .unwrap();
        thread::sleep(Duration::from_millis(30)); // generation of v+1 in flight
                                                  // Second change while generating: arms the timer again, expiring
                                                  // mid-generation → a follow-up generation must run.
        class
            .add_method(MethodBuilder::new("b", TypeDesc::Void).distributed(true))
            .unwrap();
        wait_for(
            || core.published_version() == class.interface_version(),
            "follow-up generation",
        );
        let published = log.lock().unwrap().clone();
        assert_eq!(*published.last().unwrap(), class.interface_version());
        core.shutdown();
    }

    #[test]
    fn periodic_strategy_polls() {
        let class = test_class("P9");
        let (core, log) = start_publisher(
            &class,
            PublicationStrategy::Periodic(Duration::from_millis(15)),
        );
        class
            .add_method(MethodBuilder::new("x", TypeDesc::Void).distributed(true))
            .unwrap();
        wait_for(
            || core.published_version() == class.interface_version(),
            "poll publication",
        );
        // Let several more poll cycles pass: no further publications
        // because the version is unchanged.
        let count = log.lock().unwrap().len();
        thread::sleep(Duration::from_millis(60));
        assert_eq!(log.lock().unwrap().len(), count);
        core.shutdown();
    }

    #[test]
    fn rogue_client_cannot_force_generations() {
        let class = test_class("P10");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        );
        wait_for(|| core.is_current(), "quiesce");
        let (gens_before, _, _, _) = core.metrics().snapshot();
        // 100 stale-call prompts with no intervening edits.
        for _ in 0..100 {
            core.ensure_current();
        }
        let (gens_after, _, forced, already) = core.metrics().snapshot();
        assert_eq!(gens_after, gens_before, "no generation triggered");
        assert_eq!(forced, 0);
        assert_eq!(already, 100);
        core.shutdown();
    }

    #[test]
    fn strategy_can_be_changed_live() {
        let class = test_class("P11");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        );
        core.set_strategy(PublicationStrategy::ChangeDriven);
        assert_eq!(core.strategy(), PublicationStrategy::ChangeDriven);
        class
            .add_method(MethodBuilder::new("now", TypeDesc::Void).distributed(true))
            .unwrap();
        wait_for(
            || core.published_version() == class.interface_version(),
            "immediate publication after strategy switch",
        );
        core.shutdown();
    }

    #[test]
    fn published_versions_are_monotonic_under_random_schedules() {
        use obs::rng::XorShift64;

        for seed in 0..6u64 {
            let mut rng = XorShift64::seed_from_u64(seed);
            let class = test_class(&format!("PMono{seed}"));
            let log = Arc::new(StdMutex::new(Vec::<u64>::new()));
            let gen_class = class.clone();
            let sink_log = log.clone();
            let core = PublisherCore::start(
                class.clone(),
                PublicationStrategy::StableTimeout(Duration::from_millis(3)),
                Box::new(move || GeneratedDoc {
                    text: String::new(),
                    version: gen_class.interface_version(),
                }),
                Box::new(move |doc| sink_log.lock().unwrap().push(doc.version)),
            );
            if rng.gen_bool(0.5) {
                core.set_generation_latency(Duration::from_millis(2));
            }

            let mut method_n = 0u32;
            for _ in 0..30 {
                match rng.gen_range(0, 4) {
                    0 => {
                        method_n += 1;
                        class
                            .add_method(
                                MethodBuilder::new(format!("r{method_n}"), TypeDesc::Void)
                                    .distributed(true),
                            )
                            .unwrap();
                    }
                    1 => core.force_publish(),
                    2 => {
                        core.ensure_current();
                    }
                    _ => thread::sleep(Duration::from_millis(rng.gen_range(0, 4) as u64)),
                }
            }
            // Quiesce: after ensure_current the published doc reflects all
            // edits made before the call.
            core.ensure_current();
            assert_eq!(
                core.published_version(),
                class.interface_version(),
                "seed {seed}"
            );
            // The publication stream never goes backwards.
            let versions = log.lock().unwrap().clone();
            assert!(
                versions.windows(2).all(|w| w[0] <= w[1]),
                "seed {seed}: non-monotonic publications {versions:?}"
            );
            core.shutdown();
        }
    }

    #[test]
    fn version_event_log_tracks_lifecycle() {
        let class = test_class("PEvents");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        );
        assert!(
            obs::events::count("PEvents", VersionEventKind::Publication) >= 1,
            "initial publication recorded"
        );
        class
            .add_method(MethodBuilder::new("evt", TypeDesc::Void).distributed(true))
            .unwrap();
        wait_for(|| core.is_current(), "stable publication");
        assert!(obs::events::count("PEvents", VersionEventKind::InterfaceEdit) >= 1);
        assert!(obs::events::count("PEvents", VersionEventKind::TimerReset) >= 1);
        assert_eq!(
            obs::events::latest_published_version("PEvents"),
            Some(class.interface_version())
        );
        core.shutdown();
    }

    #[test]
    fn forced_publication_recorded_as_forced() {
        let class = test_class("PForced");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        );
        class
            .add_method(MethodBuilder::new("f", TypeDesc::Void).distributed(true))
            .unwrap();
        assert!(core.ensure_current());
        assert!(obs::events::count("PForced", VersionEventKind::ForcedPublication) >= 1);
        core.shutdown();
    }

    #[test]
    fn concurrent_ensure_current_callers() {
        let class = test_class("P12");
        let (core, _) = start_publisher(
            &class,
            PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        );
        class
            .add_method(MethodBuilder::new("c", TypeDesc::Void).distributed(true))
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let core = core.clone();
            handles.push(thread::spawn(move || core.ensure_current()));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(core.published_version(), class.interface_version());
        core.shutdown();
    }
}
