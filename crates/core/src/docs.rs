//! The Interface Server: HTTP publication of WSDL / CORBA-IDL / IOR
//! documents (§5.1/§5.2 — "a simple HTTP server that publishes the
//! documents to the public domain"; one instance is shared by both
//! subsystems "for simplicity").

use std::collections::HashMap;
use std::sync::Arc;

use httpd::{Handler, HttpServer, Request, Response};
use obs::sync::RwLock;

use crate::error::SdeError;
use crate::wal::VersionWal;

/// The shared store of published documents, keyed by URL path
/// (e.g. `/Calc.wsdl`, `/Calc.idl`, `/Calc.ior`).
#[derive(Debug, Default, Clone)]
pub struct DocumentStore {
    docs: Arc<RwLock<HashMap<String, PublishedDocument>>>,
    /// Version history per path (append-only; survives retraction).
    history: Arc<RwLock<HashMap<String, Vec<u64>>>>,
    /// Durable publication log, when the manager was configured with one.
    wal: Arc<RwLock<Option<Arc<VersionWal>>>>,
}

/// One published document with its version stamp.
///
/// The body is stored as a shared `Arc<[u8]>`, so cloning a document
/// (and serving it over HTTP) never copies the bytes — the Interface
/// Server hands the same allocation to every concurrent reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishedDocument {
    body: Arc<[u8]>,
    /// Interface version the document reflects.
    pub version: u64,
    /// MIME type served with it.
    pub content_type: &'static str,
}

impl PublishedDocument {
    /// Document body as text (documents are WSDL/IDL/IOR — always UTF-8).
    pub fn content(&self) -> &str {
        std::str::from_utf8(&self.body).expect("published documents are UTF-8")
    }

    /// Shared handle to the document bytes (zero-copy serving).
    pub fn body(&self) -> Arc<[u8]> {
        self.body.clone()
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the document is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Strong validator for conditional GETs, derived from the interface
    /// version (the store only republishes on version change, so the
    /// version uniquely identifies the bytes).
    pub fn etag(&self) -> String {
        format!("\"v{}\"", self.version)
    }
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> DocumentStore {
        DocumentStore::default()
    }

    /// Attaches a durable publication log: every subsequent
    /// [`publish`](DocumentStore::publish) appends to it before the
    /// document becomes visible in the store.
    pub fn attach_wal(&self, wal: Arc<VersionWal>) {
        *self.wal.write() = Some(wal);
    }

    /// Publishes (or replaces) the document at `path`. Returns whether
    /// the document actually became visible: when a durable log is
    /// attached and the version cannot be made durable, the publication
    /// is refused — a client must never observe a version a crash could
    /// forget.
    pub fn publish(
        &self,
        path: &str,
        content: String,
        version: u64,
        content_type: &'static str,
    ) -> bool {
        // Durability first: the version must hit disk before any client
        // can observe it, or a crash could roll the version stream back.
        if let Some(wal) = self.wal.read().as_ref() {
            if let Err(e) = wal.append(path, version) {
                obs::registry()
                    .counter("sde_docs_publish_refused_total")
                    .inc();
                obs::trace::event(
                    "sde::docs",
                    "publish-refused",
                    format!("path={path} version={version} wal append failed: {e}"),
                );
                return false;
            }
        }
        self.docs.write().insert(
            path.to_string(),
            PublishedDocument {
                body: content.into_bytes().into(),
                version,
                content_type,
            },
        );
        self.history
            .write()
            .entry(path.to_string())
            .or_default()
            .push(version);
        obs::registry().counter("sde_docs_published_total").inc();
        obs::trace::verbose_event(
            "sde::docs",
            "publish",
            format!("path={path} version={version}"),
        );
        true
    }

    /// The sequence of versions ever published at `path` (oldest first) —
    /// the observability hook behind the publication experiments.
    pub fn history(&self, path: &str) -> Vec<u64> {
        self.history.read().get(path).cloned().unwrap_or_default()
    }

    /// Removes the document at `path` (used when a server is retired).
    pub fn retract(&self, path: &str) {
        self.docs.write().remove(path);
        obs::registry().counter("sde_docs_retracted_total").inc();
    }

    /// Reads the document at `path`.
    pub fn get(&self, path: &str) -> Option<PublishedDocument> {
        self.docs.read().get(path).cloned()
    }

    /// All published paths.
    pub fn paths(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }
}

struct StoreHandler {
    store: DocumentStore,
}

impl Handler for StoreHandler {
    fn handle(&self, req: &Request) -> Response {
        let path = req.path().split('?').next().unwrap_or("/");
        match self.store.get(path) {
            Some(doc) => {
                let etag = doc.etag();
                // Conditional GET: a client that already holds this
                // version gets a bodyless 304 — the watcher's steady
                // state costs headers only, never a re-download.
                if req.headers().get("If-None-Match") == Some(etag.as_str()) {
                    let mut resp =
                        Response::new(httpd::Status::NOT_MODIFIED, Vec::new(), doc.content_type);
                    resp.headers_mut().set("ETag", etag);
                    resp.headers_mut()
                        .set("X-Interface-Version", doc.version.to_string());
                    return resp;
                }
                // HEAD gets the headers (length, version) without the body
                // — clients use it to poll for version changes cheaply.
                let mut resp = if req.method() == httpd::Method::Head {
                    Response::ok(Vec::new(), doc.content_type)
                } else {
                    // The shared body Arc goes straight to the socket
                    // writer: no per-request copy of the document.
                    Response::ok_shared(doc.body(), doc.content_type)
                };
                resp.headers_mut()
                    .set("X-Interface-Version", doc.version.to_string());
                resp.headers_mut().set("ETag", etag);
                resp.headers_mut()
                    .set("Content-Length", doc.len().to_string());
                resp
            }
            None => Response::not_found(&format!("no document published at {path}")),
        }
    }
}

/// The Interface Server: serves every document in a [`DocumentStore`]
/// over HTTP.
#[derive(Debug)]
pub struct InterfaceServer {
    store: DocumentStore,
    http: HttpServer,
}

impl InterfaceServer {
    /// Binds `addr` (e.g. `mem://sde-ifc-1` or `tcp://127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Fails if the endpoint cannot be bound.
    pub fn bind(addr: &str) -> Result<InterfaceServer, SdeError> {
        let store = DocumentStore::new();
        // Hardened pool: header/body limits, per-request read timeouts
        // and queue deadlines, so a slow-loris or blackholed peer cannot
        // wedge interface-document serving.
        let http = HttpServer::bind_with(
            addr,
            StoreHandler {
                store: store.clone(),
            },
            httpd::PoolConfig::hardened(),
        )?;
        Ok(InterfaceServer { store, http })
    }

    /// The store documents are published into.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Base URL, e.g. `mem://sde-ifc-1`.
    pub fn base_url(&self) -> String {
        self.http.base_url()
    }

    /// Full URL for a published path.
    pub fn url_for(&self, path: &str) -> String {
        format!("{}{}", self.base_url(), path)
    }

    /// Stops serving.
    pub fn shutdown(&self) {
        self.http.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpd::HttpClient;

    #[test]
    fn publish_and_fetch() {
        let server = InterfaceServer::bind("mem://ifc-basic").unwrap();
        server
            .store()
            .publish("/Calc.wsdl", "<wsdl/>".into(), 3, "text/xml");
        let resp = HttpClient::new()
            .get(&server.url_for("/Calc.wsdl"))
            .unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.body_str(), "<wsdl/>");
        assert_eq!(resp.headers().get("X-Interface-Version"), Some("3"));
        server.shutdown();
    }

    #[test]
    fn missing_document_is_404() {
        let server = InterfaceServer::bind("mem://ifc-404").unwrap();
        let resp = HttpClient::new().get(&server.url_for("/nope.idl")).unwrap();
        assert_eq!(resp.status(), 404);
        server.shutdown();
    }

    #[test]
    fn republication_replaces_content() {
        let server = InterfaceServer::bind("mem://ifc-repub").unwrap();
        server
            .store()
            .publish("/a.idl", "v1".into(), 1, "text/plain");
        server
            .store()
            .publish("/a.idl", "v2".into(), 2, "text/plain");
        let resp = HttpClient::new().get(&server.url_for("/a.idl")).unwrap();
        assert_eq!(resp.body_str(), "v2");
        assert_eq!(resp.headers().get("X-Interface-Version"), Some("2"));
        server.shutdown();
    }

    #[test]
    fn history_records_all_versions() {
        let store = DocumentStore::new();
        assert!(store.history("/a.wsdl").is_empty());
        store.publish("/a.wsdl", "v1".into(), 1, "text/xml");
        store.publish("/a.wsdl", "v3".into(), 3, "text/xml");
        store.publish("/b.idl", "x".into(), 7, "text/plain");
        assert_eq!(store.history("/a.wsdl"), vec![1, 3]);
        assert_eq!(store.history("/b.idl"), vec![7]);
        // Retraction does not erase history.
        store.retract("/a.wsdl");
        assert_eq!(store.history("/a.wsdl"), vec![1, 3]);
    }

    #[test]
    fn publish_refused_when_wal_cannot_record_the_version() {
        let dir = std::env::temp_dir().join("live-rmi-docs-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("refuse-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let wal = Arc::new(crate::wal::VersionWal::open(&path).unwrap());
        let store = DocumentStore::new();
        store.attach_wal(wal.clone());
        assert!(store.publish("/A.wsdl", "<v1/>".into(), 1, "text/xml"));
        wal.poison_for_test();
        assert!(
            !store.publish("/A.wsdl", "<v2/>".into(), 2, "text/xml"),
            "a version the WAL could not record must not become visible"
        );
        // Clients still see only the last durable version.
        assert_eq!(store.get("/A.wsdl").unwrap().version, 1);
        assert_eq!(store.history("/A.wsdl"), vec![1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retract_removes() {
        let server = InterfaceServer::bind("mem://ifc-retract").unwrap();
        server
            .store()
            .publish("/a.ior", "IOR:00".into(), 0, "text/plain");
        assert_eq!(server.store().paths().len(), 1);
        server.store().retract("/a.ior");
        let resp = HttpClient::new().get(&server.url_for("/a.ior")).unwrap();
        assert_eq!(resp.status(), 404);
        server.shutdown();
    }

    #[test]
    fn head_returns_version_without_body() {
        let server = InterfaceServer::bind("mem://ifc-head").unwrap();
        server
            .store()
            .publish("/Svc.wsdl", "a-sizeable-document".into(), 9, "text/xml");
        let resp = HttpClient::new()
            .head(&server.url_for("/Svc.wsdl"))
            .unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.headers().get("X-Interface-Version"), Some("9"));
        assert_eq!(
            resp.headers().get("Content-Length"),
            Some("a-sizeable-document".len().to_string().as_str())
        );
        assert!(resp.body().is_empty());
        // The connection is not wedged: a follow-up GET works.
        let resp = HttpClient::new().get(&server.url_for("/Svc.wsdl")).unwrap();
        assert_eq!(resp.body_str(), "a-sizeable-document");
        server.shutdown();
    }

    #[test]
    fn conditional_get_returns_304_until_republication() {
        let server = InterfaceServer::bind("mem://ifc-etag").unwrap();
        server
            .store()
            .publish("/Svc.wsdl", "<wsdl v1/>".into(), 1, "text/xml");
        let url = server.url_for("/Svc.wsdl");

        let first = HttpClient::new().get(&url).unwrap();
        assert_eq!(first.status(), 200);
        let etag = first
            .headers()
            .get("ETag")
            .expect("ETag served")
            .to_string();
        assert_eq!(etag, "\"v1\"");

        // Same version: 304, no body.
        let mut req = httpd::Request::get("/Svc.wsdl");
        req.headers_mut().set("If-None-Match", &etag);
        let mut conn = HttpClient::new().connect(&url).unwrap();
        let not_modified = conn.send(&req).unwrap();
        assert_eq!(not_modified.status(), 304);
        assert!(not_modified.body().is_empty());
        assert_eq!(not_modified.headers().get("ETag"), Some(etag.as_str()));

        // Republication changes the ETag and the stale validator
        // re-downloads the full document.
        server
            .store()
            .publish("/Svc.wsdl", "<wsdl v2/>".into(), 2, "text/xml");
        let refreshed = conn.send(&req).unwrap();
        assert_eq!(refreshed.status(), 200);
        assert_eq!(refreshed.body_str(), "<wsdl v2/>");
        assert_eq!(refreshed.headers().get("ETag"), Some("\"v2\""));
        server.shutdown();
    }

    #[test]
    fn served_body_shares_the_published_allocation() {
        // Zero-copy check: two `get`s hand back the same Arc allocation.
        let store = DocumentStore::new();
        store.publish("/a.wsdl", "shared-bytes".into(), 1, "text/xml");
        let a = store.get("/a.wsdl").unwrap().body();
        let b = store.get("/a.wsdl").unwrap().body();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn query_strings_ignored() {
        let server = InterfaceServer::bind("mem://ifc-query").unwrap();
        server
            .store()
            .publish("/x.wsdl", "doc".into(), 1, "text/xml");
        let resp = HttpClient::new()
            .get(&server.url_for("/x.wsdl?cache-bust=1"))
            .unwrap();
        assert_eq!(resp.body_str(), "doc");
        server.shutdown();
    }
}
