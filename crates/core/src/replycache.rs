//! Bounded, TTL'd server-side reply cache keyed by [`obs::CallId`].
//!
//! The server half of the exactly-once bargain: every reply to a call
//! that carried an id and *executed the method body* is stored here, and
//! a redelivery of the same id (a client retry whose first attempt
//! executed but whose reply was lost) returns the stored reply *without
//! re-executing the method body*. Combined with the client reusing one
//! id across retries, that gives at-most-once execution — and with
//! retries on top, effectively exactly-once for calls that eventually
//! complete.
//!
//! "Executed" includes application exceptions: a method that mutated
//! state and then threw has had its side effects, so its fault reply is
//! cached exactly like a success — a lost fault reply must not license a
//! re-execution. Only `Server not initialized` and `Non existent Method`
//! outcomes are *not* cached, because dispatch never entered the method
//! body for them and they describe transient server states the §5.7/§6
//! machinery exists to repair — caching them would pin a client to a
//! fault its own retry protocol is designed to recover from.
//!
//! Admission is two-phase to close the in-flight window: the handler
//! calls [`ReplyCache::admit`] *before* dispatch, which installs an
//! in-progress sentinel, and [`ReplyCache::complete`] (or
//! [`ReplyCache::abort`], when dispatch did not execute the body) after.
//! A duplicate delivery that arrives while the first is still executing
//! waits briefly for its result instead of executing a second copy; if
//! the first delivery outlasts the wait, the duplicate is rejected with
//! a retryable fault rather than violating at-most-once.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::sync::{Condvar, Mutex};
use obs::CallId;

/// One stored reply, in whatever form the serving protocol wants to
/// replay it.
#[derive(Debug, Clone)]
pub enum CachedReply {
    /// The encoded SOAP 200 response body, shared so a replay is a
    /// refcount bump, not a copy.
    SoapBody(Arc<[u8]>),
    /// The encoded SOAP Fault body of an application exception — the
    /// method body executed (and may have mutated state) before
    /// throwing, so the fault replays exactly like a success.
    SoapFault(Arc<[u8]>),
    /// A CORBA result value (re-marshalled per replay; CDR encoding
    /// into the connection's recycled buffers is already alloc-free).
    Value(jpie::Value),
    /// A CORBA application (user) exception message — same rationale as
    /// [`CachedReply::SoapFault`].
    Exception(String),
}

/// Outcome of [`ReplyCache::admit`] for an id-carrying delivery.
#[derive(Debug)]
pub enum Admission {
    /// First delivery of this call: execute it, then call
    /// [`ReplyCache::complete`] (the body ran) or [`ReplyCache::abort`]
    /// (dispatch refused before entering the body).
    Execute,
    /// This call already executed — replay the stored reply, do not run
    /// the method again.
    Replay(CachedReply),
    /// The first delivery is still executing and did not finish within
    /// the wait bound: answer with a retryable fault so the client tries
    /// again later, after the original completes.
    InFlight,
}

/// Point-in-time cache statistics, for the REPL's `replycache` command
/// and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyCacheStats {
    /// Completed replies currently resident.
    pub entries: usize,
    /// Calls admitted for execution whose outcome is not yet recorded.
    pub in_flight: usize,
    /// Replies stored over the cache's lifetime.
    pub stores: u64,
    /// Duplicate deliveries served from the cache.
    pub hits: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    reply: CachedReply,
    stored_at: Instant,
}

#[derive(Debug)]
enum Slot {
    /// Admitted for execution; the outcome is not yet known.
    InFlight { since: Instant },
    /// Executed; the reply is replayable.
    Done(Entry),
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CallId, Slot>,
    /// Insertion order for FIFO eviction. May contain ids that expiry
    /// or abort already removed from the map; eviction skips those.
    order: VecDeque<CallId>,
}

/// The cache proper: FIFO-bounded, TTL'd, shared by one gateway.
pub struct ReplyCache {
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight slot resolves (complete/abort),
    /// waking duplicates parked in [`ReplyCache::admit`].
    resolved: Condvar,
    capacity: usize,
    ttl: Duration,
    inflight_wait: Duration,
    stores: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    o_stores: Arc<obs::Counter>,
    o_hits: Arc<obs::Counter>,
    o_evictions: Arc<obs::Counter>,
}

impl std::fmt::Debug for ReplyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplyCache")
            .field("capacity", &self.capacity)
            .field("ttl", &self.ttl)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default capacity: enough to cover every in-flight retry window of a
/// busy development server without growing unboundedly.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default TTL: comfortably longer than any client deadline budget
/// (the default `cde` deadline is 10 seconds), so a retry arriving at
/// the very end of its budget still finds the first attempt's reply.
pub const DEFAULT_TTL: Duration = Duration::from_secs(30);

/// How long a duplicate delivery waits for the original execution before
/// being bounced with a retryable fault. Ties up one server worker at
/// most this long, so it stays well under the hardened pool's timeouts.
pub const DEFAULT_INFLIGHT_WAIT: Duration = Duration::from_secs(5);

impl ReplyCache {
    /// Creates a cache with the default bound and TTL, registering its
    /// metrics under the given class label.
    pub fn for_class(class: &str) -> ReplyCache {
        ReplyCache::new(class, DEFAULT_CAPACITY, DEFAULT_TTL)
    }

    /// Creates a cache with an explicit capacity and TTL.
    pub fn new(class: &str, capacity: usize, ttl: Duration) -> ReplyCache {
        let r = obs::registry();
        let labels = [("class", class)];
        ReplyCache {
            inner: Mutex::new(Inner::default()),
            resolved: Condvar::new(),
            capacity: capacity.max(1),
            ttl,
            inflight_wait: DEFAULT_INFLIGHT_WAIT,
            stores: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            o_stores: r.counter_with("replies_cached_total", &labels),
            o_hits: r.counter_with("duplicate_calls_suppressed_total", &labels),
            o_evictions: r.counter_with("reply_cache_evictions_total", &labels),
        }
    }

    /// Overrides how long a duplicate delivery waits on an in-flight
    /// original before being rejected as retryable.
    pub fn with_inflight_wait(mut self, wait: Duration) -> ReplyCache {
        self.inflight_wait = wait;
        self
    }

    /// Admits one id-carrying delivery: exactly one delivery of a given
    /// id is told to [`Admission::Execute`] (and owes a
    /// [`complete`](ReplyCache::complete) or
    /// [`abort`](ReplyCache::abort)); concurrent and later duplicates
    /// get the stored reply or a retryable rejection.
    pub fn admit(&self, id: CallId) -> Admission {
        let deadline = Instant::now() + self.inflight_wait;
        let mut inner = self.inner.lock();
        loop {
            enum Step {
                Claim,
                DropExpired,
                Replay(CachedReply),
                Wait,
            }
            let step = match inner.map.get(&id) {
                None => Step::Claim,
                Some(Slot::Done(e)) => {
                    if e.stored_at.elapsed() > self.ttl {
                        Step::DropExpired
                    } else {
                        Step::Replay(e.reply.clone())
                    }
                }
                // An execution that never resolved (its worker died)
                // must not wedge the id forever: past the TTL the
                // sentinel counts as abandoned and is claimed anew.
                Some(Slot::InFlight { since }) => {
                    if since.elapsed() > self.ttl {
                        Step::Claim
                    } else {
                        Step::Wait
                    }
                }
            };
            match step {
                Step::Claim => {
                    let fresh = inner
                        .map
                        .insert(
                            id,
                            Slot::InFlight {
                                since: Instant::now(),
                            },
                        )
                        .is_none();
                    if fresh {
                        inner.order.push_back(id);
                    }
                    return Admission::Execute;
                }
                Step::DropExpired => {
                    inner.map.remove(&id);
                    // Loop: the next pass claims the now-empty slot.
                }
                Step::Replay(reply) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.o_hits.inc();
                    return Admission::Replay(reply);
                }
                Step::Wait => {
                    if self.resolved.wait_until(&mut inner, deadline).timed_out() {
                        // Completion may have raced the timeout.
                        if let Some(Slot::Done(e)) = inner.map.get(&id) {
                            if e.stored_at.elapsed() <= self.ttl {
                                self.hits.fetch_add(1, Ordering::Relaxed);
                                self.o_hits.inc();
                                return Admission::Replay(e.reply.clone());
                            }
                        }
                        return Admission::InFlight;
                    }
                }
            }
        }
    }

    /// Records the reply of an executed call, resolving its in-flight
    /// sentinel and waking any duplicate waiting on it.
    pub fn complete(&self, id: CallId, reply: CachedReply) {
        let mut inner = self.inner.lock();
        let fresh = inner
            .map
            .insert(
                id,
                Slot::Done(Entry {
                    reply,
                    stored_at: Instant::now(),
                }),
            )
            .is_none();
        if fresh {
            inner.order.push_back(id);
        }
        // Capacity eviction never touches in-flight sentinels (evicting
        // one would let its duplicate re-execute); rotate them to the
        // back, bounded so an all-in-flight queue cannot spin forever.
        let mut rotations = inner.order.len();
        while inner.map.len() > self.capacity && rotations > 0 {
            rotations -= 1;
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            match inner.map.get(&oldest) {
                Some(Slot::InFlight { .. }) => inner.order.push_back(oldest),
                Some(Slot::Done(_)) => {
                    inner.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.o_evictions.inc();
                }
                // Expired or aborted earlier — the order slot was stale.
                None => {}
            }
        }
        drop(inner);
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.o_stores.inc();
        self.resolved.notify_all();
    }

    /// Releases the in-flight sentinel of a call whose dispatch did
    /// *not* execute the method body (`Server not initialized` /
    /// `Non existent Method`): the outcome is not cached, so a retry
    /// after the server heals re-executes — which is correct, since no
    /// side effects happened.
    pub fn abort(&self, id: CallId) {
        let mut inner = self.inner.lock();
        if matches!(inner.map.get(&id), Some(Slot::InFlight { .. })) {
            inner.map.remove(&id);
        }
        drop(inner);
        self.resolved.notify_all();
    }

    /// Snapshot of every completed reply, for planned migration: the
    /// reply cache must travel with the class, or a client whose first
    /// attempt executed on the old shard (reply lost in flight) would
    /// re-execute its retry on the new one. In-flight sentinels are not
    /// exported — migration only runs this after quiescence, when none
    /// remain.
    pub fn export_entries(&self) -> Vec<(CallId, CachedReply)> {
        let inner = self.inner.lock();
        inner
            .order
            .iter()
            .filter_map(|id| match inner.map.get(id) {
                Some(Slot::Done(e)) if e.stored_at.elapsed() <= self.ttl => {
                    Some((*id, e.reply.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Installs exported replies (the receiving half of a migration
    /// handoff). Existing entries for the same id are left in place.
    pub fn import_entries(&self, entries: Vec<(CallId, CachedReply)>) {
        let mut inner = self.inner.lock();
        for (id, reply) in entries {
            if inner.map.contains_key(&id) {
                continue;
            }
            inner.map.insert(
                id,
                Slot::Done(Entry {
                    reply,
                    stored_at: Instant::now(),
                }),
            );
            inner.order.push_back(id);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ReplyCacheStats {
        let inner = self.inner.lock();
        let in_flight = inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::InFlight { .. }))
            .count();
        ReplyCacheStats {
            entries: inner.map.len() - in_flight,
            in_flight,
            stores: self.stores.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> CallId {
        CallId { client: 7, seq }
    }

    /// Admit-then-complete, as the call handlers do for executed calls.
    fn run(cache: &ReplyCache, id: CallId, reply: CachedReply) {
        assert!(matches!(cache.admit(id), Admission::Execute));
        cache.complete(id, reply);
    }

    #[test]
    fn complete_then_readmit_replays() {
        let cache = ReplyCache::for_class("RcStore");
        run(&cache, id(1), CachedReply::Value(jpie::Value::Int(42)));
        match cache.admit(id(1)) {
            Admission::Replay(CachedReply::Value(jpie::Value::Int(42))) => {}
            other => panic!("unexpected {other:?}"),
        }
        let s = cache.stats();
        assert_eq!(
            (s.entries, s.in_flight, s.stores, s.hits, s.evictions),
            (1, 0, 1, 1, 0)
        );
    }

    #[test]
    fn fault_replies_replay_like_successes() {
        // An application exception executed the body: its reply must be
        // cached so a redelivery does not re-run the side effects.
        let cache = ReplyCache::for_class("RcFault");
        run(&cache, id(1), CachedReply::Exception("kaboom".into()));
        match cache.admit(id(1)) {
            Admission::Replay(CachedReply::Exception(m)) => assert_eq!(m, "kaboom"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abort_releases_the_claim_without_caching() {
        let cache = ReplyCache::for_class("RcAbort");
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        cache.abort(id(1));
        // Not cached: the redelivery executes again (no side effects
        // happened the first time).
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        let s = cache.stats();
        assert_eq!((s.stores, s.hits), (0, 0));
    }

    #[test]
    fn duplicate_waits_for_inflight_original() {
        let cache = Arc::new(ReplyCache::for_class("RcWait"));
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        let dup = {
            let cache = cache.clone();
            std::thread::spawn(move || cache.admit(id(1)))
        };
        // Let the duplicate park, then resolve the original.
        std::thread::sleep(Duration::from_millis(20));
        cache.complete(id(1), CachedReply::Value(jpie::Value::Int(9)));
        match dup.join().expect("duplicate thread") {
            Admission::Replay(CachedReply::Value(jpie::Value::Int(9))) => {}
            other => panic!("duplicate must replay, got {other:?}"),
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn duplicate_outlasting_wait_is_rejected_retryable() {
        let cache = ReplyCache::new("RcSlow", 16, Duration::from_secs(60))
            .with_inflight_wait(Duration::from_millis(10));
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        // The original never resolves within the wait bound.
        assert!(matches!(cache.admit(id(1)), Admission::InFlight));
        assert_eq!(cache.stats().in_flight, 1);
    }

    #[test]
    fn abandoned_inflight_claim_is_taken_over_after_ttl() {
        let cache = ReplyCache::new("RcAbandon", 16, Duration::from_millis(1))
            .with_inflight_wait(Duration::from_millis(1));
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        std::thread::sleep(Duration::from_millis(5));
        // The sentinel outlived the TTL without resolving (worker died):
        // a new delivery claims it instead of being bounced forever.
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cache = ReplyCache::new("RcEvict", 2, Duration::from_secs(60));
        for seq in 1..=3 {
            run(
                &cache,
                id(seq),
                CachedReply::Value(jpie::Value::Int(seq as i32)),
            );
        }
        assert!(
            matches!(cache.admit(id(1)), Admission::Execute),
            "oldest entry evicted"
        );
        cache.abort(id(1));
        assert!(matches!(cache.admit(id(2)), Admission::Replay(_)));
        assert!(matches!(cache.admit(id(3)), Admission::Replay(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_skips_inflight_sentinels() {
        let cache = ReplyCache::new("RcEvictSkip", 1, Duration::from_secs(60));
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        // Completing a second call overflows capacity, but the eviction
        // pass must not sacrifice the in-flight claim of id 1.
        assert!(matches!(cache.admit(id(2)), Admission::Execute));
        cache.complete(id(2), CachedReply::Value(jpie::Value::Int(2)));
        cache.complete(id(1), CachedReply::Value(jpie::Value::Int(1)));
        assert!(matches!(
            cache.admit(id(1)),
            Admission::Replay(CachedReply::Value(jpie::Value::Int(1)))
        ));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = ReplyCache::new("RcTtl", 16, Duration::from_millis(1));
        run(&cache, id(1), CachedReply::Value(jpie::Value::Int(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(
            matches!(cache.admit(id(1)), Admission::Execute),
            "expired entry re-executes"
        );
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn overwrite_does_not_duplicate_order() {
        let cache = ReplyCache::new("RcOverwrite", 2, Duration::from_secs(60));
        // complete() twice for one id (a double-delivery race that got
        // past admit): must not consume a second capacity slot.
        assert!(matches!(cache.admit(id(1)), Admission::Execute));
        cache.complete(id(1), CachedReply::Value(jpie::Value::Int(1)));
        cache.complete(id(1), CachedReply::Value(jpie::Value::Int(1)));
        run(&cache, id(2), CachedReply::Value(jpie::Value::Int(2)));
        assert!(matches!(cache.admit(id(1)), Admission::Replay(_)));
        assert!(matches!(cache.admit(id(2)), Admission::Replay(_)));
        assert_eq!(cache.stats().evictions, 0);
    }
}
