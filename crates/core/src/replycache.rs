//! Bounded, TTL'd server-side reply cache keyed by [`obs::CallId`].
//!
//! The server half of the exactly-once bargain: every reply to a call
//! that carried an id is stored here, and a redelivery of the same id
//! (a client retry whose first attempt executed but whose reply was
//! lost) returns the stored reply *without re-executing the method
//! body*. Combined with the client reusing one id across retries, that
//! gives at-most-once execution — and with retries on top, effectively
//! exactly-once for calls that eventually succeed.
//!
//! Only successful outcomes are cached. `Server not initialized` and
//! `Non existent Method` faults describe transient server states the
//! §5.7/§6 machinery exists to repair — caching them would pin a client
//! to a fault its own retry protocol is designed to recover from.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::sync::Mutex;
use obs::CallId;

/// One stored reply, in whatever form the serving protocol wants to
/// replay it.
#[derive(Debug, Clone)]
pub enum CachedReply {
    /// The encoded SOAP 200 response body, shared so a replay is a
    /// refcount bump, not a copy.
    SoapBody(Arc<[u8]>),
    /// A CORBA result value (re-marshalled per replay; CDR encoding
    /// into the connection's recycled buffers is already alloc-free).
    Value(jpie::Value),
}

/// Point-in-time cache statistics, for the REPL's `replycache` command
/// and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyCacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Replies stored over the cache's lifetime.
    pub stores: u64,
    /// Duplicate deliveries served from the cache.
    pub hits: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    reply: CachedReply,
    stored_at: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CallId, Entry>,
    /// Insertion order for FIFO eviction. May contain ids that expiry
    /// already removed from the map; eviction skips those.
    order: VecDeque<CallId>,
}

/// The cache proper: FIFO-bounded, TTL'd, shared by one gateway.
pub struct ReplyCache {
    inner: Mutex<Inner>,
    capacity: usize,
    ttl: Duration,
    stores: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    o_stores: Arc<obs::Counter>,
    o_hits: Arc<obs::Counter>,
    o_evictions: Arc<obs::Counter>,
}

impl std::fmt::Debug for ReplyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplyCache")
            .field("capacity", &self.capacity)
            .field("ttl", &self.ttl)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default capacity: enough to cover every in-flight retry window of a
/// busy development server without growing unboundedly.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default TTL: comfortably longer than any client deadline budget
/// (the default `cde` deadline is 10 seconds), so a retry arriving at
/// the very end of its budget still finds the first attempt's reply.
pub const DEFAULT_TTL: Duration = Duration::from_secs(30);

impl ReplyCache {
    /// Creates a cache with the default bound and TTL, registering its
    /// metrics under the given class label.
    pub fn for_class(class: &str) -> ReplyCache {
        ReplyCache::new(class, DEFAULT_CAPACITY, DEFAULT_TTL)
    }

    /// Creates a cache with an explicit capacity and TTL.
    pub fn new(class: &str, capacity: usize, ttl: Duration) -> ReplyCache {
        let r = obs::registry();
        let labels = [("class", class)];
        ReplyCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            ttl,
            stores: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            o_stores: r.counter_with("replies_cached_total", &labels),
            o_hits: r.counter_with("duplicate_calls_suppressed_total", &labels),
            o_evictions: r.counter_with("reply_cache_evictions_total", &labels),
        }
    }

    /// Looks up a redelivered call id. A hit means "this call already
    /// executed — do not run it again"; the stored reply is returned
    /// for replay. Expired entries count as misses.
    pub fn lookup(&self, id: CallId) -> Option<CachedReply> {
        let mut inner = self.inner.lock();
        let expired = match inner.map.get(&id) {
            None => return None,
            Some(e) => e.stored_at.elapsed() > self.ttl,
        };
        if expired {
            inner.map.remove(&id);
            return None;
        }
        let reply = inner.map.get(&id).map(|e| e.reply.clone());
        if reply.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.o_hits.inc();
        }
        reply
    }

    /// Stores the reply for a completed call. A concurrent duplicate
    /// that raced past the lookup simply overwrites with an equivalent
    /// reply.
    pub fn store(&self, id: CallId, reply: CachedReply) {
        let mut inner = self.inner.lock();
        let fresh = inner
            .map
            .insert(
                id,
                Entry {
                    reply,
                    stored_at: Instant::now(),
                },
            )
            .is_none();
        if fresh {
            inner.order.push_back(id);
        }
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if inner.map.remove(&oldest).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.o_evictions.inc();
            }
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.o_stores.inc();
    }

    /// Current statistics.
    pub fn stats(&self) -> ReplyCacheStats {
        ReplyCacheStats {
            entries: self.inner.lock().map.len(),
            stores: self.stores.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> CallId {
        CallId { client: 7, seq }
    }

    #[test]
    fn store_then_lookup_hits() {
        let cache = ReplyCache::for_class("RcStore");
        assert!(cache.lookup(id(1)).is_none());
        cache.store(id(1), CachedReply::Value(jpie::Value::Int(42)));
        match cache.lookup(id(1)) {
            Some(CachedReply::Value(jpie::Value::Int(42))) => {}
            other => panic!("unexpected {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.stores, s.hits, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cache = ReplyCache::new("RcEvict", 2, Duration::from_secs(60));
        for seq in 1..=3 {
            cache.store(id(seq), CachedReply::Value(jpie::Value::Int(seq as i32)));
        }
        assert!(cache.lookup(id(1)).is_none(), "oldest entry evicted");
        assert!(cache.lookup(id(2)).is_some());
        assert!(cache.lookup(id(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = ReplyCache::new("RcTtl", 16, Duration::from_millis(1));
        cache.store(id(1), CachedReply::Value(jpie::Value::Int(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(cache.lookup(id(1)).is_none(), "expired entry is a miss");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn overwrite_does_not_duplicate_order() {
        let cache = ReplyCache::new("RcOverwrite", 2, Duration::from_secs(60));
        cache.store(id(1), CachedReply::Value(jpie::Value::Int(1)));
        cache.store(id(1), CachedReply::Value(jpie::Value::Int(1)));
        cache.store(id(2), CachedReply::Value(jpie::Value::Int(2)));
        // Both ids still fit: the double-store of id 1 must not have
        // consumed a second capacity slot.
        assert!(cache.lookup(id(1)).is_some());
        assert!(cache.lookup(id(2)).is_some());
        assert_eq!(cache.stats().evictions, 0);
    }
}
