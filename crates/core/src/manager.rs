//! The SDE Manager: oversees subsystem initialization and acts as the
//! central point of communication between components (§5.1); its user
//! surface is the SDE Manager Interface of §4 (publication timeout
//! control, manual publication, viewing the published documents).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jpie::{ClassHandle, Instance};
use obs::sync::RwLock;

use crate::corba_server::CorbaServer;
use crate::docs::{DocumentStore, InterfaceServer};
use crate::error::SdeError;
use crate::gateway::{SdeServerGateway, Technology};
use crate::publish::PublicationStrategy;
use crate::soap_server::SoapServer;
use crate::wal::VersionWal;

/// Which transport newly deployed endpoints use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory endpoints (deterministic; used by tests and the
    /// consistency experiments).
    Mem,
    /// TCP loopback endpoints (used by the RTT benchmarks, mirroring the
    /// paper's LAN testbed).
    Tcp,
}

/// Configuration for an [`SdeManager`].
#[derive(Debug, Clone)]
pub struct SdeConfig {
    /// Transport for the interface server and all deployed endpoints.
    pub transport: TransportKind,
    /// Initial publication strategy for new deployments. The paper's
    /// default is the stable timeout (§5.6).
    pub strategy: PublicationStrategy,
    /// Directory for the durable publication log. When set, every
    /// interface publication is appended to a per-authority
    /// [`VersionWal`](crate::VersionWal) before it becomes visible, and a
    /// manager restarted at the same interface address replays the log so
    /// redeployed classes resume at `version >= pre-crash`. `None`
    /// (the default) keeps everything in memory.
    pub wal_dir: Option<std::path::PathBuf>,
}

impl Default for SdeConfig {
    fn default() -> Self {
        SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_millis(200)),
            wal_dir: None,
        }
    }
}

static ADDR_COUNTER: AtomicU64 = AtomicU64::new(1);

fn fresh_addr(transport: TransportKind, what: &str) -> String {
    match transport {
        TransportKind::Mem => format!(
            "mem://sde-{what}-{}",
            ADDR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ),
        TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
    }
}

enum ManagedServer {
    Soap(Arc<SoapServer>),
    Corba(Arc<CorbaServer>),
}

impl ManagedServer {
    fn gateway(&self) -> &dyn SdeServerGateway {
        match self {
            ManagedServer::Soap(s) => s.as_ref(),
            ManagedServer::Corba(s) => s.as_ref(),
        }
    }
}

/// The SDE Manager.
///
/// Deploying a class is the paper's "user extends `SOAPServer` /
/// `CORBAServer`" event: the manager creates the technology's DL
/// Publisher and Call Handler, wires them together, and immediately
/// publishes the initial (minimal) interface description — the automated
/// deployment that lets developers "devote their full attention to the
/// implementation of server logic".
///
/// # Examples
///
/// ```
/// use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
/// use jpie::expr::Expr;
/// use sde::{SdeConfig, SdeManager, SdeServerGateway};
///
/// # fn main() -> Result<(), sde::SdeError> {
/// let manager = SdeManager::new(SdeConfig::default())?;
/// let class = ClassHandle::new("Greeter");
/// class.add_method(
///     MethodBuilder::new("greet", TypeDesc::Str)
///         .param("who", TypeDesc::Str)
///         .distributed(true)
///         .body_expr(Expr::lit("hello ") + Expr::param("who")),
/// )?;
/// let server = manager.deploy_soap(class)?;
/// server.create_instance()?;
/// // The WSDL is already published at server.wsdl_url().
/// manager.shutdown();
/// # Ok(())
/// # }
/// ```
/// Everything a planned migration carries from one manager to another:
/// the dynamic class, the live instance (all field state), and the
/// exactly-once reply cache. Produced by [`SdeManager::export_class`],
/// consumed by [`SdeManager::import_class`].
pub struct ClassExport {
    /// The dynamic class behind the gateway (interface version rides
    /// along, preserving the recency floor).
    pub class: ClassHandle,
    /// The live instance, if one was created.
    pub instance: Option<Arc<Instance>>,
    /// Which wire the class was serving.
    pub technology: Technology,
    replies: Vec<(obs::CallId, crate::replycache::CachedReply)>,
}

impl std::fmt::Debug for ClassExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassExport")
            .field("class", &self.class.name())
            .field("technology", &self.technology)
            .field("replies", &self.replies.len())
            .finish_non_exhaustive()
    }
}

pub struct SdeManager {
    config: SdeConfig,
    interface_server: InterfaceServer,
    servers: RwLock<HashMap<String, ManagedServer>>,
    /// Per-handler §5.7 stale-notification counters.
    stale_counters: RwLock<Vec<Arc<AtomicU64>>>,
    /// Durable publication log (when [`SdeConfig::wal_dir`] is set).
    wal: Option<Arc<VersionWal>>,
}

impl std::fmt::Debug for SdeManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdeManager")
            .field("interface_server", &self.interface_server.base_url())
            .field("managed", &self.servers.read().len())
            .finish_non_exhaustive()
    }
}

impl SdeManager {
    /// Starts a manager (and its Interface Server).
    ///
    /// # Errors
    ///
    /// Fails if the Interface Server endpoint cannot be bound.
    pub fn new(config: SdeConfig) -> Result<SdeManager, SdeError> {
        let addr = fresh_addr(config.transport, "ifc");
        SdeManager::with_interface_addr(config, &addr)
    }

    /// Starts a manager whose Interface Server binds `addr` instead of a
    /// fresh generated address. This makes restart scenarios testable:
    /// a new manager can come back at the *same* published URL, so
    /// clients holding stale documents reconverge once their breaker
    /// half-opens.
    ///
    /// # Errors
    ///
    /// Fails if the Interface Server endpoint cannot be bound.
    pub fn with_interface_addr(config: SdeConfig, addr: &str) -> Result<SdeManager, SdeError> {
        let interface_server = InterfaceServer::bind(addr)?;
        let wal = match &config.wal_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| SdeError::State(format!("wal dir {}: {e}", dir.display())))?;
                // One log per published authority: a restart at the same
                // interface address finds the same file and replays it.
                let wal = Arc::new(
                    VersionWal::open(&crate::wal::wal_path_for(dir, addr))
                        .map_err(|e| SdeError::State(format!("wal open: {e}")))?,
                );
                interface_server.store().attach_wal(wal.clone());
                Some(wal)
            }
            None => None,
        };
        Ok(SdeManager {
            config,
            interface_server,
            servers: RwLock::new(HashMap::new()),
            stale_counters: RwLock::new(Vec::new()),
            wal,
        })
    }

    /// Starts a manager that adopts an existing WAL directory under a
    /// (possibly new) authority: the failover path. A follower that has
    /// been replicating a dead shard's log calls this with its replica
    /// directory; if the directory holds exactly one `*.wal` whose name
    /// does not match `addr`, it is renamed to the name a manager at
    /// `addr` replays — so promotion is one call instead of the previous
    /// three-step rename/config/bind dance. The transport is inferred
    /// from the address scheme, and redeployed classes are floored at
    /// `version >= pre-crash` exactly as in same-authority restart.
    ///
    /// # Errors
    ///
    /// Fails if the WAL cannot be adopted or `addr` cannot be bound.
    pub fn with_authority(addr: &str, wal_dir: &std::path::Path) -> Result<SdeManager, SdeError> {
        let transport = if addr.starts_with("mem://") {
            TransportKind::Mem
        } else {
            TransportKind::Tcp
        };
        let target = crate::wal::wal_path_for(wal_dir, addr);
        if !target.exists() {
            let mut logs: Vec<std::path::PathBuf> = std::fs::read_dir(wal_dir)
                .map(|entries| {
                    entries
                        .filter_map(Result::ok)
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
                        .collect()
                })
                .unwrap_or_default();
            if logs.len() == 1 {
                let source = logs.pop().expect("one log");
                std::fs::rename(&source, &target)
                    .map_err(|e| SdeError::State(format!("wal adopt: {e}")))?;
                obs::trace::event(
                    "sde::manager",
                    "wal-adopt",
                    format!("from={} to={}", source.display(), target.display()),
                );
            }
        }
        let config = SdeConfig {
            transport,
            wal_dir: Some(wal_dir.to_path_buf()),
            ..SdeConfig::default()
        };
        SdeManager::with_interface_addr(config, addr)
    }

    /// Applies the replayed WAL floor for `class_name`'s documents to the
    /// class, so the first publication after a restart is at
    /// `version >= pre-crash` — the §6 recency guarantee across crashes.
    fn restore_from_wal(&self, class: &ClassHandle) {
        let Some(wal) = &self.wal else { return };
        let name = class.name();
        let floor = [format!("/{name}.wsdl"), format!("/{name}.idl")]
            .iter()
            .filter_map(|p| wal.floor(p))
            .max();
        if let Some(floor) = floor {
            class.restore_version_floor(floor);
            obs::trace::event(
                "sde::manager",
                "wal-restore",
                format!("class={name} version_floor={floor}"),
            );
        }
    }

    /// The shared Interface Server.
    pub fn interface_server(&self) -> &InterfaceServer {
        &self.interface_server
    }

    /// The shared document store (both subsystems publish into it).
    pub fn store(&self) -> &DocumentStore {
        self.interface_server.store()
    }

    /// The durable publication log, when one is configured — a
    /// replication leader streams it to a follower (see
    /// [`crate::walrepl`]).
    pub fn wal(&self) -> Option<Arc<VersionWal>> {
        self.wal.clone()
    }

    /// Number of §5.7 stale-call notifications received from handlers.
    pub fn stale_notifications(&self) -> u64 {
        self.stale_counters
            .read()
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .sum()
    }

    /// Deploys `class` as a SOAP server (the paper's "extends
    /// `SOAPServer`" flow, §5.1.1).
    ///
    /// # Errors
    ///
    /// Fails if a server with the same class name is already managed or an
    /// endpoint cannot be bound.
    pub fn deploy_soap(&self, class: ClassHandle) -> Result<Arc<SoapServer>, SdeError> {
        let name = class.name();
        self.check_unmanaged(&name)?;
        self.restore_from_wal(&class);
        let endpoint_addr = fresh_addr(self.config.transport, "soap");
        let server = Arc::new(SoapServer::deploy(
            class,
            &endpoint_addr,
            self.store().clone(),
            &self.interface_server.base_url(),
            self.config.strategy,
        )?);
        self.wire_stale_notify(server.core(), server.publisher());
        obs::registry()
            .counter_with("sde_deploys_total", &[("tech", "soap")])
            .inc();
        obs::trace::event("sde::manager", "deploy", format!("class={name} tech=SOAP"));
        self.servers
            .write()
            .insert(name, ManagedServer::Soap(server.clone()));
        Ok(server)
    }

    /// Deploys `class` as a CORBA server (the "extends `CORBAServer`"
    /// flow, §5.2.1).
    ///
    /// # Errors
    ///
    /// Same as [`SdeManager::deploy_soap`].
    pub fn deploy_corba(&self, class: ClassHandle) -> Result<Arc<CorbaServer>, SdeError> {
        let name = class.name();
        self.check_unmanaged(&name)?;
        self.restore_from_wal(&class);
        let orb_addr = fresh_addr(self.config.transport, "orb");
        let server = Arc::new(CorbaServer::deploy(
            class,
            &orb_addr,
            self.store().clone(),
            &self.interface_server.base_url(),
            self.config.strategy,
        )?);
        self.wire_stale_notify(server.core(), server.publisher());
        obs::registry()
            .counter_with("sde_deploys_total", &[("tech", "corba")])
            .inc();
        obs::trace::event("sde::manager", "deploy", format!("class={name} tech=CORBA"));
        self.servers
            .write()
            .insert(name, ManagedServer::Corba(server.clone()));
        Ok(server)
    }

    fn check_unmanaged(&self, name: &str) -> Result<(), SdeError> {
        if self.servers.read().contains_key(name) {
            return Err(SdeError::AlreadyManaged(name.to_string()));
        }
        Ok(())
    }

    /// §5.7 wiring: Call Handler → SDE Manager → DL Publisher.
    fn wire_stale_notify(
        &self,
        core: &Arc<crate::gateway::GatewayCore>,
        publisher: &Arc<crate::publish::PublisherCore>,
    ) {
        let publisher = Arc::downgrade(publisher);
        let count = Arc::new(AtomicU64::new(0));
        let count_in = count.clone();
        let global = obs::registry().counter("sde_stale_notifications_total");
        core.set_stale_notify(Arc::new(move || {
            count_in.fetch_add(1, Ordering::SeqCst);
            global.inc();
            if let Some(publisher) = publisher.upgrade() {
                publisher.ensure_current();
            }
        }));
        self.stale_counters.write().push(count);
    }

    /// Technologies and names of the managed servers.
    pub fn managed(&self) -> Vec<(String, Technology)> {
        self.servers
            .read()
            .iter()
            .map(|(name, entry)| (name.clone(), entry.gateway().technology()))
            .collect()
    }

    /// The published interface document for `class_name` (the §4 "view the
    /// WSDL/CORBA-IDL" affordance of the SDE Manager Interface).
    pub fn interface_document(&self, class_name: &str) -> Option<String> {
        let servers = self.servers.read();
        let entry = servers.get(class_name)?;
        let path = match entry.gateway().technology() {
            Technology::Soap => format!("/{class_name}.wsdl"),
            Technology::Corba => format!("/{class_name}.idl"),
        };
        self.store().get(&path).map(|d| d.content().to_string())
    }

    /// Sets the stable-publication timeout for one server (§4: "the user
    /// can control the publication frequency by specifying a timeout
    /// value").
    ///
    /// # Errors
    ///
    /// Fails if no such server is managed.
    pub fn set_timeout(&self, class_name: &str, timeout: Duration) -> Result<(), SdeError> {
        self.with_gateway(class_name, |gw| {
            gw.publisher()
                .set_strategy(PublicationStrategy::StableTimeout(timeout));
        })
    }

    /// Forces immediate publication for one server (§4: "manually trigger
    /// the publication ... by forcing timer expiration").
    ///
    /// # Errors
    ///
    /// Fails if no such server is managed.
    pub fn force_publish(&self, class_name: &str) -> Result<(), SdeError> {
        self.with_gateway(class_name, |gw| gw.publisher().force_publish())
    }

    fn with_gateway<T>(
        &self,
        class_name: &str,
        f: impl FnOnce(&dyn SdeServerGateway) -> T,
    ) -> Result<T, SdeError> {
        let servers = self.servers.read();
        let entry = servers
            .get(class_name)
            .ok_or_else(|| SdeError::NotManaged(class_name.to_string()))?;
        Ok(f(entry.gateway()))
    }

    /// Retires a managed server, retracting its documents.
    ///
    /// # Errors
    ///
    /// Fails if no such server is managed.
    pub fn undeploy(&self, class_name: &str) -> Result<(), SdeError> {
        let entry = self
            .servers
            .write()
            .remove(class_name)
            .ok_or_else(|| SdeError::NotManaged(class_name.to_string()))?;
        entry.gateway().shutdown();
        obs::trace::event("sde::manager", "undeploy", format!("class={class_name}"));
        Ok(())
    }

    /// Captures a quiescent class for migration handoff **without**
    /// undeploying it: the source gateway keeps serving (or draining)
    /// until the importing manager has taken over and routes have
    /// swapped — so there is never a window where the class exists
    /// nowhere. The export carries the dynamic class (whose interface
    /// version rides along, preserving the §6 recency floor), the live
    /// instance with all field state, and the exactly-once reply cache
    /// (a client whose first attempt executed here must get a replay at
    /// the target, not a re-execution).
    ///
    /// # Errors
    ///
    /// Fails if no such server is managed.
    pub fn export_class(&self, class_name: &str) -> Result<ClassExport, SdeError> {
        let servers = self.servers.read();
        let entry = servers
            .get(class_name)
            .ok_or_else(|| SdeError::NotManaged(class_name.to_string()))?;
        let (core, technology) = match entry {
            ManagedServer::Soap(s) => (s.core(), Technology::Soap),
            ManagedServer::Corba(s) => (s.core(), Technology::Corba),
        };
        obs::trace::event(
            "sde::manager",
            "export-class",
            format!("class={class_name} tech={technology}"),
        );
        Ok(ClassExport {
            class: core.class().clone(),
            instance: core.instance(),
            technology,
            replies: core.reply_cache().export_entries(),
        })
    }

    /// Deploys an exported class on this manager — the receiving half of
    /// a migration handoff. The caller must already have appended the
    /// class's version floors to this manager's WAL (deployment applies
    /// them via the usual restart path), so the first publication here
    /// is at `version >= source`, which is what forces stale clients to
    /// reconverge (§5.7). The live instance is adopted rather than
    /// recreated and the reply-cache entries are installed before any
    /// call can reach the new gateway.
    ///
    /// # Errors
    ///
    /// Fails if the class name is already managed here or an endpoint
    /// cannot be bound.
    pub fn import_class(&self, export: ClassExport) -> Result<(), SdeError> {
        let ClassExport {
            class,
            instance,
            technology,
            replies,
        } = export;
        let name = class.name();
        let core = match technology {
            Technology::Soap => self.deploy_soap(class)?.core().clone(),
            Technology::Corba => self.deploy_corba(class)?.core().clone(),
        };
        // Mirror the source exactly: a class that had no live instance
        // stays inactive at the target too.
        if let Some(instance) = instance {
            core.adopt_instance(instance);
        }
        core.reply_cache().import_entries(replies);
        obs::trace::event(
            "sde::manager",
            "import-class",
            format!("class={name} tech={technology}"),
        );
        Ok(())
    }

    /// Live technology interchange — the §8 future-work feature: rebinds a
    /// running server from SOAP to CORBA (or back) **without recreating
    /// the dynamic class or its live instance**. The existing instance
    /// (with all its field state) is adopted by the new gateway, so
    /// in-memory state survives the switch.
    ///
    /// Returns the technology now in use.
    ///
    /// # Errors
    ///
    /// Fails if no such server is managed or the new endpoint cannot be
    /// bound.
    pub fn switch_technology(&self, class_name: &str) -> Result<Technology, SdeError> {
        let mut servers = self.servers.write();
        let entry = servers
            .remove(class_name)
            .ok_or_else(|| SdeError::NotManaged(class_name.to_string()))?;

        let (class, instance, old_tech): (ClassHandle, Option<Arc<Instance>>, Technology) =
            match &entry {
                ManagedServer::Soap(s) => (s.class().clone(), s.instance(), Technology::Soap),
                ManagedServer::Corba(s) => (s.class().clone(), s.instance(), Technology::Corba),
            };
        entry.gateway().shutdown();

        let new_entry = match old_tech {
            Technology::Soap => {
                let orb_addr = fresh_addr(self.config.transport, "orb");
                let server = Arc::new(CorbaServer::deploy(
                    class,
                    &orb_addr,
                    self.store().clone(),
                    &self.interface_server.base_url(),
                    self.config.strategy,
                )?);
                self.wire_stale_notify(server.core(), server.publisher());
                if let Some(instance) = instance {
                    server.core().adopt_instance(instance);
                }
                ManagedServer::Corba(server)
            }
            Technology::Corba => {
                let endpoint_addr = fresh_addr(self.config.transport, "soap");
                let server = Arc::new(SoapServer::deploy(
                    class,
                    &endpoint_addr,
                    self.store().clone(),
                    &self.interface_server.base_url(),
                    self.config.strategy,
                )?);
                self.wire_stale_notify(server.core(), server.publisher());
                if let Some(instance) = instance {
                    server.core().adopt_instance(instance);
                }
                ManagedServer::Soap(server)
            }
        };
        let new_tech = new_entry.gateway().technology();
        obs::trace::event(
            "sde::manager",
            "switch-technology",
            format!("class={class_name} {old_tech} -> {new_tech}"),
        );
        servers.insert(class_name.to_string(), new_entry);
        Ok(new_tech)
    }

    /// Watches a JPie class registry and automatically deploys every
    /// class that extends the gateway superclasses — the paper's
    /// detection mechanism: "When a user extends the SOAP Server to
    /// create a dynamic class within JPie, an event is generated to
    /// signal the SDE Manager" (§5.1.1), likewise for `CORBAServer`
    /// (§5.2.1). Classes with other (or no) superclasses are ignored.
    ///
    /// Returns a join handle for the watcher thread; it exits when the
    /// registry is dropped.
    pub fn attach_registry(
        self: &Arc<Self>,
        registry: &jpie::ClassRegistry,
    ) -> std::thread::JoinHandle<()> {
        let loads = registry.subscribe();
        let manager = Arc::downgrade(self);
        std::thread::Builder::new()
            .name("sde-registry-watcher".into())
            .spawn(move || {
                while let Ok(event) = loads.recv() {
                    let Some(manager) = manager.upgrade() else {
                        return;
                    };
                    match event.superclass.as_deref() {
                        Some("SOAPServer") => {
                            let _ = manager.deploy_soap(event.class);
                        }
                        Some("CORBAServer") => {
                            let _ = manager.deploy_corba(event.class);
                        }
                        _ => {}
                    }
                }
            })
            .expect("spawn registry watcher")
    }

    /// Looks up a managed SOAP server.
    pub fn soap_server(&self, class_name: &str) -> Option<Arc<SoapServer>> {
        match self.servers.read().get(class_name) {
            Some(ManagedServer::Soap(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Looks up a managed CORBA server.
    pub fn corba_server(&self, class_name: &str) -> Option<Arc<CorbaServer>> {
        match self.servers.read().get(class_name) {
            Some(ManagedServer::Corba(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Shuts down every managed server and the Interface Server.
    pub fn shutdown(&self) {
        let mut servers = self.servers.write();
        for (_, entry) in servers.drain() {
            entry.gateway().shutdown();
        }
        drop(servers);
        self.interface_server.shutdown();
    }
}

impl Drop for SdeManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}
