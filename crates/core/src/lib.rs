//! # sde — the Server Development Environment middleware
//!
//! The primary contribution of *"Supporting Live Development of SOAP and
//! CORBA Servers"* (Pallemulle, Goldman & Morgan, WUCSE-2004-75), built on
//! the [`jpie`] dynamic-class runtime and the [`soap`]/[`corba`]
//! technology substrates. SDE has three responsibilities (§5):
//!
//! 1. **Detect server classes** — here, deploying a [`jpie::ClassHandle`]
//!    through [`SdeManager::deploy_soap`] / [`SdeManager::deploy_corba`]
//!    (the paper's "user extends `SOAPServer`/`CORBAServer`" events),
//! 2. **Construct and deploy the RMI call handlers** — automatic: each
//!    deployment binds a SOAP endpoint or server ORB (with DSI) and wires
//!    the multithreaded call handler with the full §5.1.3/§5.2.3 fault
//!    matrix (`Server not initialized`, `Malformed SOAP Request`,
//!    `Non existent Method`, wrapped application exceptions),
//! 3. **Automate publication of the server interface** — each deployment
//!    starts a DL Publisher ([`PublisherCore`]) that watches the class and
//!    republishes its WSDL / CORBA-IDL through the shared
//!    [`InterfaceServer`] using the §5.6 stable-change detection
//!    mechanism, plus the §5.7 reactive forced publication that underpins
//!    the joint SDE/CDE recency guarantee of §6.
//!
//! The [`PublicationStrategy`] enum additionally exposes the two rejected
//! baselines discussed in §5.6 (change-driven and polling) so the
//! benchmark harness can reproduce that design argument quantitatively.
//!
//! See the crate-level example on [`SdeManager`].

mod corba_server;
mod docs;
mod error;
mod gateway;
mod manager;
pub mod publish;
pub mod replycache;
mod soap_server;
pub mod wal;
pub mod walrepl;

pub use corba_server::CorbaServer;
pub use docs::{DocumentStore, InterfaceServer, PublishedDocument};
pub use error::SdeError;
pub use gateway::{GatewayCore, HandlerMetrics, InvokeFailure, SdeServerGateway, Technology};
pub use manager::{ClassExport, SdeConfig, SdeManager, TransportKind};
pub use publish::{GeneratedDoc, PublicationStrategy, PublisherCore, PublisherMetrics};
pub use replycache::{Admission, CachedReply, ReplyCache, ReplyCacheStats};
pub use soap_server::SoapServer;
pub use wal::VersionWal;
pub use walrepl::{WalFollower, WalReplicator};
