//! Streaming XML writer with optional pretty-printing.

use crate::error::XmlError;
use crate::escape::{escape, escape_attr};

/// A streaming XML writer.
///
/// Elements are opened with [`XmlWriter::begin_elem`], given attributes with
/// [`XmlWriter::attr`] (which must be called before any content), filled
/// with [`XmlWriter::text`] or child elements, and closed with
/// [`XmlWriter::end_elem`]. [`XmlWriter::finish`] returns the document.
///
/// Empty elements are collapsed to the `<name/>` form.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// let mut w = xmlrt::XmlWriter::new();
/// w.begin_elem("a")?;
/// w.attr("k", "v")?;
/// w.leaf_text("b", "body")?;
/// w.end_elem()?;
/// assert_eq!(w.finish(), "<a k=\"v\"><b>body</b></a>");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct XmlWriter {
    out: String,
    /// Stack of open element names.
    stack: Vec<String>,
    /// True while the current open tag has not been closed with `>` yet
    /// (attributes may still be appended).
    tag_open: bool,
    pretty: bool,
    /// Set when the element at the top of the stack has child elements
    /// (used by pretty printing to decide whether to indent the close tag).
    had_children: Vec<bool>,
    /// Set when the element at the top of the stack has text content.
    had_text: Vec<bool>,
    /// Set once a root element has been opened and closed.
    root_done: bool,
}

impl XmlWriter {
    /// Creates a compact (single-line) writer.
    pub fn new() -> Self {
        XmlWriter {
            out: String::new(),
            stack: Vec::new(),
            tag_open: false,
            pretty: false,
            had_children: Vec::new(),
            had_text: Vec::new(),
            root_done: false,
        }
    }

    /// Creates a pretty-printing writer indenting nested elements by two
    /// spaces. Text-only elements stay on one line.
    pub fn pretty() -> Self {
        XmlWriter {
            pretty: true,
            ..XmlWriter::new()
        }
    }

    /// Emits the standard `<?xml version="1.0" encoding="UTF-8"?>`
    /// declaration.
    ///
    /// # Errors
    ///
    /// Fails if any content has already been written.
    pub fn declaration(&mut self) -> Result<(), XmlError> {
        if !self.out.is_empty() {
            return Err(XmlError::writer("declaration must come first"));
        }
        self.out
            .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.pretty {
            self.out.push('\n');
        }
        Ok(())
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn indent(&mut self) {
        if self.pretty && !self.out.is_empty() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        if self.pretty {
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    /// Opens an element named `name`.
    ///
    /// # Errors
    ///
    /// Fails if `name` is not a valid XML name or if a second root element
    /// is started.
    pub fn begin_elem(&mut self, name: &str) -> Result<(), XmlError> {
        validate_name(name)?;
        if self.stack.is_empty() && self.root_done {
            return Err(XmlError::writer("document may have only one root element"));
        }
        self.close_pending_tag();
        if let Some(flag) = self.had_children.last_mut() {
            *flag = true;
        }
        self.indent();
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_string());
        self.had_children.push(false);
        self.had_text.push(false);
        self.tag_open = true;
        Ok(())
    }

    /// Adds an attribute to the element opened by the latest
    /// [`XmlWriter::begin_elem`]. The value is escaped.
    ///
    /// # Errors
    ///
    /// Fails if content has already been written into the element, or if
    /// `name` is not a valid XML name.
    pub fn attr(&mut self, name: &str, value: &str) -> Result<(), XmlError> {
        validate_name(name)?;
        if !self.tag_open {
            return Err(XmlError::writer("attr() must directly follow begin_elem()"));
        }
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
        Ok(())
    }

    /// Writes escaped character data into the current element.
    ///
    /// # Errors
    ///
    /// Fails if no element is open.
    pub fn text(&mut self, content: &str) -> Result<(), XmlError> {
        if self.stack.is_empty() {
            return Err(XmlError::writer("text outside of root element"));
        }
        self.close_pending_tag();
        if let Some(flag) = self.had_text.last_mut() {
            *flag = true;
        }
        self.out.push_str(&escape(content));
        Ok(())
    }

    /// Writes a comment. `--` sequences inside the body are replaced by
    /// `- -` to keep the document well-formed.
    pub fn comment(&mut self, body: &str) -> Result<(), XmlError> {
        self.close_pending_tag();
        if let Some(flag) = self.had_children.last_mut() {
            *flag = true;
        }
        self.indent();
        self.out.push_str("<!--");
        self.out.push_str(&body.replace("--", "- -"));
        self.out.push_str("-->");
        Ok(())
    }

    /// Closes the most recently opened element.
    ///
    /// # Errors
    ///
    /// Fails if there is no open element.
    pub fn end_elem(&mut self) -> Result<(), XmlError> {
        let name = self
            .stack
            .pop()
            .ok_or_else(|| XmlError::writer("end_elem() with no open element"))?;
        let had_children = self.had_children.pop().unwrap_or(false);
        let had_text = self.had_text.pop().unwrap_or(false);
        if self.tag_open {
            // No content at all: use the empty-element form.
            self.out.push_str("/>");
            self.tag_open = false;
            if self.stack.is_empty() {
                self.root_done = true;
            }
            return Ok(());
        }
        if self.pretty && had_children && !had_text {
            self.indent();
        }
        self.out.push_str("</");
        self.out.push_str(&name);
        self.out.push('>');
        if self.stack.is_empty() {
            self.root_done = true;
        }
        Ok(())
    }

    /// Convenience: writes `<name>text</name>`.
    pub fn leaf_text(&mut self, name: &str, text: &str) -> Result<(), XmlError> {
        self.begin_elem(name)?;
        self.text(text)?;
        self.end_elem()
    }

    /// Convenience: writes an empty element with the given attributes.
    pub fn leaf_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) -> Result<(), XmlError> {
        self.begin_elem(name)?;
        for (k, v) in attrs {
            self.attr(k, v)?;
        }
        self.end_elem()
    }

    /// Returns the accumulated document, consuming the writer.
    ///
    /// # Panics
    ///
    /// Panics if elements are still open; that is a logic error in the
    /// caller and would otherwise silently emit a malformed document.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty(),
            "XmlWriter::finish with {} unclosed element(s): {:?}",
            self.stack.len(),
            self.stack
        );
        self.out
    }

    /// Like [`XmlWriter::finish`] but returns an error instead of panicking.
    pub fn try_finish(self) -> Result<String, XmlError> {
        if !self.stack.is_empty() {
            return Err(XmlError::writer(format!(
                "unclosed elements: {:?}",
                self.stack
            )));
        }
        Ok(self.out)
    }
}

impl Default for XmlWriter {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) fn validate_name(name: &str) -> Result<(), XmlError> {
    let mut chars = name.chars();
    let first = chars
        .next()
        .ok_or_else(|| XmlError::new(crate::error::XmlErrorKind::BadName(String::new()), None))?;
    let name_start = |c: char| c.is_alphabetic() || c == '_' || c == ':';
    let name_char = |c: char| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.');
    if !name_start(first) || !chars.all(name_char) {
        return Err(XmlError::new(
            crate::error::XmlErrorKind::BadName(name.to_string()),
            None,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_element_collapses() {
        let mut w = XmlWriter::new();
        w.begin_elem("e").unwrap();
        w.attr("a", "1").unwrap();
        w.end_elem().unwrap();
        assert_eq!(w.finish(), "<e a=\"1\"/>");
    }

    #[test]
    fn nested_elements() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        w.begin_elem("b").unwrap();
        w.text("t").unwrap();
        w.end_elem().unwrap();
        w.end_elem().unwrap();
        assert_eq!(w.finish(), "<a><b>t</b></a>");
    }

    #[test]
    fn attr_after_content_is_error() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        w.text("x").unwrap();
        assert!(w.attr("k", "v").is_err());
    }

    #[test]
    fn attr_value_is_escaped() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        w.attr("k", "x\"<>&").unwrap();
        w.end_elem().unwrap();
        assert_eq!(w.finish(), "<a k=\"x&quot;&lt;&gt;&amp;\"/>");
    }

    #[test]
    fn declaration_must_come_first() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        assert!(w.declaration().is_err());

        let mut w = XmlWriter::new();
        w.declaration().unwrap();
        w.begin_elem("a").unwrap();
        w.end_elem().unwrap();
        assert!(w.finish().starts_with("<?xml"));
    }

    #[test]
    fn pretty_printing_indents_children() {
        let mut w = XmlWriter::pretty();
        w.begin_elem("root").unwrap();
        w.begin_elem("child").unwrap();
        w.text("v").unwrap();
        w.end_elem().unwrap();
        w.end_elem().unwrap();
        assert_eq!(w.finish(), "<root>\n  <child>v</child>\n</root>");
    }

    #[test]
    fn second_root_rejected() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        w.end_elem().unwrap();
        assert!(w.begin_elem("b").is_err());
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        let _ = w.finish();
    }

    #[test]
    fn try_finish_errors_on_open_elements() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        assert!(w.try_finish().is_err());
    }

    #[test]
    fn invalid_names_rejected() {
        let mut w = XmlWriter::new();
        assert!(w.begin_elem("1abc").is_err());
        assert!(w.begin_elem("").is_err());
        assert!(w.begin_elem("a b").is_err());
        assert!(w.begin_elem("ns:name").is_ok());
    }

    #[test]
    fn comment_sanitized() {
        let mut w = XmlWriter::new();
        w.begin_elem("a").unwrap();
        w.comment("x--y").unwrap();
        w.end_elem().unwrap();
        assert_eq!(w.finish(), "<a><!--x- -y--></a>");
    }

    #[test]
    fn end_without_begin_is_error() {
        let mut w = XmlWriter::new();
        assert!(w.end_elem().is_err());
    }
}
