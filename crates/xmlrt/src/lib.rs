//! # xmlrt — a small, dependency-free XML runtime
//!
//! This crate provides the XML substrate that the SOAP and WSDL layers of
//! the live-rmi reproduction are built on. The original system (Apache Axis)
//! relied on the Java XML stack; this crate supplies the equivalent
//! functionality from scratch:
//!
//! * [`escape`] / [`unescape`] — entity escaping for text and attributes,
//! * [`XmlWriter`] — a streaming, optionally pretty-printing writer,
//! * [`Parser`] — a pull parser producing [`XmlEvent`]s,
//! * [`XmlNode`] — a DOM built on top of the pull parser, with navigation
//!   helpers used by the WSDL/SOAP decoders.
//!
//! The subset of XML implemented is the subset exercised by SOAP 1.1 /
//! WSDL 1.1 documents: elements, attributes, character data, CDATA,
//! comments, processing instructions and the XML declaration. DTDs are not
//! supported (SOAP explicitly forbids them).
//!
//! # Examples
//!
//! ```
//! use xmlrt::{XmlNode, XmlWriter};
//!
//! # fn main() -> Result<(), xmlrt::XmlError> {
//! let mut w = XmlWriter::new();
//! w.begin_elem("greeting")?;
//! w.attr("lang", "en")?;
//! w.text("hello & goodbye")?;
//! w.end_elem()?;
//! let doc = w.finish();
//!
//! let node = XmlNode::parse(&doc)?;
//! assert_eq!(node.name(), "greeting");
//! assert_eq!(node.attr("lang"), Some("en"));
//! assert_eq!(node.text(), "hello & goodbye");
//! # Ok(())
//! # }
//! ```

mod dom;
mod error;
mod escape;
mod parser;
mod writer;

pub use dom::XmlNode;
pub use error::XmlError;
pub use escape::{escape, escape_attr, unescape};
pub use parser::{parse_all, Parser, XmlEvent};
pub use writer::XmlWriter;
