//! # xmlrt — a small, dependency-free XML runtime
//!
//! This crate provides the XML substrate that the SOAP and WSDL layers of
//! the live-rmi reproduction are built on. The original system (Apache Axis)
//! relied on the Java XML stack; this crate supplies the equivalent
//! functionality from scratch:
//!
//! * [`escape`] / [`unescape`] — entity escaping for text and attributes
//!   (plus [`escape_into`] / [`escape_attr_into`] buffer variants with a
//!   bulk-copy fast path for clean text),
//! * [`XmlWriter`] — a streaming, optionally pretty-printing writer,
//! * [`XmlBufWriter`] — serialization into a caller-supplied reusable
//!   `Vec<u8>` for the allocation-free wire path,
//! * [`Parser`] — a pull parser producing owned [`XmlEvent`]s,
//! * [`XmlPull`] — a zero-copy pull parser whose [`PullEvent`]s borrow
//!   the input (the RMI hot path),
//! * [`XmlNode`] — a DOM built on top of the pull parser, with navigation
//!   helpers used by the WSDL/SOAP decoders and development tooling.
//!
//! The subset of XML implemented is the subset exercised by SOAP 1.1 /
//! WSDL 1.1 documents: elements, attributes, character data, CDATA,
//! comments, processing instructions and the XML declaration. DTDs are not
//! supported (SOAP explicitly forbids them).
//!
//! # Examples
//!
//! ```
//! use xmlrt::{XmlNode, XmlWriter};
//!
//! # fn main() -> Result<(), xmlrt::XmlError> {
//! let mut w = XmlWriter::new();
//! w.begin_elem("greeting")?;
//! w.attr("lang", "en")?;
//! w.text("hello & goodbye")?;
//! w.end_elem()?;
//! let doc = w.finish();
//!
//! let node = XmlNode::parse(&doc)?;
//! assert_eq!(node.name(), "greeting");
//! assert_eq!(node.attr("lang"), Some("en"));
//! assert_eq!(node.text(), "hello & goodbye");
//! # Ok(())
//! # }
//! ```

mod bufwriter;
mod dom;
mod error;
mod escape;
mod parser;
mod pull;
mod writer;

pub use bufwriter::XmlBufWriter;
pub use dom::XmlNode;
pub use error::XmlError;
pub use escape::{escape, escape_attr, escape_attr_into, escape_into, unescape};
pub use parser::{parse_all, Parser, XmlEvent};
pub use pull::{PullEvent, XmlPull};
pub use writer::XmlWriter;
