//! Serialization into a caller-supplied, reusable byte buffer.
//!
//! [`XmlBufWriter`] is the encoding half of the zero-allocation wire
//! path: it writes the exact byte sequence [`crate::XmlNode::to_xml`]
//! would produce (same attribute ordering, same `<name/>` collapse for
//! childless elements with empty text, same [`crate::escape`] /
//! [`crate::escape_attr`] entities) but straight into a `Vec<u8>` the
//! caller owns and recycles across calls. After warmup the buffer has
//! its steady-state capacity and encoding allocates nothing.
//!
//! Unlike [`crate::XmlWriter`] this writer is infallible and unchecked:
//! its callers are the hand-written SOAP codec and benchmarks, which
//! are held byte-identical to the DOM encoder by a property test
//! (`tests/props.rs`), not by per-call validation.

use crate::escape::{escape_attr_into, escape_into};

/// A writer that appends XML to an owned, reusable byte buffer.
///
/// # Examples
///
/// ```
/// let mut w = xmlrt::XmlBufWriter::new();
/// w.start("a");
/// w.attr("k", "v");
/// w.start("b");
/// w.text("body");
/// w.end("b");
/// w.start("empty");
/// w.end("empty");
/// w.end("a");
/// assert_eq!(w.as_slice(), b"<a k=\"v\"><b>body</b><empty/></a>");
/// // Recycle the buffer for the next document:
/// let mut w = xmlrt::XmlBufWriter::with_buf(w.into_bytes());
/// w.start("c");
/// w.end("c");
/// assert_eq!(w.as_slice(), b"<c/>");
/// ```
#[derive(Debug, Default)]
pub struct XmlBufWriter {
    out: Vec<u8>,
    /// True while the current start tag has not been closed with `>`
    /// (attributes may still be appended; `end` collapses to `/>`).
    tag_open: bool,
}

impl XmlBufWriter {
    /// Creates a writer with a fresh buffer.
    pub fn new() -> Self {
        XmlBufWriter::with_buf(Vec::new())
    }

    /// Creates a writer reusing `buf`'s capacity; previous contents are
    /// cleared.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        XmlBufWriter {
            out: buf,
            tag_open: false,
        }
    }

    /// Emits the standard `<?xml version="1.0" encoding="UTF-8"?>`
    /// declaration. Call before any element.
    pub fn declaration(&mut self) {
        debug_assert!(self.out.is_empty(), "declaration must come first");
        self.out
            .extend_from_slice(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    }

    fn close_tag(&mut self) {
        if self.tag_open {
            self.out.push(b'>');
            self.tag_open = false;
        }
    }

    /// Opens `<name`, leaving the tag open for attributes.
    pub fn start(&mut self, name: &str) {
        self.close_tag();
        self.out.push(b'<');
        self.out.extend_from_slice(name.as_bytes());
        self.tag_open = true;
    }

    /// [`XmlBufWriter::start`] for a name assembled from parts (e.g. a
    /// prefix and a method name), so qualified names need no
    /// intermediate concatenation.
    pub fn start_parts(&mut self, parts: &[&str]) {
        self.close_tag();
        self.out.push(b'<');
        for p in parts {
            self.out.extend_from_slice(p.as_bytes());
        }
        self.tag_open = true;
    }

    /// Appends ` name="value"` (attribute-escaped) to the open tag.
    pub fn attr(&mut self, name: &str, value: &str) {
        debug_assert!(self.tag_open, "attr outside an open start tag");
        self.out.push(b' ');
        self.out.extend_from_slice(name.as_bytes());
        self.out.extend_from_slice(b"=\"");
        escape_attr_into(value, &mut self.out);
        self.out.push(b'"');
    }

    /// [`XmlBufWriter::attr`] with the value assembled from parts, each
    /// escaped in sequence.
    pub fn attr_parts(&mut self, name: &str, value_parts: &[&str]) {
        debug_assert!(self.tag_open, "attr outside an open start tag");
        self.out.push(b' ');
        self.out.extend_from_slice(name.as_bytes());
        self.out.extend_from_slice(b"=\"");
        for p in value_parts {
            escape_attr_into(p, &mut self.out);
        }
        self.out.push(b'"');
    }

    /// Appends content-escaped character data. Empty text is a no-op so
    /// a childless element with empty text still collapses to `<name/>`,
    /// exactly like [`crate::XmlNode::to_xml`].
    pub fn text(&mut self, s: &str) {
        if s.is_empty() {
            return;
        }
        self.close_tag();
        escape_into(s, &mut self.out);
    }

    /// Closes the element: `/>` if nothing was written since
    /// [`XmlBufWriter::start`], `</name>` otherwise.
    pub fn end(&mut self, name: &str) {
        if self.tag_open {
            self.out.extend_from_slice(b"/>");
            self.tag_open = false;
        } else {
            self.out.extend_from_slice(b"</");
            self.out.extend_from_slice(name.as_bytes());
            self.out.push(b'>');
        }
    }

    /// [`XmlBufWriter::end`] for a name assembled from parts.
    pub fn end_parts(&mut self, parts: &[&str]) {
        if self.tag_open {
            self.out.extend_from_slice(b"/>");
            self.tag_open = false;
        } else {
            self.out.extend_from_slice(b"</");
            for p in parts {
                self.out.extend_from_slice(p.as_bytes());
            }
            self.out.push(b'>');
        }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Returns the underlying buffer (document plus retained capacity).
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XmlNode;

    /// Encodes a small document both ways and demands identical bytes.
    #[test]
    fn matches_dom_serialization() {
        let mut n = XmlNode::new("soapenv:Envelope");
        n.set_attr("xmlns:soapenv", "http://example/envelope");
        let mut body = XmlNode::new("soapenv:Body");
        let mut leaf = XmlNode::new("v");
        leaf.set_attr("xsi:type", "xsd:string");
        leaf.set_text("a < b & \"c\"\n");
        body.push_child(leaf);
        let mut empty = XmlNode::new("e");
        empty.set_attr("xsi:nil", "true");
        body.push_child(empty);
        n.push_child(body);

        let mut w = XmlBufWriter::new();
        w.start("soapenv:Envelope");
        w.attr("xmlns:soapenv", "http://example/envelope");
        w.start("soapenv:Body");
        w.start("v");
        w.attr("xsi:type", "xsd:string");
        w.text("a < b & \"c\"\n");
        w.end("v");
        w.start("e");
        w.attr("xsi:nil", "true");
        w.end("e");
        w.end("soapenv:Body");
        w.end("soapenv:Envelope");

        assert_eq!(w.as_slice(), n.to_xml().as_bytes());
    }

    #[test]
    fn empty_text_collapses_like_the_dom() {
        let mut n = XmlNode::new("s");
        n.set_attr("xsi:type", "xsd:string");
        n.set_text("");
        let mut w = XmlBufWriter::new();
        w.start("s");
        w.attr("xsi:type", "xsd:string");
        w.text("");
        w.end("s");
        assert_eq!(w.as_slice(), n.to_xml().as_bytes());
        assert_eq!(w.as_slice(), b"<s xsi:type=\"xsd:string\"/>");
    }

    #[test]
    fn with_buf_clears_but_keeps_capacity() {
        let mut w = XmlBufWriter::new();
        w.start("a");
        w.text("0123456789012345678901234567890123456789");
        w.end("a");
        let buf = w.into_bytes();
        let cap = buf.capacity();
        let mut w = XmlBufWriter::with_buf(buf);
        assert!(w.is_empty());
        w.declaration();
        w.start("b");
        w.end("b");
        assert_eq!(
            w.as_slice(),
            b"<?xml version=\"1.0\" encoding=\"UTF-8\"?><b/>"
        );
        assert_eq!(w.into_bytes().capacity(), cap);
    }
}
