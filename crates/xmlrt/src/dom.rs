//! A small DOM built on the pull parser, with the navigation helpers the
//! WSDL/SOAP decoders need.

use crate::error::{XmlError, XmlErrorKind};
use crate::parser::{Parser, XmlEvent};

/// An element node in a parsed XML document.
///
/// Holds the element name, its attributes, child elements and accumulated
/// text content. Comments and processing instructions are discarded during
/// DOM construction; interleaved text runs are concatenated.
///
/// Names are matched by *local name* by [`XmlNode::child`] and
/// [`XmlNode::children_named`]: `soap:Body` matches a query for `Body`.
/// This mirrors how Axis-era SOAP stacks resolved elements and keeps the
/// decoders independent of the namespace prefixes a peer happens to choose.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// let doc = xmlrt::XmlNode::parse("<env:Envelope><env:Body>hi</env:Body></env:Envelope>")?;
/// let body = doc.child("Body").expect("body present");
/// assert_eq!(body.text(), "hi");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<XmlNode>,
    text: String,
}

impl XmlNode {
    /// Creates an element node programmatically.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Parses `input` and returns the root element.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] if the document is malformed or has no root
    /// element.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut parser = Parser::new(input);
        loop {
            match parser.next_event()? {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    let root = build_element(&mut parser, name, attributes)?;
                    // Consume the remainder to surface trailing-garbage errors.
                    loop {
                        match parser.next_event()? {
                            XmlEvent::Eof => return Ok(root),
                            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
                            XmlEvent::Text(t) if t.trim().is_empty() => {}
                            _ => {
                                return Err(XmlError::at(
                                    XmlErrorKind::BadDocument("content after root element".into()),
                                    parser.offset(),
                                ))
                            }
                        }
                    }
                }
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
                XmlEvent::Eof => {
                    return Err(XmlError::new(
                        XmlErrorKind::BadDocument("no root element".into()),
                        None,
                    ))
                }
                XmlEvent::Text(t) if t.trim().is_empty() => {}
                _ => {
                    return Err(XmlError::at(
                        XmlErrorKind::BadDocument("unexpected content before root".into()),
                        parser.offset(),
                    ))
                }
            }
        }
    }

    /// Full (possibly prefixed) element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element name with any namespace prefix stripped.
    pub fn local_name(&self) -> &str {
        local(&self.name)
    }

    /// Attribute value by name, matching first on the exact name and then
    /// on the local name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .or_else(|| self.attributes.iter().find(|(k, _)| local(k) == name))
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Adds or replaces an attribute (builder-style helper).
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
        self
    }

    /// Concatenated text content of this element (direct text only, not
    /// descendants), surrounding whitespace trimmed.
    pub fn text(&self) -> &str {
        self.text.trim()
    }

    /// Raw, untrimmed text content.
    pub fn raw_text(&self) -> &str {
        &self.text
    }

    /// Sets the text content (builder-style helper).
    pub fn set_text(&mut self, text: impl Into<String>) -> &mut Self {
        self.text = text.into();
        self
    }

    /// Appends a child element (builder-style helper).
    pub fn push_child(&mut self, child: XmlNode) -> &mut Self {
        self.children.push(child);
        self
    }

    /// Child elements in document order.
    pub fn children(&self) -> &[XmlNode] {
        &self.children
    }

    /// First child whose local name equals `name`.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.local_name() == name)
    }

    /// All children whose local name equals `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.local_name() == name)
    }

    /// Walks a path of local names, e.g. `node.path(&["Body", "Fault"])`.
    pub fn path(&self, names: &[&str]) -> Option<&XmlNode> {
        let mut cur = self;
        for n in names {
            cur = cur.child(n)?;
        }
        Some(cur)
    }

    /// Depth-first search for the first descendant (or self) with the given
    /// local name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        if self.local_name() == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Serializes this node (and its subtree) back to XML.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&crate::escape::escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        out.push_str(&crate::escape::escape(&self.text));
        for c in &self.children {
            c.write_into(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

fn build_element(
    parser: &mut Parser<'_>,
    name: String,
    attributes: Vec<(String, String)>,
) -> Result<XmlNode, XmlError> {
    let mut node = XmlNode {
        name,
        attributes,
        children: Vec::new(),
        text: String::new(),
    };
    loop {
        match parser.next_event()? {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                let child = build_element(parser, name, attributes)?;
                node.children.push(child);
            }
            XmlEvent::EndElement { .. } => return Ok(node),
            XmlEvent::Text(t) => node.text.push_str(&t),
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
            XmlEvent::Eof => {
                return Err(XmlError::at(XmlErrorKind::UnexpectedEof, parser.offset()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_navigate() {
        let doc = XmlNode::parse("<a><b k=\"1\"><c>x</c></b><b k=\"2\"/></a>").unwrap();
        assert_eq!(doc.name(), "a");
        assert_eq!(doc.children().len(), 2);
        assert_eq!(doc.child("b").unwrap().attr("k"), Some("1"));
        assert_eq!(doc.children_named("b").count(), 2);
        assert_eq!(doc.path(&["b", "c"]).unwrap().text(), "x");
    }

    #[test]
    fn local_name_matching() {
        let doc =
            XmlNode::parse("<s:Envelope><s:Body x:attr=\"v\">t</s:Body></s:Envelope>").unwrap();
        assert_eq!(doc.local_name(), "Envelope");
        let body = doc.child("Body").unwrap();
        assert_eq!(body.text(), "t");
        assert_eq!(body.attr("attr"), Some("v"));
    }

    #[test]
    fn find_descendant() {
        let doc = XmlNode::parse("<a><b><c><d>deep</d></c></b></a>").unwrap();
        assert_eq!(doc.find("d").unwrap().text(), "deep");
        assert!(doc.find("nope").is_none());
    }

    #[test]
    fn text_concatenation_and_trim() {
        let doc = XmlNode::parse("<a> one <b/> two </a>").unwrap();
        assert_eq!(doc.text(), "one  two");
        assert_eq!(doc.raw_text(), " one  two ");
    }

    #[test]
    fn roundtrip_to_xml() {
        let src = "<a k=\"v&amp;w\"><b>text &lt; here</b><c/></a>";
        let doc = XmlNode::parse(src).unwrap();
        let re = doc.to_xml();
        let doc2 = XmlNode::parse(&re).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = XmlNode::parse("<?xml version=\"1.0\"?>\n<!-- c -->\n<a><!-- inner --><b/></a>")
            .unwrap();
        assert_eq!(doc.name(), "a");
        assert_eq!(doc.children().len(), 1);
    }

    #[test]
    fn no_root_is_error() {
        assert!(XmlNode::parse("").is_err());
        assert!(XmlNode::parse("<?xml version=\"1.0\"?> ").is_err());
    }

    #[test]
    fn builder_helpers() {
        let mut n = XmlNode::new("root");
        n.set_attr("k", "1").set_attr("k", "2").set_text("body");
        n.push_child(XmlNode::new("kid"));
        assert_eq!(n.attr("k"), Some("2"));
        assert_eq!(n.attrs().len(), 1);
        assert_eq!(n.to_xml(), "<root k=\"2\">body<kid/></root>");
    }

    #[test]
    fn trailing_whitespace_and_comment_after_root_ok() {
        assert!(XmlNode::parse("<a/> \n<!-- tail -->").is_ok());
    }

    #[test]
    fn doctype_rejected() {
        // DTDs are out of scope (SOAP explicitly forbids them); the parser
        // must reject them with an error, not misparse them.
        assert!(XmlNode::parse("<!DOCTYPE html><a/>").is_err());
        assert!(XmlNode::parse("<!DOCTYPE note [<!ELEMENT note (#PCDATA)>]><note/>").is_err());
    }

    #[test]
    fn deeply_nested_document() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push_str("<d>");
        }
        src.push('x');
        for _ in 0..200 {
            src.push_str("</d>");
        }
        let doc = XmlNode::parse(&src).unwrap();
        assert_eq!(doc.find("d").unwrap().name(), "d");
        let mut depth = 0;
        let mut cur = &doc;
        while let Some(child) = cur.child("d") {
            cur = child;
            depth += 1;
        }
        assert_eq!(depth, 199);
        assert_eq!(cur.text(), "x");
    }
}
