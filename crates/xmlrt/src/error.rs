use std::error::Error;
use std::fmt;

/// Error produced while parsing or writing XML.
///
/// Carries the byte offset at which the problem was detected (for parse
/// errors) so malformed SOAP requests can be reported precisely, as the
/// paper's call handlers do with their "Malformed SOAP Request" fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    /// Byte offset into the input, when known.
    offset: Option<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that is not legal at this position.
    UnexpectedChar(char),
    /// Close tag does not match the open tag.
    MismatchedTag { open: String, close: String },
    /// An entity reference that is not one of the five predefined ones
    /// (or a valid character reference).
    BadEntity(String),
    /// Document contained no root element, or trailing garbage after it.
    BadDocument(String),
    /// Writer misuse, e.g. `end_elem` with no open element.
    WriterMisuse(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttr(String),
    /// Name syntax violation (empty name, name starting with a digit, ...).
    BadName(String),
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, offset: Option<usize>) -> Self {
        XmlError { kind, offset }
    }

    pub(crate) fn at(kind: XmlErrorKind, offset: usize) -> Self {
        Self::new(kind, Some(offset))
    }

    pub(crate) fn writer(msg: impl Into<String>) -> Self {
        Self::new(XmlErrorKind::WriterMisuse(msg.into()), None)
    }

    /// Byte offset into the input at which the error was detected, if known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// Shifts a sub-parser-relative offset by `base` so errors found inside
    /// an embedded slice point into the whole document.
    pub(crate) fn shift_offset(mut self, base: usize) -> Self {
        self.offset = Some(base + self.offset.unwrap_or(0));
        self
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input")?,
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}")?,
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")?
            }
            XmlErrorKind::BadEntity(e) => write!(f, "unknown entity reference &{e};")?,
            XmlErrorKind::BadDocument(m) => write!(f, "malformed document: {m}")?,
            XmlErrorKind::WriterMisuse(m) => write!(f, "writer misuse: {m}")?,
            XmlErrorKind::DuplicateAttr(a) => write!(f, "duplicate attribute {a:?}")?,
            XmlErrorKind::BadName(n) => write!(f, "invalid XML name {n:?}")?,
        }
        if let Some(off) = self.offset {
            write!(f, " at byte {off}")?;
        }
        Ok(())
    }
}

impl Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = XmlError::at(XmlErrorKind::UnexpectedChar('<'), 17);
        let s = e.to_string();
        assert!(s.contains("'<'"), "{s}");
        assert!(s.contains("byte 17"), "{s}");
        assert_eq!(e.offset(), Some(17));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<XmlError>();
    }

    #[test]
    fn mismatched_tag_message() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag {
                open: "a".into(),
                close: "b".into(),
            },
            None,
        );
        assert_eq!(e.to_string(), "mismatched tag: <a> closed by </b>");
    }
}
