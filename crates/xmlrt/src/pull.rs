//! Zero-copy streaming pull parser for the RMI hot path.
//!
//! [`XmlPull`] is the allocation-free sibling of [`crate::Parser`]:
//! events borrow the input (`&'i str` names, [`Cow`] text that only
//! becomes owned when entity references force expansion), element and
//! attribute names are tracked as byte spans into the input, and the
//! attribute table is a reusable scratch vector. A SOAP envelope with
//! clean text parses without touching the heap.
//!
//! The DOM ([`crate::XmlNode`]) and the event parser ([`crate::Parser`])
//! stay as the tooling-friendly APIs; this module exists for the
//! steady-state wire path where every allocation per call shows up in
//! Table 1.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{unescape, validate_entities};

/// One event produced by [`XmlPull::next`]. All string data borrows the
/// parser's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullEvent<'i> {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    /// Attributes are queried on the parser ([`XmlPull::attr`]) while
    /// this is the most recent event.
    Start {
        /// Qualified element name.
        name: &'i str,
        /// Whether the element closed itself (`<name/>`); an `End`
        /// event is still synthesized.
        self_closing: bool,
    },
    /// `</name>` (also synthesized for self-closing elements).
    End {
        /// Qualified element name.
        name: &'i str,
    },
    /// Character data: borrowed when it contains no entity references,
    /// owned after expansion otherwise. CDATA bodies are always
    /// borrowed (they are literal).
    Text(Cow<'i, str>),
    /// `<!-- ... -->` body.
    Comment(&'i str),
    /// `<?target data?>` (including the XML declaration).
    Pi(&'i str),
    /// End of input.
    Eof,
}

/// An attribute of the current start tag, stored as spans into the
/// input so the table can be reused across elements.
#[derive(Debug, Clone, Copy)]
struct AttrSpan {
    name: (usize, usize),
    value: (usize, usize),
    /// Whether the raw value contains (already validated) entity
    /// references and needs expansion on access.
    has_entities: bool,
}

fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// A zero-copy pull parser over a complete in-memory document.
///
/// Same well-formedness rules as [`crate::Parser`] (matched tags,
/// validated names and entities, no duplicate attributes, nothing but
/// comments/PIs outside the root), but no per-event allocation: the
/// open-element stack and the attribute table hold byte spans, and
/// both keep their capacity across documents via [`XmlPull::reset`].
///
/// # Examples
///
/// ```
/// use xmlrt::{PullEvent, XmlPull};
///
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// let mut p = XmlPull::new("<a k=\"v\">hi</a>");
/// assert!(matches!(p.next()?, PullEvent::Start { name: "a", .. }));
/// assert_eq!(p.attr("k").as_deref(), Some("v"));
/// assert!(matches!(p.next()?, PullEvent::Text(t) if t == "hi"));
/// assert!(matches!(p.next()?, PullEvent::End { name: "a" }));
/// assert!(matches!(p.next()?, PullEvent::Eof));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct XmlPull<'i> {
    input: &'i str,
    pos: usize,
    /// Name spans of the currently open elements.
    stack: Vec<(usize, usize)>,
    /// Attributes of the most recent start tag.
    attrs: Vec<AttrSpan>,
    /// Pending synthesized end tag for a self-closing element.
    pending_end: Option<(usize, usize)>,
    /// Whether a root element has been fully closed already.
    root_done: bool,
}

impl<'i> XmlPull<'i> {
    /// Creates a parser over `input`.
    pub fn new(input: &'i str) -> Self {
        XmlPull {
            input,
            pos: 0,
            stack: Vec::new(),
            attrs: Vec::new(),
            pending_end: None,
            root_done: false,
        }
    }

    /// Re-targets the parser at a new document, keeping the stack and
    /// attribute-table capacity (the point of reusing one parser per
    /// connection).
    pub fn reset(&mut self, input: &'i str) {
        self.input = input;
        self.pos = 0;
        self.stack.clear();
        self.attrs.clear();
        self.pending_end = None;
        self.root_done = false;
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Attribute of the most recent start tag, matching first on the
    /// exact name and then on the local name (the [`crate::XmlNode::attr`]
    /// lookup rule). Borrowed unless the value contains entities.
    pub fn attr(&self, name: &str) -> Option<Cow<'i, str>> {
        self.attrs
            .iter()
            .find(|a| self.span(a.name) == name)
            .or_else(|| self.attrs.iter().find(|a| local(self.span(a.name)) == name))
            .map(|a| self.attr_value(a))
    }

    /// Attribute of the most recent start tag by exact name only.
    pub fn attr_exact(&self, name: &str) -> Option<Cow<'i, str>> {
        self.attrs
            .iter()
            .find(|a| self.span(a.name) == name)
            .map(|a| self.attr_value(a))
    }

    fn span(&self, (s, e): (usize, usize)) -> &'i str {
        &self.input[s..e]
    }

    fn attr_value(&self, a: &AttrSpan) -> Cow<'i, str> {
        let raw = self.span(a.value);
        if a.has_entities {
            Cow::Owned(unescape(raw).expect("entities validated at parse time"))
        } else {
            Cow::Borrowed(raw)
        }
    }

    fn rest(&self) -> &'i str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn eof_err(&self) -> XmlError {
        XmlError::at(XmlErrorKind::UnexpectedEof, self.pos)
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Produces the next event.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input, under the same rules as
    /// [`crate::Parser::next_event`].
    #[allow(clippy::should_implement_trait)] // not an Iterator: fallible + lending attrs
    pub fn next(&mut self) -> Result<PullEvent<'i>, XmlError> {
        if let Some(span) = self.pending_end.take() {
            if self.stack.is_empty() {
                self.root_done = true;
            }
            return Ok(PullEvent::End {
                name: self.span(span),
            });
        }
        if self.stack.is_empty() {
            self.skip_ws();
        }
        if self.rest().is_empty() {
            if !self.stack.is_empty() {
                return Err(self.eof_err());
            }
            return Ok(PullEvent::Eof);
        }
        if self.rest().starts_with("<!--") {
            return self.parse_comment();
        }
        if self.rest().starts_with("<![CDATA[") {
            return self.parse_cdata();
        }
        if self.rest().starts_with("<?") {
            return self.parse_pi();
        }
        if self.rest().starts_with("</") {
            return self.parse_end_tag();
        }
        if self.rest().starts_with('<') {
            return self.parse_start_tag();
        }
        self.parse_text()
    }

    /// Consumes the remainder of the element whose `Start` event was
    /// just returned, including its end tag (which is swallowed for
    /// self-closing elements too). Used by decoders to ignore subtrees.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the skipped content.
    pub fn skip_element(&mut self) -> Result<(), XmlError> {
        if self.pending_end.is_some() {
            self.next()?;
            return Ok(());
        }
        let target = self.stack.len().saturating_sub(1);
        loop {
            match self.next()? {
                PullEvent::End { .. } if self.stack.len() == target => return Ok(()),
                PullEvent::Eof => return Err(self.eof_err()),
                _ => {}
            }
        }
    }

    fn parse_comment(&mut self) -> Result<PullEvent<'i>, XmlError> {
        self.bump(4);
        let end = self.rest().find("-->").ok_or_else(|| self.eof_err())?;
        let body = &self.rest()[..end];
        self.bump(end + 3);
        Ok(PullEvent::Comment(body))
    }

    fn parse_cdata(&mut self) -> Result<PullEvent<'i>, XmlError> {
        self.bump("<![CDATA[".len());
        let end = self.rest().find("]]>").ok_or_else(|| self.eof_err())?;
        if self.stack.is_empty() {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("CDATA outside root element".into()),
                self.pos,
            ));
        }
        let body = &self.rest()[..end];
        self.bump(end + 3);
        Ok(PullEvent::Text(Cow::Borrowed(body)))
    }

    fn parse_pi(&mut self) -> Result<PullEvent<'i>, XmlError> {
        self.bump(2);
        let end = self.rest().find("?>").ok_or_else(|| self.eof_err())?;
        let body = &self.rest()[..end];
        self.bump(end + 2);
        Ok(PullEvent::Pi(body))
    }

    fn parse_end_tag(&mut self) -> Result<PullEvent<'i>, XmlError> {
        self.bump(2);
        let name = self.read_name_span()?;
        self.skip_ws_in_tag();
        if !self.rest().starts_with('>') {
            return Err(self.unexpected_char());
        }
        self.bump(1);
        match self.stack.pop() {
            Some(open) if self.span(open) == self.span(name) => {
                if self.stack.is_empty() {
                    self.root_done = true;
                }
                Ok(PullEvent::End {
                    name: self.span(name),
                })
            }
            Some(open) => Err(XmlError::at(
                XmlErrorKind::MismatchedTag {
                    open: self.span(open).to_string(),
                    close: self.span(name).to_string(),
                },
                self.pos,
            )),
            None => Err(XmlError::at(
                XmlErrorKind::BadDocument(format!(
                    "close tag </{}> with no open element",
                    self.span(name)
                )),
                self.pos,
            )),
        }
    }

    fn parse_start_tag(&mut self) -> Result<PullEvent<'i>, XmlError> {
        if self.root_done {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("content after root element".into()),
                self.pos,
            ));
        }
        self.bump(1);
        let name = self.read_name_span()?;
        self.attrs.clear();
        loop {
            self.skip_ws_in_tag();
            if self.rest().starts_with("/>") {
                self.bump(2);
                self.pending_end = Some(name);
                return Ok(PullEvent::Start {
                    name: self.span(name),
                    self_closing: true,
                });
            }
            if self.rest().starts_with('>') {
                self.bump(1);
                self.stack.push(name);
                return Ok(PullEvent::Start {
                    name: self.span(name),
                    self_closing: false,
                });
            }
            if self.rest().is_empty() {
                return Err(self.eof_err());
            }
            let attr_name = self.read_name_span()?;
            if self
                .attrs
                .iter()
                .any(|a| self.span(a.name) == self.span(attr_name))
            {
                return Err(XmlError::at(
                    XmlErrorKind::DuplicateAttr(self.span(attr_name).to_string()),
                    self.pos,
                ));
            }
            self.skip_ws_in_tag();
            if !self.rest().starts_with('=') {
                return Err(self.unexpected_char());
            }
            self.bump(1);
            self.skip_ws_in_tag();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                Some(_) => return Err(self.unexpected_char()),
                None => return Err(self.eof_err()),
            };
            self.bump(1);
            let value_start = self.pos;
            let end = self.rest().find(quote).ok_or_else(|| self.eof_err())?;
            let raw = &self.rest()[..end];
            let has_entities = validate_entities(raw).map_err(|e| e.shift_offset(value_start))?;
            self.bump(end + 1);
            self.attrs.push(AttrSpan {
                name: attr_name,
                value: (value_start, value_start + end),
                has_entities,
            });
        }
    }

    fn parse_text(&mut self) -> Result<PullEvent<'i>, XmlError> {
        if self.stack.is_empty() {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("text outside root element".into()),
                self.pos,
            ));
        }
        let start = self.pos;
        let end = self.rest().find('<').unwrap_or(self.rest().len());
        let raw = &self.rest()[..end];
        self.bump(end);
        let has_entities = validate_entities(raw).map_err(|e| e.shift_offset(start))?;
        Ok(PullEvent::Text(if has_entities {
            Cow::Owned(unescape(raw).expect("entities validated above"))
        } else {
            Cow::Borrowed(raw)
        }))
    }

    fn read_name_span(&mut self) -> Result<(usize, usize), XmlError> {
        let name_char = |c: char| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.');
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !name_char(*c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.unexpected_char());
        }
        let name = &rest[..end];
        crate::writer::validate_name(name)
            .map_err(|_| XmlError::at(XmlErrorKind::BadName(name.to_string()), self.pos))?;
        let start = self.pos;
        self.bump(end);
        Ok((start, start + end))
    }

    fn skip_ws_in_tag(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if !c.is_whitespace() {
                break;
            }
            self.bump(c.len_utf8());
        }
    }

    fn unexpected_char(&self) -> XmlError {
        match self.rest().chars().next() {
            Some(c) => XmlError::at(XmlErrorKind::UnexpectedChar(c), self.pos),
            None => self.eof_err(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_all, XmlEvent};

    /// Drains a document, rendering events in a comparable form.
    fn pull_events(s: &str) -> Result<Vec<String>, XmlError> {
        let mut p = XmlPull::new(s);
        let mut out = Vec::new();
        loop {
            match p.next()? {
                PullEvent::Eof => return Ok(out),
                PullEvent::Start { name, .. } => {
                    let mut attrs = String::new();
                    // Render attrs through the lookup API so borrowing
                    // and expansion are both exercised.
                    for a in p.attrs.clone() {
                        attrs.push_str(&format!(" {}={}", p.span(a.name), p.attr_value(&a)));
                    }
                    out.push(format!("start {name}{attrs}"));
                }
                PullEvent::End { name } => out.push(format!("end {name}")),
                PullEvent::Text(t) => out.push(format!("text {t}")),
                PullEvent::Comment(c) => out.push(format!("comment {c}")),
                PullEvent::Pi(p) => out.push(format!("pi {p}")),
            }
        }
    }

    /// The owned event parser rendered the same way.
    fn dom_events(s: &str) -> Result<Vec<String>, XmlError> {
        Ok(parse_all(s)?
            .into_iter()
            .map(|e| match e {
                XmlEvent::StartElement {
                    name, attributes, ..
                } => {
                    let attrs: String = attributes
                        .iter()
                        .map(|(k, v)| format!(" {k}={v}"))
                        .collect();
                    format!("start {name}{attrs}")
                }
                XmlEvent::EndElement { name } => format!("end {name}"),
                XmlEvent::Text(t) => format!("text {t}"),
                XmlEvent::Comment(c) => format!("comment {c}"),
                XmlEvent::ProcessingInstruction(p) => format!("pi {p}"),
                XmlEvent::Eof => unreachable!("parse_all strips Eof"),
            })
            .collect())
    }

    #[test]
    fn agrees_with_owned_parser() {
        for doc in [
            "<a x=\"1\">hi</a>",
            "<a/>",
            "<?xml version=\"1.0\"?><!-- note --><a/>",
            "<a k=\"&lt;&amp;\">&gt;</a>",
            "<a><![CDATA[1 < 2 && x]]></a>",
            "<a k='v'/>",
            "  <a>\n  <b/>\n</a>  ",
            "<a><b><c/></b><b/></a>",
            "<soap:Envelope xmlns:soap=\"uri\"/>",
            "<a k = \"v\"/>",
        ] {
            assert_eq!(pull_events(doc).unwrap(), dom_events(doc).unwrap(), "{doc}");
        }
    }

    #[test]
    fn rejects_what_the_owned_parser_rejects() {
        for bad in [
            "<a></b>",
            "<a>",
            "<a",
            "<a k=\"v>",
            "<!-- no end",
            "<a k=\"1\" k=\"2\"/>",
            "<a/><b/>",
            "<a/>junk",
            "<a>&nope;</a>",
            "<a k=\"&nope;\"/>",
            "text",
        ] {
            assert!(pull_events(bad).is_err(), "{bad}");
            assert!(dom_events(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn clean_text_and_attrs_borrow_the_input() {
        let mut p = XmlPull::new("<a k=\"clean\">also clean</a>");
        assert!(matches!(p.next().unwrap(), PullEvent::Start { .. }));
        assert!(matches!(p.attr("k"), Some(Cow::Borrowed("clean"))));
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Text(Cow::Borrowed("also clean"))
        ));
    }

    #[test]
    fn entity_values_are_expanded_and_owned() {
        let mut p = XmlPull::new("<a k=\"&lt;x&gt;\">a &amp; b</a>");
        assert!(matches!(p.next().unwrap(), PullEvent::Start { .. }));
        assert!(matches!(p.attr("k"), Some(Cow::Owned(v)) if v == "<x>"));
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Text(Cow::Owned(t)) if t == "a & b"
        ));
    }

    #[test]
    fn attr_lookup_exact_then_local() {
        let mut p = XmlPull::new("<a xsi:type=\"xsd:int\" type=\"exact\"/>");
        p.next().unwrap();
        assert_eq!(p.attr("type").as_deref(), Some("exact"));
        assert_eq!(p.attr_exact("xsi:type").as_deref(), Some("xsd:int"));
        let mut p = XmlPull::new("<a xsi:type=\"xsd:int\"/>");
        p.next().unwrap();
        assert_eq!(p.attr("type").as_deref(), Some("xsd:int"));
        assert_eq!(p.attr_exact("type"), None);
    }

    #[test]
    fn skip_element_passes_over_subtrees() {
        let mut p = XmlPull::new("<r><skip a=\"1\"><x/>text<y><z/></y></skip><keep/></r>");
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Start { name: "r", .. }
        ));
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Start { name: "skip", .. }
        ));
        p.skip_element().unwrap();
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Start { name: "keep", .. }
        ));
        p.skip_element().unwrap();
        assert!(matches!(p.next().unwrap(), PullEvent::End { name: "r" }));
        assert!(matches!(p.next().unwrap(), PullEvent::Eof));
    }

    #[test]
    fn reset_reuses_the_parser() {
        let mut p = XmlPull::new("<a><b/></a>");
        while !matches!(p.next().unwrap(), PullEvent::Eof) {}
        p.reset("<c/>");
        assert!(matches!(
            p.next().unwrap(),
            PullEvent::Start { name: "c", .. }
        ));
        assert!(matches!(p.next().unwrap(), PullEvent::End { name: "c" }));
        assert!(matches!(p.next().unwrap(), PullEvent::Eof));
    }
}
