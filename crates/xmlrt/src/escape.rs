//! Entity escaping and unescaping for XML character data and attributes.

use crate::error::{XmlError, XmlErrorKind};

/// Escapes character data for use inside element content.
///
/// Replaces `&`, `<` and `>` by their predefined entities. `>` is escaped
/// defensively (only `]]>` strictly requires it) so output is safe to embed
/// anywhere.
///
/// # Examples
///
/// ```
/// assert_eq!(xmlrt::escape("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// [`escape`] into a caller-supplied byte buffer.
///
/// Clean runs (no `&`, `<`, `>`) are appended with a single bulk copy,
/// so text that needs no escaping — the common case on the RMI hot
/// path — costs one `memcpy` and no intermediate `String`.
pub fn escape_into(text: &str, out: &mut Vec<u8>) {
    let bytes = text.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep: &[u8] = match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        out.extend_from_slice(rep);
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
}

/// Escapes text for use inside a double-quoted attribute value.
///
/// In addition to the content escapes, `"` becomes `&quot;` and newlines and
/// tabs become character references so they survive attribute-value
/// normalization.
///
/// # Examples
///
/// ```
/// assert_eq!(xmlrt::escape_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// [`escape_attr`] into a caller-supplied byte buffer, with the same
/// bulk-copy fast path as [`escape_into`].
pub fn escape_attr_into(text: &str, out: &mut Vec<u8>) {
    let bytes = text.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep: &[u8] = match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            b'"' => b"&quot;",
            b'\n' => b"&#10;",
            b'\r' => b"&#13;",
            b'\t' => b"&#9;",
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        out.extend_from_slice(rep);
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
}

/// Expands the five predefined entities and numeric character references.
///
/// # Errors
///
/// Returns [`XmlError`] on an unterminated reference, an unknown named
/// entity, or a numeric reference that is not a valid Unicode scalar value.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// assert_eq!(xmlrt::unescape("1 &lt; 2 &amp;&amp; 3 &gt; 2")?, "1 < 2 && 3 > 2");
/// assert_eq!(xmlrt::unescape("&#65;&#x42;")?, "AB");
/// # Ok(())
/// # }
/// ```
pub fn unescape(text: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let semi = text[i..]
                .find(';')
                .ok_or_else(|| XmlError::at(XmlErrorKind::BadEntity(text[i + 1..].into()), i))?;
            let name = &text[i + 1..i + semi];
            out.push(expand_entity(name, i)?);
            i += semi + 1;
        } else {
            // Advance one whole UTF-8 character.
            let c = text[i..].chars().next().expect("in-bounds index");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

/// Scans `text` for entity references, validating each one without
/// allocating. Returns whether any reference is present — the pull
/// parser's cue to take the owned (unescaping) slow path instead of
/// borrowing the input slice verbatim.
///
/// # Errors
///
/// Same conditions as [`unescape`].
pub(crate) fn validate_entities(text: &str) -> Result<bool, XmlError> {
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut any = false;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let semi = text[i..]
                .find(';')
                .ok_or_else(|| XmlError::at(XmlErrorKind::BadEntity(text[i + 1..].into()), i))?;
            expand_entity(&text[i + 1..i + semi], i)?;
            any = true;
            i += semi + 1;
        } else {
            // Byte-wise advance is safe: UTF-8 continuation bytes never
            // equal `&`.
            i += 1;
        }
    }
    Ok(any)
}

fn expand_entity(name: &str, offset: usize) -> Result<char, XmlError> {
    let expanded = match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
            code.and_then(char::from_u32)
                .ok_or_else(|| XmlError::at(XmlErrorKind::BadEntity(name.into()), offset))?
        }
    };
    Ok(expanded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_basic() {
        assert_eq!(escape("<tag>&"), "&lt;tag&gt;&amp;");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape(""), "");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn unescape_named_entities() {
        assert_eq!(unescape("&amp;&lt;&gt;&quot;&apos;").unwrap(), "&<>\"'");
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;").unwrap(), "A");
        assert_eq!(unescape("&#x41;").unwrap(), "A");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        // Surrogate code point is not a scalar value.
        assert!(unescape("&#xD800;").is_err());
    }

    #[test]
    fn unescape_rejects_unterminated() {
        let err = unescape("a &amp b").unwrap_err();
        assert_eq!(err.offset(), Some(2));
    }

    #[test]
    fn roundtrip_content() {
        let original = "x < y && y > \"z\" 'w' \u{00e9}\u{4e2d}";
        assert_eq!(unescape(&escape(original)).unwrap(), original);
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn unescape_multibyte_passthrough() {
        assert_eq!(unescape("caf\u{00e9}").unwrap(), "caf\u{00e9}");
    }

    #[test]
    fn buffer_variants_match_string_variants() {
        for s in [
            "",
            "plain",
            "a < b & c > d",
            "q\"q\n\t\r",
            "caf\u{00e9} ]]>",
        ] {
            let mut buf = Vec::new();
            escape_into(s, &mut buf);
            assert_eq!(buf, escape(s).as_bytes(), "{s:?}");
            buf.clear();
            escape_attr_into(s, &mut buf);
            assert_eq!(buf, escape_attr(s).as_bytes(), "{s:?}");
        }
    }

    #[test]
    fn validate_entities_reports_presence_and_errors() {
        assert!(!validate_entities("plain text").unwrap());
        assert!(validate_entities("a &amp; b").unwrap());
        assert!(validate_entities("&#x41;").unwrap());
        assert!(validate_entities("&bogus;").is_err());
        assert!(validate_entities("dangling &amp").is_err());
    }
}
