//! Entity escaping and unescaping for XML character data and attributes.

use crate::error::{XmlError, XmlErrorKind};

/// Escapes character data for use inside element content.
///
/// Replaces `&`, `<` and `>` by their predefined entities. `>` is escaped
/// defensively (only `]]>` strictly requires it) so output is safe to embed
/// anywhere.
///
/// # Examples
///
/// ```
/// assert_eq!(xmlrt::escape("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes text for use inside a double-quoted attribute value.
///
/// In addition to the content escapes, `"` becomes `&quot;` and newlines and
/// tabs become character references so they survive attribute-value
/// normalization.
///
/// # Examples
///
/// ```
/// assert_eq!(xmlrt::escape_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expands the five predefined entities and numeric character references.
///
/// # Errors
///
/// Returns [`XmlError`] on an unterminated reference, an unknown named
/// entity, or a numeric reference that is not a valid Unicode scalar value.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// assert_eq!(xmlrt::unescape("1 &lt; 2 &amp;&amp; 3 &gt; 2")?, "1 < 2 && 3 > 2");
/// assert_eq!(xmlrt::unescape("&#65;&#x42;")?, "AB");
/// # Ok(())
/// # }
/// ```
pub fn unescape(text: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            let semi = text[i..]
                .find(';')
                .ok_or_else(|| XmlError::at(XmlErrorKind::BadEntity(text[i + 1..].into()), i))?;
            let name = &text[i + 1..i + semi];
            out.push_str(&expand_entity(name, i)?);
            i += semi + 1;
        } else {
            // Advance one whole UTF-8 character.
            let c = text[i..].chars().next().expect("in-bounds index");
            out.push(c);
            i += c.len_utf8();
        }
    }
    Ok(out)
}

fn expand_entity(name: &str, offset: usize) -> Result<String, XmlError> {
    let expanded = match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
            code.and_then(char::from_u32)
                .ok_or_else(|| XmlError::at(XmlErrorKind::BadEntity(name.into()), offset))?
        }
    };
    Ok(expanded.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_basic() {
        assert_eq!(escape("<tag>&"), "&lt;tag&gt;&amp;");
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape(""), "");
    }

    #[test]
    fn escape_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn unescape_named_entities() {
        assert_eq!(unescape("&amp;&lt;&gt;&quot;&apos;").unwrap(), "&<>\"'");
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;").unwrap(), "A");
        assert_eq!(unescape("&#x41;").unwrap(), "A");
        assert_eq!(unescape("&#x1F600;").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        // Surrogate code point is not a scalar value.
        assert!(unescape("&#xD800;").is_err());
    }

    #[test]
    fn unescape_rejects_unterminated() {
        let err = unescape("a &amp b").unwrap_err();
        assert_eq!(err.offset(), Some(2));
    }

    #[test]
    fn roundtrip_content() {
        let original = "x < y && y > \"z\" 'w' \u{00e9}\u{4e2d}";
        assert_eq!(unescape(&escape(original)).unwrap(), original);
        assert_eq!(unescape(&escape_attr(original)).unwrap(), original);
    }

    #[test]
    fn unescape_multibyte_passthrough() {
        assert_eq!(unescape("caf\u{00e9}").unwrap(), "caf\u{00e9}");
    }
}
