//! A pull parser for the XML subset used by SOAP and WSDL documents.

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::unescape;

/// One event produced by [`Parser::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    StartElement {
        name: String,
        attributes: Vec<(String, String)>,
        self_closing: bool,
    },
    /// `</name>` (also synthesized for self-closing elements).
    EndElement { name: String },
    /// Character data between tags, entity references expanded. Whitespace
    /// -only runs between elements are skipped.
    Text(String),
    /// `<!-- ... -->` body.
    Comment(String),
    /// `<?target data?>` (including the XML declaration).
    ProcessingInstruction(String),
    /// End of input.
    Eof,
}

/// A pull parser over a complete in-memory document.
///
/// Produces a well-formedness-checked stream of [`XmlEvent`]s: every
/// `StartElement` is matched by an `EndElement` with the same name (the
/// parser synthesizes the `EndElement` for self-closing tags, so consumers
/// can treat both forms uniformly).
///
/// # Examples
///
/// ```
/// use xmlrt::{Parser, XmlEvent};
///
/// # fn main() -> Result<(), xmlrt::XmlError> {
/// let mut p = Parser::new("<a><b/></a>");
/// assert!(matches!(p.next_event()?, XmlEvent::StartElement { name, .. } if name == "a"));
/// assert!(matches!(p.next_event()?, XmlEvent::StartElement { name, .. } if name == "b"));
/// assert!(matches!(p.next_event()?, XmlEvent::EndElement { name } if name == "b"));
/// assert!(matches!(p.next_event()?, XmlEvent::EndElement { name } if name == "a"));
/// assert!(matches!(p.next_event()?, XmlEvent::Eof));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Parser<'a> {
    input: &'a str,
    pos: usize,
    /// Stack of currently open element names.
    stack: Vec<String>,
    /// Pending end event for a self-closing element.
    pending_end: Option<String>,
    /// Whether a root element has been fully closed already.
    root_done: bool,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            root_done: false,
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn eof_err(&self) -> XmlError {
        XmlError::at(XmlErrorKind::UnexpectedEof, self.pos)
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Produces the next event.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input: mismatched or unterminated
    /// tags, bad entity references, duplicate attributes, or trailing
    /// content after the root element.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            if self.stack.is_empty() {
                self.root_done = true;
            }
            return Ok(XmlEvent::EndElement { name });
        }
        if self.stack.is_empty() {
            self.skip_ws();
        }
        if self.rest().is_empty() {
            if !self.stack.is_empty() {
                return Err(self.eof_err());
            }
            return Ok(XmlEvent::Eof);
        }
        if self.rest().starts_with("<!--") {
            return self.parse_comment();
        }
        if self.rest().starts_with("<![CDATA[") {
            return self.parse_cdata();
        }
        if self.rest().starts_with("<?") {
            return self.parse_pi();
        }
        if self.rest().starts_with("</") {
            return self.parse_end_tag();
        }
        if self.rest().starts_with('<') {
            return self.parse_start_tag();
        }
        self.parse_text()
    }

    fn parse_comment(&mut self) -> Result<XmlEvent, XmlError> {
        self.bump(4);
        let end = self.rest().find("-->").ok_or_else(|| self.eof_err())?;
        let body = self.rest()[..end].to_string();
        self.bump(end + 3);
        Ok(XmlEvent::Comment(body))
    }

    fn parse_cdata(&mut self) -> Result<XmlEvent, XmlError> {
        self.bump("<![CDATA[".len());
        let end = self.rest().find("]]>").ok_or_else(|| self.eof_err())?;
        if self.stack.is_empty() {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("CDATA outside root element".into()),
                self.pos,
            ));
        }
        let body = self.rest()[..end].to_string();
        self.bump(end + 3);
        Ok(XmlEvent::Text(body))
    }

    fn parse_pi(&mut self) -> Result<XmlEvent, XmlError> {
        self.bump(2);
        let end = self.rest().find("?>").ok_or_else(|| self.eof_err())?;
        let body = self.rest()[..end].to_string();
        self.bump(end + 2);
        Ok(XmlEvent::ProcessingInstruction(body))
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent, XmlError> {
        self.bump(2);
        let name = self.read_name()?;
        self.skip_ws_in_tag();
        if !self.rest().starts_with('>') {
            return Err(self.unexpected_char());
        }
        self.bump(1);
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.root_done = true;
                }
                Ok(XmlEvent::EndElement { name })
            }
            Some(open) => Err(XmlError::at(
                XmlErrorKind::MismatchedTag { open, close: name },
                self.pos,
            )),
            None => Err(XmlError::at(
                XmlErrorKind::BadDocument(format!("close tag </{name}> with no open element")),
                self.pos,
            )),
        }
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent, XmlError> {
        if self.root_done {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("content after root element".into()),
                self.pos,
            ));
        }
        self.bump(1);
        let name = self.read_name()?;
        let mut attributes: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws_in_tag();
            if self.rest().starts_with("/>") {
                self.bump(2);
                self.pending_end = Some(name.clone());
                return Ok(XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing: true,
                });
            }
            if self.rest().starts_with('>') {
                self.bump(1);
                self.stack.push(name.clone());
                return Ok(XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing: false,
                });
            }
            if self.rest().is_empty() {
                return Err(self.eof_err());
            }
            let attr_name = self.read_name()?;
            if attributes.iter().any(|(k, _)| *k == attr_name) {
                return Err(XmlError::at(
                    XmlErrorKind::DuplicateAttr(attr_name),
                    self.pos,
                ));
            }
            self.skip_ws_in_tag();
            if !self.rest().starts_with('=') {
                return Err(self.unexpected_char());
            }
            self.bump(1);
            self.skip_ws_in_tag();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                Some(_) => return Err(self.unexpected_char()),
                None => return Err(self.eof_err()),
            };
            self.bump(1);
            let end = self.rest().find(quote).ok_or_else(|| self.eof_err())?;
            let raw = &self.rest()[..end];
            let value = unescape(raw)?;
            self.bump(end + 1);
            attributes.push((attr_name, value));
        }
    }

    fn parse_text(&mut self) -> Result<XmlEvent, XmlError> {
        if self.stack.is_empty() {
            return Err(XmlError::at(
                XmlErrorKind::BadDocument("text outside root element".into()),
                self.pos,
            ));
        }
        let end = self.rest().find('<').unwrap_or(self.rest().len());
        let raw = &self.rest()[..end];
        let start = self.pos;
        self.bump(end);
        let text = unescape(raw).map_err(|e| e.shift_offset(start))?;
        Ok(XmlEvent::Text(text))
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let name_char = |c: char| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.');
        let end = self
            .rest()
            .char_indices()
            .find(|(_, c)| !name_char(*c))
            .map(|(i, _)| i)
            .unwrap_or(self.rest().len());
        if end == 0 {
            return Err(self.unexpected_char());
        }
        let name = self.rest()[..end].to_string();
        crate::writer::validate_name(&name)
            .map_err(|_| XmlError::at(XmlErrorKind::BadName(name.clone()), self.pos))?;
        self.bump(end);
        Ok(name)
    }

    fn skip_ws_in_tag(&mut self) {
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace())
        {
            let c = self.rest().chars().next().expect("peeked above");
            self.bump(c.len_utf8());
        }
    }

    fn unexpected_char(&self) -> XmlError {
        match self.rest().chars().next() {
            Some(c) => XmlError::at(XmlErrorKind::UnexpectedChar(c), self.pos),
            None => self.eof_err(),
        }
    }
}

/// Parses a complete document and returns all events (excluding `Eof`).
///
/// # Errors
///
/// Returns the first parse error encountered.
pub fn parse_all(input: &str) -> Result<Vec<XmlEvent>, XmlError> {
    let mut p = Parser::new(input);
    let mut events = Vec::new();
    loop {
        match p.next_event()? {
            XmlEvent::Eof => return Ok(events),
            e => events.push(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<XmlEvent> {
        parse_all(s).unwrap()
    }

    #[test]
    fn simple_document() {
        let evs = events("<a x=\"1\">hi</a>");
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs[0],
            XmlEvent::StartElement {
                name: "a".into(),
                attributes: vec![("x".into(), "1".into())],
                self_closing: false
            }
        );
        assert_eq!(evs[1], XmlEvent::Text("hi".into()));
        assert_eq!(evs[2], XmlEvent::EndElement { name: "a".into() });
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[1], XmlEvent::EndElement { name } if name == "a"));
    }

    #[test]
    fn declaration_and_comment() {
        let evs = events("<?xml version=\"1.0\"?><!-- note --><a/>");
        assert!(matches!(&evs[0], XmlEvent::ProcessingInstruction(p) if p.starts_with("xml")));
        assert!(matches!(&evs[1], XmlEvent::Comment(c) if c.trim() == "note"));
    }

    #[test]
    fn entity_expansion_in_text_and_attr() {
        let evs = events("<a k=\"&lt;&amp;\">&gt;</a>");
        assert!(matches!(
            &evs[0],
            XmlEvent::StartElement { attributes, .. } if attributes[0].1 == "<&"
        ));
        assert_eq!(evs[1], XmlEvent::Text(">".into()));
    }

    #[test]
    fn cdata_is_literal_text() {
        let evs = events("<a><![CDATA[1 < 2 && x]]></a>");
        assert_eq!(evs[1], XmlEvent::Text("1 < 2 && x".into()));
    }

    #[test]
    fn single_quoted_attributes() {
        let evs = events("<a k='v'/>");
        assert!(matches!(
            &evs[0],
            XmlEvent::StartElement { attributes, .. } if attributes[0] == ("k".into(), "v".into())
        ));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse_all("<a></b>").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse_all("<a>").is_err());
        assert!(parse_all("<a").is_err());
        assert!(parse_all("<a k=\"v>").is_err());
        assert!(parse_all("<!-- no end").is_err());
    }

    #[test]
    fn duplicate_attr_rejected() {
        assert!(parse_all("<a k=\"1\" k=\"2\"/>").is_err());
    }

    #[test]
    fn content_after_root_rejected() {
        assert!(parse_all("<a/><b/>").is_err());
        assert!(parse_all("<a/>junk").is_err());
    }

    #[test]
    fn whitespace_between_elements_ok() {
        let evs = events("  <a>\n  <b/>\n</a>  ");
        // Whitespace text nodes inside the root are preserved.
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::Text(t) if t.trim().is_empty())));
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "a"));
    }

    #[test]
    fn nested_structure() {
        let evs = events("<a><b><c/></b><b/></a>");
        let starts: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(starts, ["a", "b", "c", "b"]);
    }

    #[test]
    fn bad_entity_in_text_rejected() {
        assert!(parse_all("<a>&nope;</a>").is_err());
    }

    #[test]
    fn namespaced_names() {
        let evs = events("<soap:Envelope xmlns:soap=\"uri\"/>");
        assert!(matches!(&evs[0], XmlEvent::StartElement { name, .. } if name == "soap:Envelope"));
    }

    #[test]
    fn attr_ws_around_equals() {
        let evs = events("<a k = \"v\"/>");
        assert!(matches!(
            &evs[0],
            XmlEvent::StartElement { attributes, .. } if attributes[0].1 == "v"
        ));
    }
}
