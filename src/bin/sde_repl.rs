//! Interactive SDE Manager Interface (paper §4): deploy, live-edit, and
//! call SOAP/CORBA servers from a shell.
//!
//! Run with `cargo run --bin sde_repl`, type `help` for the command set,
//! or pipe a script: `cargo run --bin sde_repl < session.txt`.

use std::io::{BufRead, Write};

use live_rmi::repl::Repl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut repl = Repl::new()?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("SDE Manager Interface — type `help` for commands, `quit` to exit");
    loop {
        print!("sde> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        match repl.execute(&line) {
            None => return Ok(()),
            Some(out) if out.is_empty() => {}
            Some(out) => println!("{out}"),
        }
    }
}
