//! The SDE Manager Interface as an interactive shell.
//!
//! The paper's §4 gives the user a management surface: control the
//! publication timeout, force publication, view the published WSDL /
//! CORBA-IDL, plus (through JPie itself) the live class-editing gestures.
//! This module provides that surface as a line-oriented command
//! interpreter — run it interactively with `cargo run --bin sde-repl`, or
//! drive it from a script (every command reads one line, which is what
//! the integration tests do).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cde::{CallError, ClientEnvironment, DynamicStub};
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use router::{ClassSpec, HashRing, Router, RouterConfig};
use sde::{SdeConfig, SdeManager, SdeServerGateway, Technology, TransportKind};

/// The interactive session state.
pub struct Repl {
    manager: SdeManager,
    env: ClientEnvironment,
    classes: Vec<ClassHandle>,
    stubs: Vec<(String, Arc<DynamicStub>)>,
    /// The `chaos` command's fault plan under construction; rules
    /// accumulate and the plan is re-installed after every change.
    chaos_seed: u64,
    chaos_rules: Vec<httpd::FaultRule>,
    /// Interface-server address, pinned so `restart` comes back at the
    /// same published authority.
    interface_addr: String,
    /// SDE configuration (including the WAL directory) reused on restart.
    config: SdeConfig,
    /// Set by `crash`: the manager is down and most commands refuse to
    /// run until `restart`.
    down: bool,
    /// Deployments captured at crash time, redeployed by `restart`.
    crashed_servers: Vec<(String, Technology)>,
    /// The `shards` command's demo cluster, built on first use.
    shard_demo: Option<ShardDemo>,
}

/// A live sharded-router fleet the `shards` command drives: ring
/// assignments, health, replication lag, and kill-to-promote failover,
/// all observable from the shell.
struct ShardDemo {
    router: Router,
    wal_root: std::path::PathBuf,
}

impl std::fmt::Debug for Repl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Repl")
            .field("classes", &self.classes.len())
            .field("stubs", &self.stubs.len())
            .finish_non_exhaustive()
    }
}

const HELP: &str = "\
SDE Manager Interface commands:
  new <Class>                              create a dynamic class
  load class <Name> [extends S] { ... }    load a full class from source
  deploy soap|corba <Class>                deploy through SDE (auto-publishes)
  instance <Class>                         create the live instance
  add <Class> <m>(<p>:<ty>,...)-><ty> [distributed]   add a method
  body <Class> <m> <jpie-script...>        replace a body (live)
  rename <Class> <old> <new>               rename a method (live)
  param+ <Class> <m> <p>:<ty>              add a parameter (live)
  remove <Class> <m>                       remove a method (live)
  distributed <Class> <m> on|off           toggle the modifier
  undo <Class> | redo <Class>              walk the edit history
  show <Class>                             view the class source
  state <Class>                            view the live instance's fields
  export <Class>                           end of development: freeze to a static server
  doc <Class>                              view the published WSDL/IDL
  publish <Class>                          force publication now
  timeout <Class> <millis>                 set the stable timeout
  switch <Class>                           live SOAP<->CORBA interchange
  connect <Class>                          build a CDE stub from the docs
  ops <Class>                              show the stub's interface view
  call <Class> <m> [args...]               remote call (1 2L 3.5 true \"s\")
  debugger                                 list caught exceptions
  again <index>                            debugger try-again
  replycache <Class>                       exactly-once reply-cache stats
  crash                                    kill the server process (state lost, WAL kept)
  restart                                  restart at the same authority; WAL replay
                                           floors interface versions at pre-crash
  servers                                  list managed servers
  stats [filter]                           metrics snapshot (Prometheus text format)
  trace [n]                                most recent trace events (default 20)
  trace show [id-prefix]                   list tail-sampled traces / render one
                                           as a span waterfall (prefix matches
                                           trace id or call id)
  events [Class]                           the queryable version-event log
  verbose on|off                           toggle per-request trace events
  chaos                                    show the installed fault plan
  chaos off | chaos seed <n>               clear the plan / set the RNG seed
  shards                                   demo router cluster: ring assignments,
                                           shard health, WAL replication lag,
                                           last failover
  shards kill <n>                          kill shard n live; the router promotes
                                           its WAL follower and reports the
                                           detect/replay/republish latencies
  shards call <Class>                      one bump() through the front tier
  shards move <Class> <n>                  planned migration of a class to shard
                                           n: WAL catch-up, bounded drain,
                                           atomic handoff — zero failed calls
  shards drain <n>                         migrate every class off shard n (it
                                           stays up, empty, restartable)
  shards off                               tear the demo cluster down
  chaos <ep> <fault> [p]                   add a rule: <ep> is an address
                                           substring (or 'all'); <fault> is
                                           refuse | delay:<ms> | truncate:<n>
                                           | corrupt:<n> | disconnect:<n>
                                           | blackhole | drop_reply (server-
                                           side: executes, loses the reply);
                                           p defaults to 1.0
  help | quit";

impl Repl {
    /// Creates a session with its own SDE manager.
    ///
    /// # Errors
    ///
    /// Fails if the Interface Server cannot start.
    pub fn new() -> Result<Repl, sde::SdeError> {
        // A pinned interface address plus a WAL directory make the
        // crash/restart commands meaningful: the restarted manager
        // rebinds the same authority and replays the log.
        static SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let session = SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let interface_addr = format!("mem://sde-repl-ifc-{}-{session}", std::process::id());
        let config = SdeConfig {
            wal_dir: Some(
                std::env::temp_dir().join(format!("sde-repl-wal-{}-{session}", std::process::id())),
            ),
            ..SdeConfig::default()
        };
        Ok(Repl {
            manager: SdeManager::with_interface_addr(config.clone(), &interface_addr)?,
            env: ClientEnvironment::new(),
            classes: Vec::new(),
            stubs: Vec::new(),
            chaos_seed: 42,
            chaos_rules: Vec::new(),
            interface_addr,
            config,
            down: false,
            crashed_servers: Vec::new(),
            shard_demo: None,
        })
    }

    fn class(&self, name: &str) -> Result<&ClassHandle, String> {
        self.classes
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| format!("no class {name:?} (use: new {name})"))
    }

    fn stub(&self, name: &str) -> Result<&Arc<DynamicStub>, String> {
        self.stubs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| format!("no stub for {name:?} (use: connect {name})"))
    }

    fn publisher_sync(&self, name: &str) {
        if let Some(s) = self.manager.soap_server(name) {
            s.publisher().ensure_current();
        }
        if let Some(s) = self.manager.corba_server(name) {
            s.publisher().ensure_current();
        }
    }

    /// Executes one command line; returns the printable result, or
    /// `None` when the command asks to quit.
    pub fn execute(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Some(String::new());
        }
        let mut parts = line.splitn(2, ' ');
        let cmd = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        if self.down
            && matches!(
                cmd,
                "deploy"
                    | "instance"
                    | "doc"
                    | "publish"
                    | "timeout"
                    | "switch"
                    | "connect"
                    | "call"
                    | "servers"
                    | "state"
                    | "export"
                    | "replycache"
            )
        {
            return Some("error: server process is down (use: restart)".into());
        }
        let result = match cmd {
            "quit" | "exit" => return None,
            "help" => Ok(HELP.to_string()),
            "new" => self.cmd_new(rest),
            "load" => self.cmd_load(rest),
            "deploy" => self.cmd_deploy(rest),
            "instance" => self.cmd_instance(rest),
            "add" => self.cmd_add(rest),
            "body" => self.cmd_body(rest),
            "rename" => self.cmd_rename(rest),
            "param+" => self.cmd_add_param(rest),
            "remove" => self.cmd_remove(rest),
            "distributed" => self.cmd_distributed(rest),
            "undo" => self.cmd_history(rest, true),
            "redo" => self.cmd_history(rest, false),
            "show" => self.class(rest).map(|c| c.class_source()),
            "state" => self.cmd_state(rest),
            "export" => self.cmd_export(rest),
            "doc" => self
                .manager
                .interface_document(rest)
                .ok_or_else(|| format!("nothing published for {rest:?}")),
            "publish" => self.cmd_publish(rest),
            "timeout" => self.cmd_timeout(rest),
            "switch" => self.cmd_switch(rest),
            "connect" => self.cmd_connect(rest),
            "ops" => self.cmd_ops(rest),
            "call" => self.cmd_call(rest),
            "debugger" => Ok(self.cmd_debugger()),
            "again" => self.cmd_again(rest),
            "replycache" => self.cmd_replycache(rest),
            "crash" => self.cmd_crash(),
            "restart" => self.cmd_restart(),
            "stats" => Ok(cmd_stats(rest)),
            "trace" => cmd_trace(rest),
            "events" => Ok(cmd_events(rest)),
            "verbose" => cmd_verbose(rest),
            "chaos" => self.cmd_chaos(rest),
            "shards" => self.cmd_shards(rest),
            "servers" => Ok(self
                .manager
                .managed()
                .iter()
                .map(|(n, t)| format!("{n} [{t}]"))
                .collect::<Vec<_>>()
                .join("\n")),
            other => Err(format!("unknown command {other:?} (try: help)")),
        };
        Some(match result {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_new(&mut self, name: &str) -> Result<String, String> {
        if name.is_empty() {
            return Err("usage: new <Class>".into());
        }
        if self.classes.iter().any(|c| c.name() == name) {
            return Err(format!("class {name:?} already exists"));
        }
        self.classes.push(ClassHandle::new(name));
        Ok(format!("created dynamic class {name}"))
    }

    fn cmd_load(&mut self, src: &str) -> Result<String, String> {
        let class = jpie::parse::parse_class(src).map_err(|e| e.to_string())?;
        let name = class.name();
        if self.classes.iter().any(|c| c.name() == name) {
            return Err(format!("class {name:?} already exists"));
        }
        let summary = format!(
            "loaded {name}: {} field(s), {} method(s) ({} distributed)",
            class.declared_fields().len(),
            class.signatures().len(),
            class.distributed_signatures().len()
        );
        self.classes.push(class);
        Ok(summary)
    }

    fn cmd_deploy(&mut self, rest: &str) -> Result<String, String> {
        let (tech, name) = rest
            .split_once(' ')
            .ok_or("usage: deploy soap|corba <Class>")?;
        let class = self.class(name.trim())?.clone();
        match tech {
            "soap" => {
                let server = self.manager.deploy_soap(class).map_err(|e| e.to_string())?;
                Ok(format!("deployed; WSDL at {}", server.wsdl_url()))
            }
            "corba" => {
                let server = self
                    .manager
                    .deploy_corba(class)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "deployed; IDL at {} / IOR at {}",
                    server.idl_url(),
                    server.ior_url()
                ))
            }
            other => Err(format!("unknown technology {other:?}")),
        }
    }

    fn cmd_instance(&mut self, name: &str) -> Result<String, String> {
        if let Some(s) = self.manager.soap_server(name) {
            s.create_instance().map_err(|e| e.to_string())?;
            return Ok("instance created; call handler active".into());
        }
        if let Some(s) = self.manager.corba_server(name) {
            s.create_instance().map_err(|e| e.to_string())?;
            return Ok("instance created; call handler active".into());
        }
        Err(format!("{name:?} is not deployed"))
    }

    fn cmd_add(&mut self, rest: &str) -> Result<String, String> {
        // add Class m(a:int,b:string)->int [distributed]
        let (class_name, decl) = rest.split_once(' ').ok_or("usage: add <Class> <decl>")?;
        let class = self.class(class_name)?.clone();
        let distributed = decl.trim_end().ends_with("distributed");
        let decl = decl.trim_end().trim_end_matches("distributed").trim();
        let (head, ret) = decl.rsplit_once("->").ok_or("missing -> return type")?;
        let return_ty = parse_type(ret.trim())?;
        let open = head.find('(').ok_or("missing ( in declaration")?;
        let close = head.rfind(')').ok_or("missing ) in declaration")?;
        let method_name = head[..open].trim();
        let mut builder = MethodBuilder::new(method_name, return_ty).distributed(distributed);
        let params_src = head[open + 1..close].trim();
        if !params_src.is_empty() {
            for p in params_src.split(',') {
                let (pname, pty) = p.split_once(':').ok_or("parameter must be name:type")?;
                builder = builder.param(pname.trim(), parse_type(pty.trim())?);
            }
        }
        class.add_method(builder).map_err(|e| e.to_string())?;
        Ok(format!("added {method_name} to {class_name}"))
    }

    fn cmd_body(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.splitn(3, ' ');
        let (class_name, method, src) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let class = self.class(class_name)?.clone();
        let id = class
            .find_method(method)
            .ok_or_else(|| format!("no method {method:?}"))?;
        class.set_body_source(id, src).map_err(|e| e.to_string())?;
        Ok(format!("body of {method} replaced (live)"))
    }

    fn cmd_rename(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [class_name, old, new] = parts[..] else {
            return Err("usage: rename <Class> <old> <new>".into());
        };
        let class = self.class(class_name)?.clone();
        let id = class
            .find_method(old)
            .ok_or_else(|| format!("no method {old:?}"))?;
        class.rename_method(id, new).map_err(|e| e.to_string())?;
        Ok(format!("renamed {old} -> {new} (call sites updated)"))
    }

    fn cmd_add_param(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [class_name, method, decl] = parts[..] else {
            return Err("usage: param+ <Class> <method> <name>:<type>".into());
        };
        let class = self.class(class_name)?.clone();
        let id = class
            .find_method(method)
            .ok_or_else(|| format!("no method {method:?}"))?;
        let (pname, pty) = decl.split_once(':').ok_or("parameter must be name:type")?;
        class
            .add_param(id, pname, parse_type(pty)?)
            .map_err(|e| e.to_string())?;
        Ok(format!("added parameter {pname} to {method}"))
    }

    fn cmd_remove(&mut self, rest: &str) -> Result<String, String> {
        let (class_name, method) = rest.split_once(' ').ok_or("usage: remove <Class> <m>")?;
        let class = self.class(class_name)?.clone();
        let id = class
            .find_method(method.trim())
            .ok_or_else(|| format!("no method {method:?}"))?;
        class.remove_method(id).map_err(|e| e.to_string())?;
        Ok(format!("removed {method}"))
    }

    fn cmd_distributed(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [class_name, method, state] = parts[..] else {
            return Err("usage: distributed <Class> <m> on|off".into());
        };
        let class = self.class(class_name)?.clone();
        let id = class
            .find_method(method)
            .ok_or_else(|| format!("no method {method:?}"))?;
        class
            .set_distributed(id, state == "on")
            .map_err(|e| e.to_string())?;
        Ok(format!("distributed modifier of {method}: {state}"))
    }

    fn cmd_history(&mut self, name: &str, undo: bool) -> Result<String, String> {
        let class = self.class(name)?.clone();
        if undo {
            class.undo().map_err(|e| e.to_string())?;
            Ok("undone".into())
        } else {
            class.redo().map_err(|e| e.to_string())?;
            Ok("redone".into())
        }
    }

    fn cmd_state(&mut self, name: &str) -> Result<String, String> {
        let instance = self
            .manager
            .soap_server(name)
            .and_then(|s| s.instance())
            .or_else(|| self.manager.corba_server(name).and_then(|s| s.instance()))
            .ok_or_else(|| format!("{name:?} has no live instance"))?;
        let fields = instance.fields_snapshot();
        if fields.is_empty() {
            return Ok("no fields".into());
        }
        Ok(fields
            .iter()
            .map(|(n, v)| format!("{n} = {v}"))
            .collect::<Vec<_>>()
            .join("\n"))
    }

    fn cmd_export(&mut self, name: &str) -> Result<String, String> {
        // §7: convert the dynamic SDE server into a static one. The
        // exported server lives for the rest of the session.
        let class = self.class(name)?.clone();
        let instance = self
            .manager
            .soap_server(name)
            .and_then(|s| s.instance())
            .or_else(|| self.manager.corba_server(name).and_then(|s| s.instance()))
            .ok_or_else(|| format!("{name:?} has no live instance to export"))?;
        let was_corba = self.manager.corba_server(name).is_some();
        self.manager.undeploy(name).map_err(|e| e.to_string())?;
        self.stubs.retain(|(n, _)| n != name);
        if was_corba {
            let server =
                live_rmi_export_corba(&class, &instance, &format!("mem://exported-{name}"))?;
            let ior = server.ior().to_ior_string();
            std::mem::forget(server); // keep serving for the session
            Ok(format!("exported as a static CORBA server; IOR:\n{ior}"))
        } else {
            let server =
                live_rmi_export_soap(&class, &instance, &format!("mem://exported-{name}"))?;
            let endpoint = server.endpoint().to_string();
            std::mem::forget(server);
            Ok(format!("exported as a static SOAP server at {endpoint}"))
        }
    }

    fn cmd_publish(&mut self, name: &str) -> Result<String, String> {
        self.manager
            .force_publish(name)
            .map_err(|e| e.to_string())?;
        self.publisher_sync(name);
        Ok("published".into())
    }

    fn cmd_timeout(&mut self, rest: &str) -> Result<String, String> {
        let (name, millis) = rest.split_once(' ').ok_or("usage: timeout <Class> <ms>")?;
        let millis: u64 = millis.trim().parse().map_err(|_| "bad milliseconds")?;
        self.manager
            .set_timeout(name, Duration::from_millis(millis))
            .map_err(|e| e.to_string())?;
        Ok(format!("stable timeout of {name} set to {millis}ms"))
    }

    fn cmd_switch(&mut self, name: &str) -> Result<String, String> {
        let tech = self
            .manager
            .switch_technology(name)
            .map_err(|e| e.to_string())?;
        self.publisher_sync(name);
        // Old stubs point at the retired endpoint.
        self.stubs.retain(|(n, _)| n != name);
        Ok(format!(
            "now serving {name} over {tech} (stub dropped; reconnect)"
        ))
    }

    fn cmd_connect(&mut self, name: &str) -> Result<String, String> {
        self.publisher_sync(name);
        let stub = if let Some(s) = self.manager.soap_server(name) {
            self.env
                .connect_soap(s.wsdl_url())
                .map_err(|e| e.to_string())?
        } else if let Some(s) = self.manager.corba_server(name) {
            self.env
                .connect_corba(s.idl_url(), s.ior_url())
                .map_err(|e| e.to_string())?
        } else {
            return Err(format!("{name:?} is not deployed"));
        };
        self.stubs.retain(|(n, _)| n != name);
        self.stubs.push((name.to_string(), stub));
        Ok(format!(
            "connected; interface view v{}",
            self.stub(name)?.interface_version()
        ))
    }

    fn cmd_ops(&mut self, name: &str) -> Result<String, String> {
        let stub = self.stub(name)?;
        let mut out = format!("interface view v{}:\n", stub.interface_version());
        for op in stub.operations() {
            let params = op
                .params
                .iter()
                .map(|(n, t)| format!("{t} {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  {} {}({})", op.return_ty, op.name, params);
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_call(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.splitn(3, ' ');
        let class_name = parts.next().unwrap_or("");
        let method = parts.next().ok_or("usage: call <Class> <m> [args]")?;
        let args = parse_args(parts.next().unwrap_or(""))?;
        let stub = self.stub(class_name)?.clone();
        match self.env.call(&stub, method, &args) {
            Ok(v) => Ok(format!("=> {v}")),
            Err(CallError::StaleMethod { method }) => Ok(format!(
                "Non existent Method: {method} — interface refreshed to v{} \
                 (see: ops {class_name} / debugger)",
                stub.interface_version()
            )),
            Err(other) => Err(other.to_string()),
        }
    }

    fn cmd_debugger(&self) -> String {
        let entries = self.env.debugger().entries();
        if entries.is_empty() {
            return "debugger: no caught exceptions".into();
        }
        entries
            .iter()
            .enumerate()
            .map(|(i, e)| format!("[{i}] {} in {:?}", e.message, e.method))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn cmd_again(&mut self, rest: &str) -> Result<String, String> {
        let index: usize = rest.trim().parse().map_err(|_| "usage: again <index>")?;
        match self.env.debugger().try_again(index) {
            Ok(v) => Ok(format!("=> {v}")),
            Err(e) => Err(e.to_string()),
        }
    }

    fn cmd_replycache(&mut self, name: &str) -> Result<String, String> {
        let stats = if let Some(s) = self.manager.soap_server(name) {
            s.reply_cache_stats()
        } else if let Some(s) = self.manager.corba_server(name) {
            s.reply_cache_stats()
        } else {
            return Err(format!("{name:?} is not deployed"));
        };
        Ok(format!(
            "reply cache of {name}: {} entrie(s), {} in flight, {} stored, {} duplicate(s) suppressed, {} evicted",
            stats.entries, stats.in_flight, stats.stores, stats.hits, stats.evictions
        ))
    }

    /// Simulates a server-process crash: every managed server (and the
    /// in-memory document store) is torn down without warning. The WAL
    /// on disk survives — that is the point.
    fn cmd_crash(&mut self) -> Result<String, String> {
        if self.down {
            return Err("already crashed (use: restart)".into());
        }
        self.crashed_servers = self.manager.managed();
        self.manager.shutdown();
        self.stubs.clear();
        self.down = true;
        Ok(format!(
            "server process crashed; {} deployment(s) lost, WAL retained",
            self.crashed_servers.len()
        ))
    }

    /// Restarts the manager at the same interface authority. WAL replay
    /// floors every redeployed class's interface version at its
    /// pre-crash value, so clients holding old documents reconverge.
    fn cmd_restart(&mut self) -> Result<String, String> {
        if !self.down {
            return Err("nothing to restart (use: crash first)".into());
        }
        self.manager = SdeManager::with_interface_addr(self.config.clone(), &self.interface_addr)
            .map_err(|e| e.to_string())?;
        self.down = false;
        let mut out = format!("restarted at {}", self.interface_addr);
        for (name, tech) in std::mem::take(&mut self.crashed_servers) {
            let class = self.class(&name)?.clone();
            match tech {
                Technology::Soap => {
                    self.manager.deploy_soap(class).map_err(|e| e.to_string())?;
                }
                Technology::Corba => {
                    self.manager
                        .deploy_corba(class)
                        .map_err(|e| e.to_string())?;
                }
            }
            self.publisher_sync(&name);
            let version = self.class(&name)?.interface_version();
            let _ = write!(
                out,
                "\n  {name} [{tech}] redeployed at interface v{version}"
            );
        }
        out.push_str("\n(instances are not restored: use `instance <Class>`)");
        Ok(out)
    }
}

impl Repl {
    /// The `chaos` command: program the transport fault injector.
    fn cmd_chaos(&mut self, rest: &str) -> Result<String, String> {
        const USAGE: &str = "usage: chaos [off | seed <n> | <endpoint> \
                             refuse|delay:<ms>|truncate:<n>|corrupt:<n>|disconnect:<n>|blackhole\
                             |drop_reply [p]]";
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            [] | ["status"] => Ok(httpd::fault::status()),
            ["off"] => {
                httpd::fault::clear();
                self.chaos_rules.clear();
                Ok("chaos off".into())
            }
            ["seed", n] => {
                self.chaos_seed = n.parse().map_err(|_| format!("bad seed {n:?}"))?;
                self.install_chaos();
                Ok(format!("chaos seed {}", self.chaos_seed))
            }
            [endpoint, fault] | [endpoint, fault, _] => {
                let p = match parts.get(2) {
                    Some(raw) => {
                        let p: f64 = raw
                            .parse()
                            .map_err(|_| format!("bad probability {raw:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("probability {p} outside [0, 1]"));
                        }
                        p
                    }
                    None => 1.0,
                };
                // 'all' (or '*') matches every endpoint.
                let ep = match *endpoint {
                    "all" | "*" => "",
                    other => other,
                };
                let (kind, param) = match fault.split_once(':') {
                    Some((k, v)) => {
                        let v = v
                            .parse::<u64>()
                            .map_err(|_| format!("bad {k} value {v:?}"))?;
                        (k, Some(v))
                    }
                    None => (*fault, None),
                };
                let rule = match (kind, param) {
                    ("refuse", None) => httpd::FaultRule::refuse(ep, p),
                    ("delay", Some(ms)) => httpd::FaultRule::delay(
                        ep,
                        p,
                        Duration::from_millis(ms),
                        Duration::from_millis(ms / 2),
                    ),
                    ("truncate", Some(n)) => httpd::FaultRule::truncate(ep, p, n as usize),
                    ("corrupt", Some(n)) => httpd::FaultRule::corrupt(ep, p, n as usize),
                    ("disconnect", Some(n)) => httpd::FaultRule::disconnect(ep, p, n as usize),
                    ("blackhole", None) => httpd::FaultRule::blackhole(ep, p),
                    // drop_reply only makes sense where the server has
                    // already executed — an accept-side rule.
                    ("drop_reply", None) => httpd::FaultRule::drop_reply(ep, p).on_accept(),
                    _ => return Err(USAGE.into()),
                };
                self.chaos_rules.push(rule);
                self.install_chaos();
                Ok(httpd::fault::status())
            }
            _ => Err(USAGE.into()),
        }
    }

    fn install_chaos(&self) {
        let mut plan = httpd::FaultPlan::seeded(self.chaos_seed);
        for rule in &self.chaos_rules {
            plan = plan.rule(rule.clone());
        }
        plan.install();
    }
}

impl Repl {
    /// The `shards` command: drive a live sharded-router demo fleet.
    fn cmd_shards(&mut self, rest: &str) -> Result<String, String> {
        const USAGE: &str =
            "usage: shards [kill <n> | call <Class> | move <Class> <n> | drain <n> | off]";
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            [] | ["status"] => {
                self.ensure_shard_demo()?;
                Ok(self.render_shards())
            }
            ["move", class, n] => {
                self.ensure_shard_demo()?;
                let n: usize = n.parse().map_err(|_| format!("bad shard {n:?}"))?;
                let demo = self.shard_demo.as_ref().expect("demo just ensured");
                if !demo.router.assignments().iter().any(|(c, _)| c == class) {
                    return Err(format!("no demo class {class:?} (see: shards)"));
                }
                let ev = demo
                    .router
                    .move_class(class, n)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "{class} migrated shard {} -> {} with zero failed calls\n  \
                     catchup {:.1}ms + drain {:.1}ms + handoff {:.1}ms = {:.1}ms \
                     ({} calls parked, {} WAL records streamed)\n\n{}",
                    ev.from_shard,
                    ev.to_shard,
                    ev.catchup_ms,
                    ev.drain_ms,
                    ev.handoff_ms,
                    ev.total_ms,
                    ev.parked_calls,
                    ev.wal_records,
                    self.render_shards()
                ))
            }
            ["drain", n] => {
                self.ensure_shard_demo()?;
                let n: usize = n.parse().map_err(|_| format!("bad shard {n:?}"))?;
                let demo = self.shard_demo.as_ref().expect("demo just ensured");
                let events = demo.router.drain_shard(n).map_err(|e| e.to_string())?;
                let mut out = format!("shard {n} drained: {} class(es) migrated\n", events.len());
                for ev in &events {
                    let _ = writeln!(
                        out,
                        "  {} -> shard {} in {:.1}ms (drain {:.1}ms)",
                        ev.class, ev.to_shard, ev.total_ms, ev.drain_ms
                    );
                }
                out.push('\n');
                out.push_str(&self.render_shards());
                Ok(out)
            }
            ["kill", n] => {
                self.ensure_shard_demo()?;
                let n: usize = n.parse().map_err(|_| format!("bad shard {n:?}"))?;
                let demo = self.shard_demo.as_ref().expect("demo just ensured");
                let status = demo.router.status();
                let Some(shard) = status.get(n) else {
                    return Err(format!("no shard {n} (fleet has {})", status.len()));
                };
                if !shard.alive {
                    return Err(format!("shard {n} is already down"));
                }
                let before = shard.generation;
                demo.router.kill_shard(n);
                // The health loop detects the death on its own — no
                // client traffic needed — so just wait for the event.
                let deadline = Instant::now() + Duration::from_secs(10);
                let promoted = loop {
                    match demo.router.last_failover() {
                        Some(ev) if ev.shard == n && ev.generation > before => break ev,
                        _ if Instant::now() >= deadline => {
                            return Err("failover did not complete within 10s".into());
                        }
                        _ => std::thread::sleep(Duration::from_millis(10)),
                    }
                };
                demo.router.wait_converged(Duration::from_secs(5));
                Ok(format!(
                    "shard {n} killed; WAL follower promoted to generation {}\n  \
                     detect {:.1}ms + replay {:.1}ms + republish {:.1}ms = {:.1}ms\n  \
                     republished: {}\n\n{}",
                    promoted.generation,
                    promoted.detect_ms,
                    promoted.replay_ms,
                    promoted.republish_ms,
                    promoted.total_ms,
                    promoted.classes.join(", "),
                    self.render_shards()
                ))
            }
            ["call", class] => {
                self.ensure_shard_demo()?;
                let demo = self.shard_demo.as_ref().expect("demo just ensured");
                if !demo.router.assignments().iter().any(|(c, _)| c == class) {
                    return Err(format!("no demo class {class:?} (see: shards)"));
                }
                let stub = self
                    .env
                    .connect_soap(&demo.router.wsdl_url(class))
                    .map_err(|e| e.to_string())?;
                let value = self
                    .env
                    .call(&stub, "bump", &[])
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "{class}.bump() => {value} (via front tier, shard {})",
                    demo.router.shard_of(class)
                ))
            }
            ["off"] => match self.shard_demo.take() {
                Some(demo) => {
                    demo.router.shutdown();
                    let _ = std::fs::remove_dir_all(&demo.wal_root);
                    Ok("shard demo stopped".into())
                }
                None => Err("no shard demo running (use: shards)".into()),
            },
            _ => Err(USAGE.into()),
        }
    }

    /// Builds the demo fleet on first use: 3 shards, one counter class
    /// homed on each, WAL replication on, mem transport.
    fn ensure_shard_demo(&mut self) -> Result<(), String> {
        if self.shard_demo.is_some() {
            return Ok(());
        }
        static DEMO: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let demo = DEMO.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tag = format!("repl-{}-{demo}", std::process::id());
        let wal_root = std::env::temp_dir().join(format!("sde-repl-shards-{tag}"));
        let _ = std::fs::remove_dir_all(&wal_root);
        let cfg = RouterConfig::new(3, TransportKind::Mem, &wal_root, &tag);
        // Scan names until the ring homes one class on every shard, so
        // the demo visibly exercises the whole fleet.
        let ring = HashRing::new(cfg.shards, cfg.vnodes);
        let mut covered = vec![false; cfg.shards];
        let mut specs = Vec::new();
        for i in 0.. {
            let name = format!("Counter{i}");
            let shard = ring.shard_for(&name);
            if !covered[shard] {
                covered[shard] = true;
                specs.push(ClassSpec::soap(
                    name.clone(),
                    format!(
                        "class {name} {{ field int n; distributed int bump() {{ \
                         this.n = this.n + 1; return this.n; }} }}"
                    ),
                ));
            }
            if covered.iter().all(|&c| c) {
                break;
            }
        }
        let router = Router::start(cfg, specs).map_err(|e| e.to_string())?;
        if !router.wait_converged(Duration::from_secs(10)) {
            router.shutdown();
            return Err("demo fleet failed to converge".into());
        }
        self.shard_demo = Some(ShardDemo { router, wal_root });
        Ok(())
    }

    fn render_shards(&self) -> String {
        let demo = self.shard_demo.as_ref().expect("render with demo running");
        let mut out = format!("front: {}\nring assignments:\n", demo.router.front_url());
        let mut assignments = demo.router.assignments();
        assignments.sort();
        for (class, shard) in assignments {
            let _ = writeln!(out, "  {class} -> shard {shard}");
        }
        out.push_str("shard  gen  state  wal leader/follower  lag  replication  classes\n");
        for s in demo.router.status() {
            let _ = writeln!(
                out,
                "  {:<4} {:<4} {:<6} {:>10}/{:<8} {:>3}  {:<11}  {}",
                s.id,
                s.generation,
                if s.alive { "up" } else { "down" },
                s.leader_records,
                s.follower_records,
                s.lag_records,
                if s.follower_connected {
                    "connected"
                } else {
                    "detached"
                },
                s.classes.join(", ")
            );
        }
        match demo.router.last_failover() {
            Some(ev) => {
                let _ = write!(
                    out,
                    "last failover: shard {} -> generation {} in {:.1}ms \
                     (detect {:.1} + replay {:.1} + republish {:.1})",
                    ev.shard,
                    ev.generation,
                    ev.total_ms,
                    ev.detect_ms,
                    ev.replay_ms,
                    ev.republish_ms
                );
            }
            None => out.push_str("last failover: none"),
        }
        if let Some(ev) = demo.router.last_migration() {
            let _ = write!(
                out,
                "\nlast migration: {} shard {} -> {} in {:.1}ms \
                 (catchup {:.1} + drain {:.1} + handoff {:.1})",
                ev.class,
                ev.from_shard,
                ev.to_shard,
                ev.total_ms,
                ev.catchup_ms,
                ev.drain_ms,
                ev.handoff_ms
            );
        }
        out
    }
}

fn cmd_stats(filter: &str) -> String {
    // The reactor summary line rides along with the metric dump (and
    // through the filter) so `stats reactor` answers "how loaded is
    // the event loop" in one line.
    let mut text = obs::registry().snapshot().render_prometheus();
    text.push_str(&reactor::metrics_summary());
    text.push('\n');
    if filter.is_empty() {
        return text.trim_end().to_string();
    }
    let matching: Vec<&str> = text.lines().filter(|l| l.contains(filter)).collect();
    if matching.is_empty() {
        format!("stats: no metrics matching {filter:?}")
    } else {
        matching.join("\n")
    }
}

fn cmd_trace(rest: &str) -> Result<String, String> {
    // `trace show <prefix>` renders a retained distributed trace as a
    // waterfall; `trace show` lists what the tail sampler kept.
    if let Some(arg) = rest.strip_prefix("show") {
        let prefix = arg.trim();
        if prefix.is_empty() {
            let retained = obs::tracectx::store().retained();
            if retained.is_empty() {
                return Ok("trace show: no retained traces (tail sampler kept none yet)".into());
            }
            return Ok(retained
                .iter()
                .map(|t| {
                    format!(
                        "{} root={} spans={} {}us [{}]",
                        t.trace,
                        t.root().map(|s| s.name).unwrap_or("?"),
                        t.spans.len(),
                        t.root_duration_us,
                        t.reason
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"));
        }
        return match obs::tracectx::store().find(prefix) {
            Some(t) => Ok(obs::tracectx::render_waterfall(&t)),
            None => Err(format!("trace show: no retained trace matches {prefix:?}")),
        };
    }
    let n = if rest.is_empty() {
        20
    } else {
        rest.parse()
            .map_err(|_| format!("usage: trace [n] | trace show [prefix] (got {rest:?})"))?
    };
    let events = obs::trace::recent(n);
    if events.is_empty() {
        return Ok("trace: no events recorded".into());
    }
    Ok(events
        .iter()
        .map(|e| {
            format!(
                "[{}] +{:>8}us {} {} {}",
                e.seq, e.at_micros, e.target, e.name, e.detail
            )
        })
        .collect::<Vec<_>>()
        .join("\n"))
}

fn cmd_events(rest: &str) -> String {
    let class = (!rest.is_empty()).then_some(rest);
    let events = obs::events::query(class);
    if events.is_empty() {
        return "events: no version events recorded".into();
    }
    events
        .iter()
        .map(|e| {
            format!(
                "[{}] +{:>8}us {} {} v{}",
                e.seq,
                e.at_micros,
                e.class,
                e.kind.as_str(),
                e.version
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn cmd_verbose(rest: &str) -> Result<String, String> {
    match rest {
        "on" => {
            obs::trace::set_verbose(true);
            Ok("verbose tracing on".into())
        }
        "off" => {
            obs::trace::set_verbose(false);
            Ok("verbose tracing off".into())
        }
        _ => Err("usage: verbose on|off".into()),
    }
}

fn live_rmi_export_soap(
    class: &ClassHandle,
    instance: &Arc<jpie::Instance>,
    addr: &str,
) -> Result<baseline::StaticSoapServer, String> {
    baseline::export_soap(class, instance, addr).map_err(|e| e.to_string())
}

fn live_rmi_export_corba(
    class: &ClassHandle,
    instance: &Arc<jpie::Instance>,
    addr: &str,
) -> Result<baseline::StaticCorbaServer, String> {
    baseline::export_corba(class, instance, addr).map_err(|e| e.to_string())
}

fn parse_type(s: &str) -> Result<TypeDesc, String> {
    Ok(match s {
        "void" => TypeDesc::Void,
        "boolean" | "bool" => TypeDesc::Bool,
        "int" => TypeDesc::Int,
        "long" => TypeDesc::Long,
        "float" => TypeDesc::Float,
        "double" => TypeDesc::Double,
        "char" => TypeDesc::Char,
        "string" => TypeDesc::Str,
        other => {
            if let Some(inner) = other.strip_prefix("seq<").and_then(|r| r.strip_suffix('>')) {
                TypeDesc::Seq(Box::new(parse_type(inner)?))
            } else if other.chars().next().is_some_and(|c| c.is_uppercase()) {
                TypeDesc::Named(other.to_string())
            } else {
                return Err(format!("unknown type {other:?}"));
            }
        }
    })
}

fn parse_args(s: &str) -> Result<Vec<Value>, String> {
    let mut args = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        if rest.starts_with('"') {
            let end = rest[1..].find('"').ok_or("unterminated string argument")?;
            args.push(Value::Str(rest[1..1 + end].to_string()));
            rest = rest[2 + end..].trim_start();
            continue;
        }
        let token_end = rest.find(' ').unwrap_or(rest.len());
        let token = &rest[..token_end];
        rest = rest[token_end..].trim_start();
        let value = if token == "true" {
            Value::Bool(true)
        } else if token == "false" {
            Value::Bool(false)
        } else if token == "null" {
            Value::Null
        } else if let Some(num) = token.strip_suffix('L') {
            Value::Long(num.parse().map_err(|_| format!("bad long {token:?}"))?)
        } else if token.contains('.') {
            Value::Double(token.parse().map_err(|_| format!("bad double {token:?}"))?)
        } else {
            Value::Int(
                token
                    .parse()
                    .map_err(|_| format!("bad argument {token:?}"))?,
            )
        };
        args.push(value);
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(repl: &mut Repl, cmd: &str) -> String {
        repl.execute(cmd).expect("not quit")
    }

    #[test]
    fn full_session_drives_the_whole_stack() {
        let mut repl = Repl::new().unwrap();
        run(&mut repl, "new Calc");
        assert!(run(&mut repl, "add Calc add(a:int,b:int)->int distributed").contains("added"));
        run(&mut repl, "body Calc add return a + b;");
        assert!(run(&mut repl, "deploy soap Calc").contains("WSDL"));
        assert!(run(&mut repl, "instance Calc").contains("active"));
        run(&mut repl, "publish Calc");
        assert!(run(&mut repl, "connect Calc").contains("interface view"));
        assert_eq!(run(&mut repl, "call Calc add 20 22"), "=> 42");

        // Live rename: the next call shows the protocol in action.
        run(&mut repl, "rename Calc add plus");
        let out = run(&mut repl, "call Calc add 1 2");
        assert!(out.contains("Non existent Method"), "{out}");
        assert!(run(&mut repl, "ops Calc").contains("plus"));
        assert_eq!(run(&mut repl, "call Calc plus 1 2"), "=> 3");

        // Debugger has the failed call; undo on the server side, then
        // try-again succeeds.
        assert!(run(&mut repl, "debugger").contains("[0]"));
        run(&mut repl, "undo Calc");
        run(&mut repl, "publish Calc");
        assert_eq!(run(&mut repl, "again 0"), "=> 3");

        // Manager surface.
        assert!(run(&mut repl, "servers").contains("Calc [SOAP]"));
        assert!(run(&mut repl, "doc Calc").contains("wsdl:definitions"));
        assert!(run(&mut repl, "show Calc").contains("class Calc"));
        assert!(run(&mut repl, "timeout Calc 50").contains("50ms"));

        // Technology interchange.
        assert!(run(&mut repl, "switch Calc").contains("CORBA"));
        run(&mut repl, "connect Calc");
        assert_eq!(run(&mut repl, "call Calc add 4 4"), "=> 8");

        assert!(repl.execute("quit").is_none());
    }

    #[test]
    fn shards_command_drives_a_live_failover() {
        let mut repl = Repl::new().unwrap();
        let out = run(&mut repl, "shards");
        assert!(out.contains("ring assignments:"), "{out}");
        assert!(out.contains("-> shard 2"), "{out}");
        assert!(out.contains("last failover: none"), "{out}");

        let called = run(&mut repl, "shards call Counter0");
        assert!(called.contains("Counter0.bump() => 1"), "{called}");

        let killed = run(&mut repl, "shards kill 1");
        assert!(killed.contains("WAL follower promoted"), "{killed}");
        assert!(killed.contains("last failover: shard 1"), "{killed}");
        // The fleet is whole again: the promoted shard reports up.
        let demo = repl.shard_demo.as_ref().unwrap();
        assert!(demo.router.status().iter().all(|s| s.alive));

        assert!(run(&mut repl, "shards kill 9").contains("error"));
        assert_eq!(run(&mut repl, "shards off"), "shard demo stopped");
        assert!(run(&mut repl, "shards off").contains("error"));
    }

    #[test]
    fn shards_command_drives_a_planned_migration_and_drain() {
        let mut repl = Repl::new().unwrap();
        let out = run(&mut repl, "shards");
        assert!(out.contains("ring assignments:"), "{out}");

        // Counter0's home shard, read from the live assignment table.
        let home = repl
            .shard_demo
            .as_ref()
            .unwrap()
            .router
            .shard_of("Counter0");
        let target = (home + 1) % 3;

        assert!(run(&mut repl, "shards call Counter0").contains("=> 1"));
        let moved = run(&mut repl, &format!("shards move Counter0 {target}"));
        assert!(moved.contains("zero failed calls"), "{moved}");
        assert!(moved.contains("last migration: Counter0"), "{moved}");
        // The instance moved with its state: the counter keeps going.
        let called = run(&mut repl, "shards call Counter0");
        assert!(called.contains("=> 2"), "state must survive: {called}");
        assert!(called.contains(&format!("shard {target}")), "{called}");

        assert!(run(&mut repl, "shards move Counter0 9").contains("error"));
        assert!(run(&mut repl, "shards move Nope 0").contains("error"));

        // Drain the target: every class it serves (including the one we
        // just moved there) migrates off, and the shard reports empty.
        let drained = run(&mut repl, &format!("shards drain {target}"));
        assert!(drained.contains("drained"), "{drained}");
        let demo = repl.shard_demo.as_ref().unwrap();
        assert!(demo.router.status()[target].classes.is_empty());
        assert!(demo.router.status().iter().all(|s| s.alive));
        let called = run(&mut repl, "shards call Counter0");
        assert!(called.contains("=> 3"), "{called}");

        assert_eq!(run(&mut repl, "shards off"), "shard demo stopped");
    }

    #[test]
    fn chaos_command_programs_the_injector() {
        let mut repl = Repl::new().unwrap();
        assert!(run(&mut repl, "chaos seed 7").contains("seed 7"));
        let out = run(&mut repl, "chaos mem://chaos-cmd-test refuse 0.5");
        assert!(out.contains("refuse"), "{out}");
        assert!(out.contains("seed=7"), "{out}");
        let out = run(&mut repl, "chaos mem://chaos-cmd-test delay:5 0.25");
        assert!(out.contains("delay"), "{out}");
        assert!(httpd::fault::active());
        // Bad input is rejected without changing the plan.
        assert!(run(&mut repl, "chaos mem://x explode").contains("error"));
        assert!(run(&mut repl, "chaos mem://x refuse 1.5").contains("error"));
        assert_eq!(run(&mut repl, "chaos off"), "chaos off");
        assert!(!httpd::fault::active());
    }

    #[test]
    fn state_and_export_commands() {
        let mut repl = Repl::new().unwrap();
        run(
            &mut repl,
            "load class Counter { field int n; distributed int bump() { this.n = this.n + 1; return this.n; } }",
        );
        run(&mut repl, "deploy soap Counter");
        run(&mut repl, "instance Counter");
        run(&mut repl, "publish Counter");
        run(&mut repl, "connect Counter");
        assert_eq!(run(&mut repl, "call Counter bump"), "=> 1");
        assert_eq!(run(&mut repl, "call Counter bump"), "=> 2");
        assert_eq!(run(&mut repl, "state Counter"), "n = 2");

        let out = run(&mut repl, "export Counter");
        assert!(out.contains("static SOAP server at"), "{out}");
        // After export the class is no longer managed by SDE.
        assert!(run(&mut repl, "doc Counter").contains("error"));
        // The exported static endpoint serves with the preserved state.
        let endpoint = out.rsplit(' ').next().unwrap().trim();
        let ops_class = repl.class("Counter").unwrap().clone();
        let wsdl = soap::WsdlDocument::from_signatures(
            "Counter",
            endpoint.to_string(),
            &ops_class.distributed_signatures(),
            0,
        );
        let mut client = baseline::StaticSoapClient::from_wsdl(wsdl).unwrap();
        assert_eq!(client.call("bump", &[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn load_full_class_from_source() {
        let mut repl = Repl::new().unwrap();
        let out = run(
            &mut repl,
            "load class Echo extends SOAPServer { distributed string echo(string s) { return s; } }",
        );
        assert!(out.contains("loaded Echo"), "{out}");
        run(&mut repl, "deploy soap Echo");
        run(&mut repl, "instance Echo");
        run(&mut repl, "publish Echo");
        run(&mut repl, "connect Echo");
        assert_eq!(run(&mut repl, "call Echo echo \"ping\""), "=> ping");
        assert!(run(&mut repl, "load class Echo { }").contains("error"));
        assert!(run(&mut repl, "load not a class").contains("error"));
    }

    #[test]
    fn observability_commands() {
        let mut repl = Repl::new().unwrap();
        run(&mut repl, "new ReplObs");
        run(&mut repl, "add ReplObs add(a:int,b:int)->int distributed");
        run(&mut repl, "body ReplObs add return a + b;");
        run(&mut repl, "deploy soap ReplObs");
        run(&mut repl, "instance ReplObs");
        run(&mut repl, "publish ReplObs");
        run(&mut repl, "connect ReplObs");
        assert_eq!(run(&mut repl, "call ReplObs add 20 22"), "=> 42");

        // stats: full snapshot and filtered view both show the counter
        // the call above incremented.
        let stats = run(&mut repl, "stats");
        assert!(stats.contains("sde_requests_total"), "{stats}");
        // The event-loop summary line rides along with the dump and
        // survives filtering.
        assert!(stats.contains("reactor: shards="), "{stats}");
        let reactor_line = run(&mut repl, "stats reactor:");
        assert!(reactor_line.contains("fds_registered="), "{reactor_line}");
        let filtered = run(&mut repl, "stats ReplObs");
        assert!(
            filtered.contains("sde_requests_total{class=\"ReplObs\"}"),
            "{filtered}"
        );
        assert!(run(&mut repl, "stats no_such_metric_xyz").contains("no metrics"));

        // events: the publication shows up in the version-event log,
        // both unfiltered and filtered by class.
        let events = run(&mut repl, "events ReplObs");
        assert!(events.contains("publication"), "{events}");
        assert!(events.contains("ReplObs"), "{events}");

        // trace: deploy/publish left events in the ring.
        let trace = run(&mut repl, "trace 50");
        assert!(
            trace.contains("deploy") || trace.contains("publish"),
            "{trace}"
        );
        assert!(run(&mut repl, "trace nonsense").contains("error"));

        assert_eq!(run(&mut repl, "verbose on"), "verbose tracing on");
        assert_eq!(run(&mut repl, "verbose off"), "verbose tracing off");
        assert!(run(&mut repl, "verbose maybe").contains("error"));
    }

    #[test]
    fn crash_restart_replays_the_wal() {
        let mut repl = Repl::new().unwrap();
        run(&mut repl, "new Phoenix");
        run(&mut repl, "add Phoenix add(a:int,b:int)->int distributed");
        run(&mut repl, "body Phoenix add return a + b;");
        run(&mut repl, "deploy soap Phoenix");
        run(&mut repl, "instance Phoenix");
        run(&mut repl, "publish Phoenix");
        // Drive the version up, publishing (and WAL-logging) each step.
        run(&mut repl, "add Phoenix sub(a:int,b:int)->int distributed");
        run(&mut repl, "publish Phoenix");
        let pre_crash = repl.class("Phoenix").unwrap().interface_version();
        assert!(pre_crash > 0);

        let out = run(&mut repl, "crash");
        assert!(out.contains("1 deployment(s) lost"), "{out}");
        assert!(run(&mut repl, "crash").contains("error"));
        assert!(run(&mut repl, "call Phoenix add 1 2").contains("down"));
        assert!(run(&mut repl, "servers").contains("down"));

        let out = run(&mut repl, "restart");
        assert!(out.contains("Phoenix [SOAP] redeployed"), "{out}");
        let v: u64 = out
            .split("interface v")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(v >= pre_crash, "restored v{v} < pre-crash v{pre_crash}");
        assert!(run(&mut repl, "restart").contains("error"));

        // The full stack works again after restart.
        let out = run(&mut repl, "instance Phoenix");
        assert!(out.contains("active"), "{out}");
        let out = run(&mut repl, "connect Phoenix");
        assert!(out.contains("interface view"), "{out}");
        assert_eq!(run(&mut repl, "call Phoenix add 20 22"), "=> 42");
        let out = run(&mut repl, "replycache Phoenix");
        assert!(out.contains("1 stored"), "{out}");
        assert!(run(&mut repl, "replycache Ghost").contains("error"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut repl = Repl::new().unwrap();
        assert!(run(&mut repl, "bogus").contains("unknown command"));
        assert!(run(&mut repl, "deploy soap Missing").contains("error"));
        assert!(run(&mut repl, "call Missing m").contains("error"));
        run(&mut repl, "new X");
        assert!(run(&mut repl, "new X").contains("error"));
        assert!(run(&mut repl, "add X broken").contains("error"));
        assert!(run(&mut repl, "").is_empty());
        assert!(run(&mut repl, "# comment").is_empty());
    }

    #[test]
    fn arg_parsing() {
        assert_eq!(
            parse_args("1 2L 3.5 true \"two words\" null").unwrap(),
            vec![
                Value::Int(1),
                Value::Long(2),
                Value::Double(3.5),
                Value::Bool(true),
                Value::Str("two words".into()),
                Value::Null,
            ]
        );
        assert!(parse_args("\"unterminated").is_err());
        assert!(parse_args("12x").is_err());
    }

    #[test]
    fn type_parsing() {
        assert_eq!(parse_type("int").unwrap(), TypeDesc::Int);
        assert_eq!(
            parse_type("seq<string>").unwrap(),
            TypeDesc::Seq(Box::new(TypeDesc::Str))
        );
        assert_eq!(
            parse_type("Message").unwrap(),
            TypeDesc::Named("Message".into())
        );
        assert!(parse_type("wat").is_err());
    }
}
