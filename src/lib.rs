//! # live-rmi — live development of SOAP and CORBA servers
//!
//! Umbrella crate for the reproduction of *"Supporting Live Development of
//! SOAP and CORBA Servers"* (Pallemulle, Goldman & Morgan, WUCSE-2004-75 /
//! ICDCS 2005). It re-exports every subsystem so examples and integration
//! tests can use a single dependency:
//!
//! * [`jpie`] — the dynamic-class live-programming runtime,
//! * [`xmlrt`] / [`httpd`] — XML and HTTP substrates,
//! * [`soap`] / [`corba`] — the two RMI technology stacks,
//! * [`sde`] — the Server Development Environment middleware (the paper's
//!   contribution),
//! * [`cde`] — the Client Development Environment,
//! * [`router`] — the sharded authority router: consistent-hash front
//!   tier with WAL-replicated followers and live shard failover,
//! * [`baseline`] — static Axis/OpenORB-style comparators.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub mod repl;

pub use baseline;
pub use cde;
pub use corba;
pub use httpd;
pub use jpie;
pub use router;
pub use sde;
pub use soap;
pub use xmlrt;
