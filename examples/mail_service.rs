//! The paper's motivating application (§8): "a medium-sized mail service
//! application in JPie using CDE and SDE" — here served over CORBA, with
//! structured `Message` values crossing the wire and a new feature
//! (search) added to the running server mid-session.
//!
//! Run with: `cargo run --example mail_service`

use jpie::expr::{Builtin, Expr, Stmt};
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{SdeConfig, SdeManager, SdeServerGateway};

fn message_ty() -> TypeDesc {
    TypeDesc::Named("Message".into())
}

fn build_mail_class() -> Result<ClassHandle, jpie::JpieError> {
    let class = ClassHandle::new("MailService");
    // The mailbox lives in an instance field — state survives live edits.
    class.add_field("inbox", TypeDesc::Seq(Box::new(message_ty())))?;

    // send(from, to, subject, body) -> int (new mailbox size)
    class.add_method(
        MethodBuilder::new("send", TypeDesc::Int)
            .param("from", TypeDesc::Str)
            .param("to", TypeDesc::Str)
            .param("subject", TypeDesc::Str)
            .param("body", TypeDesc::Str)
            .distributed(true)
            .body_block(vec![
                Stmt::SetField(
                    "inbox".into(),
                    Expr::Call {
                        builtin: Builtin::Push,
                        args: vec![
                            Expr::field("inbox"),
                            Expr::MakeStruct {
                                type_name: "Message".into(),
                                fields: vec![
                                    ("from".into(), Expr::param("from")),
                                    ("to".into(), Expr::param("to")),
                                    ("subject".into(), Expr::param("subject")),
                                    ("body".into(), Expr::param("body")),
                                ],
                            },
                        ],
                    },
                ),
                Stmt::Return(Some(Expr::Call {
                    builtin: Builtin::Len,
                    args: vec![Expr::field("inbox")],
                })),
            ]),
    )?;

    // inbox() -> Message[]
    class.add_method(
        MethodBuilder::new("inbox", TypeDesc::Seq(Box::new(message_ty())))
            .distributed(true)
            .body_expr(Expr::field("inbox")),
    )?;

    // count() -> int
    class.add_method(
        MethodBuilder::new("count", TypeDesc::Int)
            .distributed(true)
            .body_expr(Expr::Call {
                builtin: Builtin::Len,
                args: vec![Expr::field("inbox")],
            }),
    )?;
    Ok(class)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let manager = SdeManager::new(SdeConfig::default())?;
    let class = build_mail_class()?;
    let server = manager.deploy_corba(class.clone())?;
    server.create_instance()?;
    server.publisher().force_publish();
    server.publisher().ensure_current();

    println!("CORBA-IDL published at {}", server.idl_url());
    println!("IOR       published at {}", server.ior_url());
    println!("--- published IDL ---");
    println!(
        "{}",
        manager
            .interface_document("MailService")
            .expect("idl published")
    );

    // A CDE client compiles the IDL + IOR and starts mailing.
    let env = ClientEnvironment::new();
    let stub = env.connect_corba(server.idl_url(), server.ior_url())?;

    for (from, subject) in [
        ("kjg@cse.wustl.edu", "SDE design review"),
        ("sajeeva@cse.wustl.edu", "CDE/SDE protocol, Fig 8"),
        ("bem2@cec.wustl.edu", "Tomcat comparison numbers"),
    ] {
        let n = env.call(
            &stub,
            "send",
            &[
                Value::Str(from.into()),
                Value::Str("team@cse.wustl.edu".into()),
                Value::Str(subject.into()),
                Value::Str("see attached".into()),
            ],
        )?;
        println!("sent {subject:?}; mailbox now holds {n}");
    }

    let inbox = env.call(&stub, "inbox", &[])?;
    let Value::Seq(_, messages) = &inbox else {
        panic!("inbox should be a sequence");
    };
    println!("inbox has {} messages:", messages.len());
    for m in messages {
        if let Value::Struct(s) = m {
            println!(
                "  from {:<26} subject {:?}",
                s.field("from").unwrap_or(&Value::Null),
                s.field("subject").unwrap_or(&Value::Null)
            );
        }
    }

    // --- Live feature work: add search() to the RUNNING service -------
    class.add_method(
        MethodBuilder::new("search", TypeDesc::Int)
            .param("needle", TypeDesc::Str)
            .distributed(true)
            .body_block(vec![
                Stmt::Let("i".into(), Expr::lit(0)),
                Stmt::Let("hits".into(), Expr::lit(0)),
                Stmt::While {
                    cond: Expr::local("i").lt(Expr::Call {
                        builtin: Builtin::Len,
                        args: vec![Expr::field("inbox")],
                    }),
                    body: vec![
                        Stmt::Let(
                            "m".into(),
                            Expr::Call {
                                builtin: Builtin::Get,
                                args: vec![Expr::field("inbox"), Expr::local("i")],
                            },
                        ),
                        Stmt::If {
                            cond: Expr::Call {
                                builtin: Builtin::Contains,
                                args: vec![
                                    Expr::Call {
                                        builtin: Builtin::Field,
                                        args: vec![Expr::local("m"), Expr::lit("subject")],
                                    },
                                    Expr::param("needle"),
                                ],
                            },
                            then: vec![Stmt::Assign(
                                "hits".into(),
                                Expr::local("hits") + Expr::lit(1),
                            )],
                            otherwise: vec![],
                        },
                        Stmt::Assign("i".into(), Expr::local("i") + Expr::lit(1)),
                    ],
                },
                Stmt::Return(Some(Expr::local("hits"))),
            ]),
    )?;
    // Publish the grown interface and refresh the client's view.
    server.publisher().force_publish();
    server.publisher().ensure_current();
    stub.refresh()?;
    println!(
        "after live edit the client sees operations: {:?}",
        stub.operations()
            .iter()
            .map(|o| o.name.clone())
            .collect::<Vec<_>>()
    );

    let hits = env.call(&stub, "search", &[Value::Str("SDE".into())])?;
    println!("search(\"SDE\") found {hits} message(s)");
    assert_eq!(hits, Value::Int(2), "two subjects mention SDE");

    manager.shutdown();
    Ok(())
}
