//! Observability demo: a live SDE SOAP server over real TCP whose
//! built-in `GET /metrics` endpoint exposes the process-wide registry
//! in Prometheus text format.
//!
//! Run with: `cargo run --example metrics_endpoint`, then from another
//! shell: `curl http://127.0.0.1:<port>/metrics` (the URL is printed).
//! Press Enter (or close stdin) to stop the server.

use std::time::Duration;

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let class = ClassHandle::new("Calc");
    class.add_method(
        MethodBuilder::new("add", TypeDesc::Int)
            .param("a", TypeDesc::Int)
            .param("b", TypeDesc::Int)
            .distributed(true)
            .body_expr(Expr::param("a") + Expr::param("b")),
    )?;

    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Tcp,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(200)),
        wal_dir: None,
    })?;
    let server = manager.deploy_soap(class.clone())?;
    server.create_instance()?;
    server.publisher().ensure_current();

    // A few calls so the counters and latency histograms have samples.
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url())?;
    for i in 0..5 {
        let v = env.call(&stub, "add", &[Value::Int(i), Value::Int(i)])?;
        println!("call {i}: add({i}, {i}) = {v}");
    }

    let endpoint = server.endpoint_url();
    let base = endpoint.trim_end_matches("/Calc");
    println!("SOAP endpoint: {endpoint}");
    println!("metrics at:    {base}/metrics");
    println!("press Enter to stop");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);

    manager.shutdown();
    Ok(())
}
