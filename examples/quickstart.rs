//! Quickstart: deploy a live SOAP server, connect a client, then change
//! the running server and watch the change take effect immediately.
//!
//! Run with: `cargo run --example quickstart`

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{SdeConfig, SdeManager, SdeServerGateway};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The developer writes a dynamic class in "JPie" and marks one
    //    method `distributed` — that is the whole deployment ceremony.
    let class = ClassHandle::new("Greeter");
    let greet = class.add_method(
        MethodBuilder::new("greet", TypeDesc::Str)
            .param("who", TypeDesc::Str)
            .distributed(true)
            .body_expr(Expr::lit("hello, ") + Expr::param("who")),
    )?;

    // 2. SDE detects the server class, creates the call handler and the
    //    WSDL publisher, and publishes the interface automatically.
    let manager = SdeManager::new(SdeConfig::default())?;
    let server = manager.deploy_soap(class.clone())?;
    server.create_instance()?;
    println!("WSDL published at {}", server.wsdl_url());

    // 3. A CDE client connects from the published WSDL and calls.
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url())?;
    let reply = env.call(&stub, "greet", &[Value::Str("world".into())])?;
    println!("server says: {reply}");

    // 4. LIVE development: change the body of the running server — no
    //    redeploy, no restart, and the existing instance picks it up.
    class.set_body_expr(greet, Expr::lit("greetings, ") + Expr::param("who"))?;
    let reply = env.call(&stub, "greet", &[Value::Str("world".into())])?;
    println!("server now says: {reply}");
    assert_eq!(reply, Value::Str("greetings, world".into()));

    manager.shutdown();
    Ok(())
}
