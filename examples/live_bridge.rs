//! The paper's future-work feature (§8): "the ability to interchange the
//! technology being used to communicate between the client and the server
//! while live development and information exchange is taking place."
//!
//! A counter service starts life as a SOAP Web Service, accumulates state,
//! and is then rebound to CORBA *live* — same dynamic class, same live
//! instance, state intact — and back again.
//!
//! Run with: `cargo run --example live_bridge`

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{SdeConfig, SdeManager, SdeServerGateway, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let manager = SdeManager::new(SdeConfig::default())?;

    let class = ClassHandle::new("Counter");
    class.add_field("n", TypeDesc::Int)?;
    class.add_method(
        MethodBuilder::new("increment", TypeDesc::Int)
            .distributed(true)
            .body_block(vec![
                jpie::expr::Stmt::SetField("n".into(), Expr::field("n") + Expr::lit(1)),
                jpie::expr::Stmt::Return(Some(Expr::field("n"))),
            ]),
    )?;

    // Phase 1: SOAP.
    let soap = manager.deploy_soap(class.clone())?;
    soap.create_instance()?;
    soap.publisher().force_publish();
    soap.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let soap_stub = env.connect_soap(soap.wsdl_url())?;
    for _ in 0..3 {
        let n = env.call(&soap_stub, "increment", &[])?;
        println!("[SOAP]  increment -> {n}");
    }

    // Phase 2: live switch to CORBA. Same class, same instance, state
    // preserved; the SOAP endpoint is retired and IDL+IOR published.
    let now = manager.switch_technology("Counter")?;
    assert_eq!(now, Technology::Corba);
    let corba = manager.corba_server("Counter").expect("corba gateway");
    corba.publisher().force_publish();
    corba.publisher().ensure_current();
    let corba_stub = env.connect_corba(corba.idl_url(), corba.ior_url())?;
    for _ in 0..2 {
        let n = env.call(&corba_stub, "increment", &[])?;
        println!("[CORBA] increment -> {n}");
    }
    let n = env.call(&corba_stub, "increment", &[])?;
    assert_eq!(n, Value::Int(6), "count continued across the bridge");

    // Phase 3: and back to SOAP.
    let now = manager.switch_technology("Counter")?;
    assert_eq!(now, Technology::Soap);
    let soap2 = manager.soap_server("Counter").expect("soap gateway");
    soap2.publisher().force_publish();
    soap2.publisher().ensure_current();
    let stub2 = env.connect_soap(soap2.wsdl_url())?;
    let n = env.call(&stub2, "increment", &[])?;
    println!("[SOAP]  increment -> {n} (after round trip through CORBA)");
    assert_eq!(n, Value::Int(7));

    manager.shutdown();
    println!("live technology interchange complete; state survived both switches");
    Ok(())
}
