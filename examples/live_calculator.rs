//! A live, simultaneous client-server development session (paper §6).
//!
//! A calculator server evolves while a client keeps calling it: the
//! method is renamed mid-session, the client's next call draws a
//! "Non existent Method" exception, the JPie debugger surfaces it with
//! the *updated* interface visible (the §6 recency guarantee), and the
//! developer fixes the call and re-executes it with "try again".
//!
//! Run with: `cargo run --example live_calculator`

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::sde::{SdeConfig, SdeManager, SdeServerGateway};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let manager = SdeManager::new(SdeConfig::default())?;

    // --- Server side: a calculator under live development -------------
    let class = ClassHandle::new("Calculator");
    class.add_method(
        MethodBuilder::new("add", TypeDesc::Int)
            .param("a", TypeDesc::Int)
            .param("b", TypeDesc::Int)
            .distributed(true)
            .body_expr(Expr::param("a") + Expr::param("b")),
    )?;
    let server = manager.deploy_soap(class.clone())?;
    server.create_instance()?;
    server.publisher().force_publish();
    server.publisher().ensure_current();

    // --- Client side: CDE connects and starts calling -----------------
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url())?;
    let v = env.call(&stub, "add", &[Value::Int(2), Value::Int(3)])?;
    println!("add(2, 3) = {v}");

    // --- The server developer renames add -> plus while the client is
    //     connected and communicating. -------------------------------
    let add = class.find_method("add").expect("add exists");
    class.rename_method(add, "plus")?;
    println!("server developer renamed add -> plus (not yet published)");

    // --- The client's next call hits the stale method ----------------
    match env.call(&stub, "add", &[Value::Int(2), Value::Int(3)]) {
        Err(CallError::StaleMethod { method }) => {
            println!("client got 'Non existent Method' for {method:?}");
        }
        other => panic!("expected a stale-method error, got {other:?}"),
    }

    // The recency guarantee: by the time the exception surfaced, the
    // client's interface view already shows the rename.
    let ops: Vec<String> = stub.operations().iter().map(|o| o.name.clone()).collect();
    println!("client's refreshed view of the interface: {ops:?}");
    assert!(stub.operation("plus").is_some());
    assert!(stub.operation("add").is_none());

    // The JPie debugger shows the exception (Fig 9)...
    let entry = env.debugger().latest().expect("debugger entry");
    println!(
        "debugger: exception in {:?}: {}",
        entry.method, entry.message
    );

    // ...the developer fixes the call to use the new name and succeeds.
    let v = env.call(&stub, "plus", &[Value::Int(2), Value::Int(3)])?;
    println!("plus(2, 3) = {v}");

    // --- "Try again" (paper: if the server developer restores the
    //     original signature, re-executing the original call resumes
    //     normal execution). ------------------------------------------
    class.undo()?; // rename undone: method is `add` again
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let retried = env.debugger().try_again(0)?;
    println!("debugger 'try again' of the failed add(2, 3) = {retried}");
    assert_eq!(retried, Value::Int(5));

    // --- End of development (§7): export the dynamic server as a static
    //     one — all the live machinery is gone, only the frozen interface
    //     and the method bodies remain. -------------------------------
    let instance = server.instance().expect("live instance");
    manager.undeploy("Calculator")?;
    let exported = live_rmi::baseline::export_soap(&class, &instance, "mem://calc-exported")?;
    let mut static_client =
        live_rmi::baseline::StaticSoapClient::from_wsdl_xml(&exported.wsdl_xml())?;
    let v = static_client
        .call("add", &[Value::Int(30), Value::Int(12)])
        .expect("static call");
    println!("exported static server: add(30, 12) = {v}");
    exported.shutdown();

    manager.shutdown();
    Ok(())
}
